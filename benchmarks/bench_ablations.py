"""Benchmarks: design-choice ablations called out by the paper.

* §IV-B speculative prefetch — latency and bandwidth with and without;
* §V host-side transfer batching for small 4 KB pages.
(The short/long format and TLB-size ablations are covered by
bench_table3 / bench_figure7.)
"""

import pytest

from benchmarks.conftest import run_experiment


@pytest.mark.benchmark(group="ablations")
def test_prefetch_ablation(benchmark):
    result = run_experiment(benchmark, "ablation_prefetch", scale="quick")
    ptx = result.row_by(variant="optimized_ptx")
    pf = result.row_by(variant="prefetching")
    # Prefetching reduces fault-free read latency (282 -> 271 in the
    # paper) and never hurts throughput.
    assert pf["read_latency_cycles"] < ptx["read_latency_cycles"]
    assert pf["memcpy_pct_peak"] >= ptx["memcpy_pct_peak"] - 1.0


@pytest.mark.benchmark(group="ablations")
def test_register_pressure_ablation(benchmark):
    result = run_experiment(benchmark, "ablation_registers", scale="quick")
    r64 = result.row_by(regs_per_thread=64)
    r128 = result.row_by(regs_per_thread=128)
    # §VII: doubling registers/thread halves occupancy and hurts the
    # latency hiding the apointer layer depends on.
    assert r128["blocks_per_sm"] == r64["blocks_per_sm"] // 2
    assert r128["slowdown_vs_64"] > 1.2


@pytest.mark.benchmark(group="ablations")
def test_future_hw_ablation(benchmark):
    result = run_experiment(benchmark, "ablation_future_hw", scale="quick")
    sw = result.row_by(variant="prefetching")
    hw = result.row_by(variant="hw_assisted")
    # §VII: dedicated instructions cut both latency and the issue
    # pressure that caps 4-byte copy bandwidth.
    assert hw["read_latency_cycles"] < sw["read_latency_cycles"]
    assert hw["inc_latency_cycles"] < sw["inc_latency_cycles"] / 2
    assert hw["memcpy_4B_pct_peak"] > sw["memcpy_4B_pct_peak"] + 10


@pytest.mark.benchmark(group="ablations")
def test_eviction_policy_ablation(benchmark):
    result = run_experiment(benchmark, "ablation_eviction", scale="quick")
    cycles = [row["cycles"] for row in result.rows]
    # Policies are within a modest band on the cyclic sweep; all are
    # functional (majors bounded by rounds x pages).
    assert max(cycles) < 1.5 * min(cycles)
    for row in result.rows:
        assert row["major_faults"] >= row["evictions"]


@pytest.mark.benchmark(group="ablations")
def test_io_preemption_ablation(benchmark):
    result = run_experiment(benchmark, "ablation_io_preemption",
                            scale="quick")
    host_on = result.row_by(io_path="host-mediated", io_preemption=True)
    p2p_on = result.row_by(io_path="p2p-dma", io_preemption=True)
    p2p_off = result.row_by(io_path="p2p-dma", io_preemption=False)
    # Host-mediated faults are host-bound: preemption cannot help.
    assert host_on["speedup_vs_no_preempt"] < 1.05
    # With peer-to-peer DMA the stall is pure latency: preemption wins.
    assert p2p_on["cycles"] < p2p_off["cycles"]
    assert p2p_on["speedup_vs_no_preempt"] > 1.08
    assert p2p_on["preemptions"] > 0


@pytest.mark.benchmark(group="ablations")
def test_batching_ablation(benchmark):
    result = run_experiment(benchmark, "ablation_batching", scale="quick")
    on = result.row_by(batching=True)
    off = result.row_by(batching=False)
    # §V: batching is the difference between one fixed PCIe cost per
    # page and one per ~32 pages.
    assert on["batches"] < off["batches"] / 4
    assert on["cycles"] < off["cycles"] / 2
    assert on["mean_batch"] > 4
