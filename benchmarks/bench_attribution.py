"""Benchmark: measured latency hiding of translation work (§VI-A).

The paper's free-computation argument: translation chains execute
inside the memory-latency bubble, so a streaming kernel (no arithmetic
per element) hides almost all translation work, and the hidden fraction
falls as per-access compute grows and eats the bubble (Figure 6's
compute-intensity axis).  Here the claim is *measured* by the cycle
attribution analyzer rather than inferred from end-to-end overheads:

* at pure streaming (4-byte memcpy, no per-element compute) at least
  80% of apointer translation cycles are hidden;
* the hidden fraction falls monotonically as dependent arithmetic is
  added per copied element.
"""

import pytest

from repro.gpu import Device
from repro.telemetry import capture
from repro.workloads import run_memcpy

#: Geometry chosen to keep the trace under the Tracer event cap while
#: leaving enough warps per SM for real latency hiding (20 warps/SM at
#: 1 block/SM on the 13-SM K80 model).
NBLOCKS = 13
WARPS = 20
ITERS = 16

#: Dependent arithmetic per copied element — the Figure 6 compute-
#: intensity axis, from pure streaming to compute-heavy.
COMPUTE_SWEEP = (0, 64, 256, 1024)


def _hidden_fraction(compute_per_iter: float) -> float:
    device = Device(memory_bytes=64 * 1024 * 1024)
    with capture(trace=True, max_traces=1, attribution=True) as prof:
        r = run_memcpy(device, use_apointers=True, width=4,
                       nblocks=NBLOCKS, warps_per_block=WARPS,
                       iters_per_thread=ITERS,
                       compute_per_iter=compute_per_iter)
    assert r.verified
    attr = prof.profiles[0].components["attribution"]
    assert attr["attributed"] == 1, "trace must not truncate"
    assert attr["translation_cycles"] > 0
    return attr["hidden_fraction"]


@pytest.mark.benchmark(group="attribution")
def test_streaming_memcpy_hides_translation(benchmark):
    fraction = benchmark.pedantic(lambda: _hidden_fraction(0),
                                  rounds=1, iterations=1,
                                  warmup_rounds=0)
    benchmark.extra_info["hidden_fraction"] = fraction
    # §VI-A: streaming access leaves the whole memory-latency bubble
    # for translation — the measured hidden share must be >= 80%.
    assert fraction >= 0.80


@pytest.mark.benchmark(group="attribution")
def test_hidden_fraction_falls_with_compute_intensity(benchmark):
    def sweep():
        return [_hidden_fraction(k) for k in COMPUTE_SWEEP]

    fractions = benchmark.pedantic(sweep, rounds=1, iterations=1,
                                   warmup_rounds=0)
    benchmark.extra_info["sweep"] = dict(zip(COMPUTE_SWEEP, fractions))
    # Added arithmetic consumes the bubble: each step of the compute
    # sweep must strictly lower the measured hidden fraction.
    for k, before, after in zip(COMPUTE_SWEEP[1:], fractions,
                                fractions[1:]):
        assert after < before, (
            f"hidden fraction rose at compute_per_iter={k}: "
            f"{before:.4f} -> {after:.4f}")
    assert fractions[0] >= 0.80
