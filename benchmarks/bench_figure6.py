"""Benchmark: Figure 6 — apointer overhead vs GPU occupancy.

6a: 4-byte reads; 6b: 16-byte reads; 6c: 4-byte reads through the GPUfs
page cache (minor faults).  The headline mechanism is latency hiding:
overheads shrink as threadblocks are added, 16-byte loads amortise the
translation cost, and FFT stays anomalous (compiler artifact).
"""

import pytest

from benchmarks.conftest import run_experiment


def _avg(result, col, exclude_fft=True):
    rows = [r for r in result.rows
            if not (exclude_fft and r["workload"] == "FFT")]
    return sum(r[col] for r in rows) / len(rows)


@pytest.mark.benchmark(group="figure6")
def test_figure6a_4byte(benchmark):
    result = run_experiment(benchmark, "figure6a", scale="quick")
    first, last = "tb=1", "tb=52"
    # Add and Read improve roughly two-fold with occupancy (§VI-B says
    # "more than two-fold"; the quick-scale sweep sits right at the
    # boundary, so allow a little slack).
    for name in ("Add", "Read"):
        row = result.row_by(workload=name)
        assert row[last] < row[first] / 1.6
    # Compute-intensive workloads have small overhead throughout.
    r50 = result.row_by(workload="Random 50")
    assert max(r50[c] for c in result.columns[1:]) < 40


@pytest.mark.benchmark(group="figure6")
def test_figure6b_16byte(benchmark):
    result = run_experiment(benchmark, "figure6b", scale="quick")
    # Paper: average 20% (7% excluding FFT) at full occupancy.
    assert _avg(result, "tb=52", exclude_fft=True) < 25
    assert _avg(result, "tb=52", exclude_fft=False) < 40
    # FFT remains anomalously high regardless of occupancy.
    fft = result.row_by(workload="FFT")
    assert min(fft[c] for c in result.columns[1:]) > 30


@pytest.mark.benchmark(group="figure6")
def test_figure6c_with_page_cache(benchmark):
    result = run_experiment(benchmark, "figure6c", scale="quick")
    # Compute-intensity ordering holds at every occupancy: the heavier
    # the per-element compute, the smaller the apointer overhead.
    for col in result.columns[1:]:
        read = result.row_by(workload="Read")[col]
        r50 = result.row_by(workload="Random 50")[col]
        assert r50 < read, col
    # FFT stays anomalously high relative to similar compute intensity
    # (Reduce), as in the paper.
    for col in result.columns[1:]:
        assert (result.row_by(workload="FFT")[col]
                > result.row_by(workload="Reduce")[col]), col
    # Overheads over the gmmap baseline stay bounded (the paper reports
    # 16% avg excl. FFT; our single-knob issue model exposes more of
    # the deref cost and a different occupancy trend — EXPERIMENTS.md).
    assert _avg(result, "tb=52", exclude_fft=True) < 110
