"""Benchmark: Figure 7 — software TLB size vs page reuse."""

import pytest

from benchmarks.conftest import run_experiment


@pytest.mark.benchmark(group="figure7")
def test_figure7_tlb_crossover(benchmark):
    result = run_experiment(benchmark, "figure7", scale="quick")

    def row(tlb):
        return result.row_by(tlb=tlb)

    low, high = "pages=8", "pages=128"

    # The TLB is effective at high reuse (few unique pages), provided
    # its capacity comfortably exceeds the working set (a 16-entry
    # direct-mapped TLB already conflicts on 8 hot pages).
    for tlb in (32, 64):
        assert row(tlb)[low] < row("none")[low], f"TLB={tlb} at {low}"
    # ...but costs more than no TLB once the working set exceeds it.
    assert row(16)[high] > row("none")[high]
    # TLB curves degrade as unique pages grow; no-TLB stays flat(ish).
    for tlb in (16, 32, 64):
        assert row(tlb)[high] > row(tlb)[low]
    none = row("none")
    values = [none[c] for c in result.columns[1:]]
    assert max(values) < 2.0 * min(values)
