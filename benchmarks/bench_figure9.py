"""Benchmark: Figure 9 — end-to-end image collage, four implementations.

Also covers the §VI-E unaligned-access experiment: 3 KB records with no
page alignment, read through unmodified apointer code.
"""

import pytest

from benchmarks.conftest import run_experiment


@pytest.mark.benchmark(group="figure9")
def test_figure9_collage(benchmark):
    result = run_experiment(benchmark, "figure9", scale="quick")

    # Correctness is enforced inside the experiment (all four runners
    # must produce identical collages); here we check the shape.
    for row in result.rows:
        # Apointers add little over plain GPUfs (paper: <1%).
        assert row["ap_overhead_pct"] < 10, row["input"]
        # The GPU-centric designs beat the CPU+GPU split.
        assert row["GPUfs"] < row["CPU+GPU"], row["input"]

    # The GPU advantage grows with data reuse (larger inputs).
    rows = sorted(result.rows, key=lambda r: r["reuse"])
    assert rows[-1]["GPUfs"] < rows[0]["GPUfs"] * 1.5
    # On the highest-reuse input, GPUfs beats the CPU baseline.
    assert rows[-1]["GPUfs"] < 1.0


@pytest.mark.benchmark(group="figure9")
def test_unaligned_records(benchmark):
    result = run_experiment(benchmark, "unaligned", scale="quick")
    for row in result.rows:
        assert row["correct"], row["layout"]
    aligned = result.row_by(layout="aligned (4 KB)")
    unaligned = result.row_by(layout="unaligned (3 KB)")
    assert unaligned["record_bytes"] == 3072
    assert aligned["record_bytes"] == 4096
