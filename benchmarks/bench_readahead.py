"""Benchmark: asynchronous page readahead (reproduction extension).

The readahead daemon (``repro.readahead``) pushes pages speculatively
through the §V transfer batcher once a warp's fault pattern looks
sequential.  The acceptance bar for the subsystem: at least a 1.3x
end-to-end speedup on the quick-scale sequential-read filebench versus
the batching-only baseline, with verified output either way.
"""

import pytest

from benchmarks.conftest import run_experiment
from repro.workloads.filebench import run_sequential_file_read


@pytest.mark.benchmark(group="readahead")
def test_readahead_ablation(benchmark):
    result = run_experiment(benchmark, "ablation_readahead", scale="quick")
    seq_off = result.row_by(workload="seq-read", readahead=False)
    seq_on = result.row_by(workload="seq-read", readahead=True)
    # The subsystem's acceptance bar: >= 1.3x on sequential reads.
    assert seq_on["speedup"] >= 1.3
    # Readahead converts major faults into hits, not extra transfers:
    # almost everything issued is consumed, nothing is wasted.
    assert seq_on["major_faults"] < seq_off["major_faults"]
    assert seq_on["ra_hits"] >= 0.8 * seq_on["ra_issued"]
    assert seq_on["ra_wasted"] <= 0.1 * seq_on["ra_issued"]
    # The file-memcpy variant (whole-page copies) also benefits.
    mc_on = result.row_by(workload="file-memcpy", readahead=True)
    assert mc_on["speedup"] > 1.2


@pytest.mark.benchmark(group="readahead")
def test_readahead_sequential_speedup(benchmark):
    """Direct workload-level check of the 1.3x criterion."""

    def run_pair():
        off = run_sequential_file_read(npages=192, readahead=False)
        on = run_sequential_file_read(npages=192, readahead=True)
        return off, on

    off, on = benchmark.pedantic(run_pair, rounds=1, iterations=1,
                                 warmup_rounds=0)
    assert off.verified and on.verified
    speedup = off.cycles / on.cycles
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["ra_issued"] = on.ra_issued
    benchmark.extra_info["ra_hits"] = on.ra_hits
    assert speedup >= 1.3
    # Off means *off*: the baseline run must not touch the daemon.
    assert off.ra_issued == 0 and off.transfers == off.major_faults
