"""Benchmark: Table I — apointer operation latency in GPU cycles."""

import pytest

from benchmarks.conftest import run_experiment


@pytest.mark.benchmark(group="table1")
def test_table1_latencies(benchmark):
    result = run_experiment(benchmark, "table1", scale="quick")

    # Every cell within 10% of the paper's measurement.
    for row in result.rows:
        assert row["measured"] == pytest.approx(row["paper"], rel=0.10), \
            f"{row['implementation']}/{row['op']}"

    # Qualitative orderings the paper reports.
    def cell(impl, op):
        return result.row_by(implementation=impl, op=op)["measured"]

    assert cell("Raw access", "read") < cell("Prefetching", "read") \
        < cell("Optimized PTX", "read") < cell("Compiler", "read")
    # Permission checks are nearly free under prefetching (435 vs 423).
    pf_cost = (cell("Prefetching", "read+inc+rw")
               - cell("Prefetching", "read+inc"))
    compiler_cost = (cell("Compiler", "read+inc+rw")
                     - cell("Compiler", "read+inc"))
    assert pf_cost < compiler_cost
