"""Benchmark: Table II — apointer memcpy bandwidth."""

import pytest

from benchmarks.conftest import run_experiment


@pytest.mark.benchmark(group="table2")
def test_table2_memcpy_bandwidth(benchmark):
    result = run_experiment(benchmark, "table2", scale="quick")

    four = result.row_by(access="4-byte")
    four_rw = result.row_by(access="4-byte+rw")
    eight = result.row_by(access="8-byte")

    # Paper shape: 8-byte accesses hide the translation overhead almost
    # completely (97.6%), 4-byte accesses reach ~65%, permission checks
    # shave a little more off.
    assert eight["measured_pct"] > 90
    assert 50 < four["measured_pct"] < 85
    assert four_rw["measured_pct"] <= four["measured_pct"]
    assert eight["measured_pct"] > four["measured_pct"]

    # Within 15 percentage points of the paper's absolute cells.
    for row in result.rows:
        assert abs(row["measured_pct"] - row["paper_pct"]) < 15, \
            row["access"]
