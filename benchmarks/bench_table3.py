"""Benchmark: Table III — page-fault overhead per apointer flavour."""

import pytest

from benchmarks.conftest import run_experiment


@pytest.mark.benchmark(group="table3")
def test_table3_pagefault_overheads(benchmark):
    result = run_experiment(benchmark, "table3", scale="quick")

    short = result.row_by(implementation="Apointer Short")
    long_ = result.row_by(implementation="Apointer Long")
    no_tlb = result.row_by(implementation="no TLB")

    # Paper: major-fault overheads are masked by host transfers
    # ("no observable overhead"; std dev up to 10%).
    for row in result.rows:
        assert abs(row["major_pct"]) < 10, row["implementation"]

    # Paper: minor faults cost 20/24/13% — the TLB-less design wins.
    assert no_tlb["minor_pct"] < short["minor_pct"]
    assert no_tlb["minor_pct"] < long_["minor_pct"]
    assert 5 < no_tlb["minor_pct"] < 25
    assert 10 < short["minor_pct"] < 40
    assert 10 < long_["minor_pct"] < 40
