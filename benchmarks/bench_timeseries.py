"""Benchmark: cycle-window sampling overhead and series fidelity.

Two claims gate here:

* **Overhead** — running bench_table2's workload with the
  time-series sampler on costs at most 5% wall time over sampling
  off.  Sampling sits on the engine's hot path behind an ``is not
  None`` test; window bookkeeping only happens at window boundaries,
  so the marginal cost must stay in the noise.  Timings are
  best-of-N minima, interleaved, to shed scheduler noise.
* **Fidelity** — the sampled DRAM byte series integrates *exactly*
  (integer equality, not approximately) to the profiles' summed
  ``dram.bytes``, and simulated cycles are bit-identical with
  sampling on and off: the sampler observes the simulation, it never
  steers it.
"""

import time

import pytest

from benchmarks.conftest import REGISTRY
from repro.harness.runner import (
    Instrumentation,
    LiveOptions,
    run_experiment,
)

ROUNDS = 3
OVERHEAD_BUDGET = 0.05


def _run_table2(sampled: bool):
    live = LiveOptions(live_dir=None, window_cycles=50_000.0) \
        if sampled else None
    started = time.perf_counter()
    report = run_experiment(REGISTRY["table2"], scale="quick", jobs=1,
                            instrument=Instrumentation(
                                profile=True, trace=False, live=live),
                            progress=False)
    elapsed = time.perf_counter() - started
    assert report.ok
    return elapsed, report


@pytest.mark.benchmark(group="timeseries")
def test_sampling_overhead_and_exact_series(benchmark):
    plain_times, sampled_times = [], []
    plain = sampled = None
    for _ in range(ROUNDS):
        t, plain = _run_table2(sampled=False)
        plain_times.append(t)
        t, sampled = _run_table2(sampled=True)
        sampled_times.append(t)
    # One extra sampled run under the benchmark timer so the trend
    # record tracks the sampled-path wall time.
    benchmark.pedantic(lambda: _run_table2(sampled=True),
                       rounds=1, iterations=1)

    overhead = (min(sampled_times) - min(plain_times)) \
        / min(plain_times)
    benchmark.extra_info["overhead"] = overhead
    benchmark.extra_info["plain_s"] = min(plain_times)
    benchmark.extra_info["sampled_s"] = min(sampled_times)
    assert overhead <= OVERHEAD_BUDGET, (
        f"sampling overhead {overhead:.1%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} budget "
        f"(plain {min(plain_times):.3f}s, "
        f"sampled {min(sampled_times):.3f}s)")

    # Zero perturbation: per-launch simulated cycles are bit-identical.
    plain_cycles = [p["launch"]["cycles"] for p in plain.profiles]
    sampled_cycles = [p["launch"]["cycles"] for p in sampled.profiles]
    assert plain_cycles == sampled_cycles

    # Exact integration: the DRAM byte series sums to the profile
    # totals — per launch and across the merged suite profile.
    for doc in sampled.profiles:
        series = doc["components"]["timeseries"]["series"]
        assert sum(w["dram_bytes"] for w in series) \
            == doc["dram"]["bytes"]
    merged = sampled.merged["components"]["timeseries"]
    assert sum(w["dram_bytes"] for w in merged["series"]) \
        == sampled.merged["dram"]["bytes"] \
        == sum(d["dram"]["bytes"] for d in sampled.profiles)
