"""Benchmark: causal request-span overhead and span fidelity.

Tracing itself (recording every engine macro-op) has a real,
pre-existing cost — that total is reported as ``extra_info`` for the
trend file but not gated here.  What this benchmark gates is the
marginal price of the *request-span* machinery layered onto the traced
path: minting a request id at fault/syscall entry
(:meth:`WarpContext.begin_request`) and stamping it onto every span.

Two claims:

* **Overhead** — running bench_table2's workload traced with request
  spans costs at most 5% wall time over the same traced run with
  minting disabled (monkeypatched to a no-op, restoring the pre-span
  tracer behaviour: every span carries ``req=""``).  Minting is two
  integer ops and one f-string per fault entry, so the difference
  must stay in the noise.  Timings are best-of-N minima, interleaved.
* **Fidelity** — simulated cycles are bit-identical traced vs
  untraced (the tracer observes, it never steers), and the traced
  profiles carry a populated ``components.spans`` section while
  untraced profiles keep it present but all zero (the v8 schema is
  stable either way).
"""

import time

import pytest

from benchmarks.conftest import REGISTRY
from repro.gpu.kernel import WarpContext
from repro.harness.runner import Instrumentation, run_experiment

ROUNDS = 3
OVERHEAD_BUDGET = 0.05


def _run_table2(traced: bool):
    started = time.perf_counter()
    report = run_experiment(REGISTRY["table2"], scale="quick", jobs=1,
                            instrument=Instrumentation(
                                profile=True, trace=traced),
                            progress=False)
    elapsed = time.perf_counter() - started
    assert report.ok
    return elapsed, report


def _run_traced_without_minting(monkeypatch_cls=WarpContext):
    """The traced run as it was before request spans existed."""
    saved = (monkeypatch_cls.begin_request, monkeypatch_cls.end_request)
    monkeypatch_cls.begin_request = lambda self: None
    monkeypatch_cls.end_request = lambda self: None
    try:
        return _run_table2(traced=True)
    finally:
        monkeypatch_cls.begin_request = saved[0]
        monkeypatch_cls.end_request = saved[1]


@pytest.mark.benchmark(group="tracing")
def test_request_span_overhead_and_fidelity(benchmark):
    unminted_times, minted_times, plain_times = [], [], []
    plain = traced = None
    for _ in range(ROUNDS):
        t, plain = _run_table2(traced=False)
        plain_times.append(t)
        t, _ = _run_traced_without_minting()
        unminted_times.append(t)
        t, traced = _run_table2(traced=True)
        minted_times.append(t)
    # One extra full traced run under the benchmark timer so the trend
    # record tracks the traced-path wall time.
    benchmark.pedantic(lambda: _run_table2(traced=True),
                       rounds=1, iterations=1)

    overhead = (min(minted_times) - min(unminted_times)) \
        / min(unminted_times)
    benchmark.extra_info["span_overhead"] = overhead
    benchmark.extra_info["tracing_overhead"] = \
        (min(minted_times) - min(plain_times)) / min(plain_times)
    benchmark.extra_info["plain_s"] = min(plain_times)
    benchmark.extra_info["traced_s"] = min(minted_times)
    assert overhead <= OVERHEAD_BUDGET, (
        f"request-span overhead {overhead:.1%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} budget "
        f"(traced sans minting {min(unminted_times):.3f}s, "
        f"with {min(minted_times):.3f}s)")

    # Zero perturbation: per-launch simulated cycles are bit-identical.
    plain_cycles = [p["launch"]["cycles"] for p in plain.profiles]
    traced_cycles = [p["launch"]["cycles"] for p in traced.profiles]
    assert plain_cycles == traced_cycles

    # The traced run minted causal request spans: apointer launches
    # fault, faults begin requests, requests stamp spans.
    spans = [p["components"]["spans"] for p in traced.profiles]
    assert any(s["requests"] for s in spans), spans
    for s in spans:
        assert s["spans"] >= s["requests"]
        assert s["span_cycles"] >= 0.0
    # Untraced profiles keep the section, all zero.
    for p in plain.profiles:
        assert p["components"]["spans"] \
            == {"requests": 0, "spans": 0, "span_cycles": 0.0}
