"""Benchmark: the vectorized engine gate.

Two claims gate here:

* **Equality** — bench_table2's experiment produces *bit-identical*
  rows under the vectorized per-SM hot loop (engine mode ``vector``)
  and the reference event-heap engine (mode ``event``).  The
  vectorization is an invisible optimisation; any drift is a bug, not
  a tolerance question.
* **Speed** — the vectorized loop must not be slower than the event
  heap (wall-clock ratio event/vector >= ``MIN_SPEEDUP``).  Timings
  are best-of-N minima, interleaved, to shed scheduler noise.

When ``REPRO_TREND_FILE`` is set (the CI bench-smoke job), the ratio
is amended onto the latest trend row as the tier-1 ``engine_vectorize``
metric, so ``repro-attr --compare`` catches a vectorization speedup
regression like any other perf rot.
"""

import os
import time

import pytest

from benchmarks.conftest import REGISTRY
from repro.gpu.engine import engine_mode
from repro.harness.runner import run_experiment

ROUNDS = 3
#: The vector loop may not run slower than the event heap (ratio of
#: event wall time over vector wall time).  The floor is deliberately
#: conservative — CI machines are noisy; the trend row tracks the
#: actual ratio.
MIN_SPEEDUP = 0.9


def _timed_table2(mode: str):
    with engine_mode(mode):
        started = time.perf_counter()
        report = run_experiment(REGISTRY["table2"], scale="quick",
                                jobs=1, progress=False)
        elapsed = time.perf_counter() - started
    assert report.ok
    return elapsed, report


@pytest.mark.benchmark(group="vectorize")
def test_vector_engine_bit_equal_and_not_slower(benchmark):
    event_times, vector_times = [], []
    event_report = vector_report = None
    for _ in range(ROUNDS):
        t, event_report = _timed_table2("event")
        event_times.append(t)
        t, vector_report = _timed_table2("vector")
        vector_times.append(t)
    # One extra vectorized run under the benchmark timer so the
    # recorded wall time tracks the default (vector) path.
    benchmark.pedantic(lambda: _timed_table2("vector"),
                       rounds=1, iterations=1)

    # Bit-equality: every row of the experiment, cell for cell.
    assert vector_report.result.rows == event_report.result.rows
    assert vector_report.result.columns == event_report.result.columns

    speedup = min(event_times) / min(vector_times)
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["event_s"] = min(event_times)
    benchmark.extra_info["vector_s"] = min(vector_times)
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized engine ran {1 / speedup:.2f}x slower than the "
        f"event heap (event {min(event_times):.3f}s, "
        f"vector {min(vector_times):.3f}s)")

    trend_file = os.environ.get("REPRO_TREND_FILE")
    if trend_file:
        from repro.telemetry.trend import amend_latest
        amend_latest(trend_file, {
            "engine_vectorize": {
                "metric": "table2_speedup_vs_event",
                "value": round(speedup, 3),
                "unit": "x",
                "higher_is_better": True,
                "tier1": True,
            }})
