"""Shared helpers for the benchmark suite.

Each ``bench_*`` module regenerates one of the paper's tables or
figures at ``quick`` scale, attaches the reproduced rows (paper value
vs. measured value) to ``benchmark.extra_info``, and asserts the shape
properties the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only

The timed quantity is the wall time of the simulation itself; the
scientific payload is in ``extra_info`` and in the assertions.
"""

import json

import pytest


def run_experiment(benchmark, fn, **kwargs):
    """Time one experiment run and attach its rows to the report."""
    result = benchmark.pedantic(lambda: fn(**kwargs), rounds=1,
                                iterations=1, warmup_rounds=0)
    benchmark.extra_info["experiment"] = result.exp_id
    benchmark.extra_info["rows"] = json.loads(json.dumps(result.rows))
    return result
