"""Shared helpers for the benchmark suite.

Each ``bench_*`` module regenerates one of the paper's tables or
figures at ``quick`` scale, attaches the reproduced rows (paper value
vs. measured value) to ``benchmark.extra_info``, and asserts the shape
properties the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only
    pytest benchmarks/ --benchmark-only --jobs 4   # parallel points

``--jobs N`` fans each experiment's parameter grid out over N worker
processes (:mod:`repro.harness.runner`); rows are identical to a
serial run (deterministic per-point seeding), only the wall time
changes.

The timed quantity is the wall time of the simulation itself; the
scientific payload is in ``extra_info`` and in the assertions.
"""

import json

from repro.harness.experiments import ALL_EXPERIMENTS  # noqa: F401
from repro.harness.registry import REGISTRY, Experiment
from repro.harness.runner import ExperimentPointError
from repro.harness.runner import run_experiment as _run_points

_JOBS = 1


def pytest_addoption(parser):
    parser.addoption(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per experiment grid "
             "(default: 1 = serial; 0 = one per core)")


def pytest_configure(config):
    global _JOBS
    _JOBS = config.getoption("--jobs")


def _resolve(experiment):
    """Experiment id, descriptor, or tagged callable -> descriptor
    (``None`` for plain legacy callables)."""
    if isinstance(experiment, str):
        return REGISTRY[experiment]
    if isinstance(experiment, Experiment):
        return experiment
    return getattr(experiment, "experiment", None)


def run_experiment(benchmark, experiment, **kwargs):
    """Time one experiment run and attach its rows to the report.

    ``experiment`` is a registry id (``"table1"``), an
    :class:`Experiment`, or — for backward compatibility — a plain
    callable.  Registry entries honour the suite-wide ``--jobs``
    option; a crashed grid point raises (a benchmark must not silently
    bless partial results).
    """
    exp = _resolve(experiment)
    if exp is None:
        result = benchmark.pedantic(lambda: experiment(**kwargs),
                                    rounds=1, iterations=1,
                                    warmup_rounds=0)
    else:
        scale = kwargs.pop("scale", "quick")
        options = kwargs or None

        def run():
            report = _run_points(exp, scale=scale, jobs=_JOBS,
                                 options=options, progress=False)
            if report.result.errors:
                raise ExperimentPointError(exp.name,
                                           report.result.errors)
            return report.result

        result = benchmark.pedantic(run, rounds=1, iterations=1,
                                    warmup_rounds=0)
        benchmark.extra_info["jobs"] = _JOBS
    benchmark.extra_info["experiment"] = result.exp_id
    benchmark.extra_info["rows"] = json.loads(json.dumps(result.rows))
    return result
