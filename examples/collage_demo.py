"""The paper's end-to-end application: photo collage via LSH (§VI-E).

Builds a (scaled-down) synthetic tiny-images histogram dataset, maps it
into GPU memory, and runs all four Figure 9 implementations — CPU-only,
CPU+GPU, GPUfs, and GPUfs+ActivePointers — verifying that they produce
identical collages and reporting their relative runtimes.

Run:  python examples/collage_demo.py
"""

from repro.collage import (
    CollageDataset,
    DatasetParams,
    make_problem,
    reference_solution,
    run_cpu,
    run_cpu_gpu,
    run_gpufs,
    run_gpufs_apointers,
)


def main():
    print("building synthetic dataset (stand-in for 80M tiny images)...")
    dataset = CollageDataset(DatasetParams(num_images=2048,
                                           num_clusters=32))
    problem = make_problem(dataset, name="demo", blocks_x=8, blocks_y=8,
                           cluster_spread=5)
    print(f"input: {problem.num_blocks} blocks of 32x32 px, "
          f"{problem.total_candidate_refs()} candidate references, "
          f"data reuse {problem.data_reuse():.1f}x")

    reference = reference_solution(problem)
    outcomes = []
    for runner in (run_cpu, run_cpu_gpu, run_gpufs, run_gpufs_apointers):
        out = runner(problem)
        ok = out.matches(reference)
        outcomes.append(out)
        print(f"  {out.name:9s} {out.seconds * 1e3:8.3f} ms "
              f"({out.per_block(problem) * 1e6:6.2f} us/block)  "
              f"collage {'identical' if ok else 'WRONG'}")
        assert ok, f"{out.name} produced a different collage"

    cpu = outcomes[0].seconds
    print("\nruntime normalised to the CPU run (lower is better):")
    for out in outcomes:
        bar = "#" * max(1, int(40 * out.seconds / max(o.seconds
                                                      for o in outcomes)))
        print(f"  {out.name:9s} {out.seconds / cpu:5.2f}  {bar}")
    gpufs, ap = outcomes[2].seconds, outcomes[3].seconds
    print(f"\napointer overhead over plain GPUfs: "
          f"{100 * (ap / gpufs - 1):.1f}% (paper: <1%)")
    print("OK")


if __name__ == "__main__":
    main()
