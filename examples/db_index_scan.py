"""Database-style index lookups into a large memory-mapped file.

The paper's introduction motivates ActivePointers with "a database
application which uses an index to randomly access parts of very large
files" — the unpredictable, data-driven access pattern that chunking
approaches cannot handle.

This example builds a sorted table of fixed-size records in a host file
(8x larger than the GPU page cache), maps it into GPU memory, and runs a
batch of point lookups: each warp binary-searches the table through an
apointer, touching only the ~log2(N) pages its probes actually hit.

Run:  python examples/db_index_scan.py
"""

import numpy as np

from repro.core import APConfig, AVM
from repro.gpu import Device
from repro.host import HostFileSystem
from repro.host.ramfs import RamFS
from repro.paging import GPUfs, GPUfsConfig

PAGE = 4096
RECORD_BYTES = 64                  # key (8 B) + payload (56 B)
NUM_RECORDS = 32768                # 2 MB table
CACHE_FRAMES = 128                 # 512 KB page cache: table is 4x larger
LOOKUPS_PER_WARP = 4
NUM_WARPS = 32


def build_table(rng) -> np.ndarray:
    keys = np.sort(rng.choice(10 ** 9, size=NUM_RECORDS, replace=False))
    table = np.zeros(NUM_RECORDS * RECORD_BYTES // 8, dtype=np.uint64)
    table[::RECORD_BYTES // 8] = keys            # key word of each record
    table[1::RECORD_BYTES // 8] = keys * 7 + 13  # payload checksum word
    return table


def main():
    rng = np.random.RandomState(77)
    table = build_table(rng)
    keys = table[::RECORD_BYTES // 8].copy()

    ramfs = RamFS()
    ramfs.create("table.db", table.view(np.uint8))
    device = Device(memory_bytes=64 * 1024 * 1024)
    gpufs = GPUfs(device, HostFileSystem(ramfs),
                  GPUfsConfig(page_size=PAGE, num_frames=CACHE_FRAMES))
    avm = AVM(APConfig(), gpufs=gpufs)
    fid = gpufs.open("table.db")

    queries = rng.choice(keys, size=NUM_WARPS * LOOKUPS_PER_WARP,
                         replace=False)
    results = {}

    def kernel(ctx):
        ptr = avm.gvmmap(ctx, NUM_RECORDS * RECORD_BYTES, fid)
        for q in range(LOOKUPS_PER_WARP):
            target = int(queries[ctx.warp_id * LOOKUPS_PER_WARP + q])
            lo, hi = 0, NUM_RECORDS - 1
            while lo < hi:                      # binary search by warp
                mid = (lo + hi) // 2
                yield from ptr.seek(ctx, mid * RECORD_BYTES)
                key = yield from ptr.read(ctx, "u8")
                ctx.charge(4)
                if int(key[0]) < target:
                    lo = mid + 1
                else:
                    hi = mid
            yield from ptr.seek(ctx, lo * RECORD_BYTES + 8)
            payload = yield from ptr.read(ctx, "u8")
            results[target] = int(payload[0])
        yield from ptr.destroy(ctx)

    launch = device.launch(kernel, grid=NUM_WARPS // 8, block_threads=256)

    wrong = [k for k, v in results.items() if v != k * 7 + 13]
    assert not wrong, f"bad lookups: {wrong[:5]}"
    print(f"{len(results)} point lookups, all payloads verified")
    print(f"table: {NUM_RECORDS} records ({NUM_RECORDS * RECORD_BYTES // 1024} KB), "
          f"page cache: {CACHE_FRAMES * PAGE // 1024} KB "
          f"({NUM_RECORDS * RECORD_BYTES // (CACHE_FRAMES * PAGE)}x smaller)")
    print(f"pages touched on demand: {gpufs.stats.major_faults} major / "
          f"{gpufs.stats.minor_faults} minor faults, "
          f"{gpufs.cache.evictions} evictions")
    print(f"simulated time: {launch.seconds * 1e6:.1f} us")
    probes = NUM_WARPS * LOOKUPS_PER_WARP * 15   # ~log2(N) per lookup
    assert gpufs.stats.major_faults < probes / 2, \
        "demand paging should serve most probes from the page cache"
    print("OK")


if __name__ == "__main__":
    main()
