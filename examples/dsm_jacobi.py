"""Distributed shared memory across two GPUs: a Jacobi stencil.

The paper's introduction points at DSM as a direction ActivePointers
enable: page fault interposition has long powered software DSM on CPU
clusters, and apointers provide the same hook on GPUs.

Two simulated GPUs share one grid through `repro.dsm`.  Each device owns
half the rows and sweeps a 1-D Jacobi update; the halo row it needs from
its neighbour arrives automatically — reading it page-faults, the
directory flushes the neighbour's dirty copy, and the page migrates.
No explicit communication code, no staging buffers: just pointers.

Run:  python examples/dsm_jacobi.py
"""

import numpy as np

from repro.core import APConfig, AVM
from repro.dsm import DSMCluster
from repro.gpu.multigpu import ClusterLaunch, launch_cluster

PAGE = 4096
ROW_FLOATS = PAGE // 4              # one grid row per page
ROWS = 16                           # total rows (8 per device)
ITERS = 4


def reference(grid: np.ndarray) -> np.ndarray:
    g = grid.astype(np.float64).copy()
    for _ in range(ITERS):
        nxt = g.copy()
        nxt[1:-1] = (g[:-2] + 2 * g[1:-1] + g[2:]) / 4.0
        g = nxt
    return g


def main():
    rng = np.random.RandomState(9)
    initial = rng.uniform(-1, 1, (ROWS, ROW_FLOATS)).astype(np.float32)

    cluster = DSMCluster(num_devices=2, region_bytes=2 * ROWS * PAGE)
    # Region layout: rows 0..15 = current grid, rows 16..31 = next grid.
    cluster.ramfs.open("dsm").pwrite(0, initial.astype(np.float32))
    avms = [AVM(APConfig()), AVM(APConfig())]
    half = ROWS // 2

    def make_kernel(dev, src_base_row, dst_base_row):
        backend = cluster.backend_for(dev)
        my_rows = range(dev * half, (dev + 1) * half)

        def kernel(ctx):
            ptr = avms[dev].map_backend(
                ctx, backend, 2 * ROWS * PAGE, write=True)
            for row in my_rows:
                if row in (0, ROWS - 1):        # boundary rows copy over
                    continue
                # Read the three stencil rows; the neighbour's halo row
                # page-faults across the device boundary transparently.
                acc = np.zeros(ctx.warp_size, dtype=np.float64)
                for dr, w in ((-1, 1.0), (0, 2.0), (1, 1.0)):
                    yield from ptr.seek(
                        ctx, (src_base_row + row + dr) * PAGE
                        + ctx.warp_in_block * 128 + ctx.lane * 4)
                    vals = yield from ptr.read(ctx, "f4")
                    ctx.charge(2, chain=2)
                    acc += w * vals.astype(np.float64)
                yield from ptr.seek(
                    ctx, (dst_base_row + row) * PAGE
                    + ctx.warp_in_block * 128 + ctx.lane * 4)
                yield from ptr.write(ctx, (acc / 4.0).astype(np.float32),
                                     "f4")
            # Boundary rows are copied unchanged by warp 0.
            for row in my_rows:
                if row not in (0, ROWS - 1):
                    continue
                for chunk in range(ctx.warp_in_block,
                                   ROW_FLOATS // 32, 32):
                    yield from ptr.seek(
                        ctx, (src_base_row + row) * PAGE
                        + chunk * 128 + ctx.lane * 4)
                    vals = yield from ptr.read(ctx, "f4")
                    yield from ptr.seek(
                        ctx, (dst_base_row + row) * PAGE
                        + chunk * 128 + ctx.lane * 4)
                    yield from ptr.write(ctx, vals, "f4")
            yield from ptr.destroy(ctx)
            yield from cluster.gpufs[dev].flush(ctx)

        return kernel

    total_seconds = 0.0
    src, dst = 0, ROWS
    for it in range(ITERS):
        # Both GPUs sweep their halves *concurrently* (true multi-GPU
        # co-simulation); a barrier separates iterations.  Within an
        # iteration the devices only read src rows and write their own
        # dst rows, so the halo reads are safe shared accesses.
        res = launch_cluster([
            ClusterLaunch(cluster.devices[0],
                          make_kernel(0, src, dst), 1, 1024),
            ClusterLaunch(cluster.devices[1],
                          make_kernel(1, src, dst), 1, 1024),
        ])
        total_seconds += res.seconds
        src, dst = dst, src

    result = cluster.region_array()[
        src * PAGE:(src + ROWS) * PAGE].view(np.float32).reshape(
        ROWS, ROW_FLOATS)
    expect = reference(initial)
    err = np.abs(result.astype(np.float64) - expect).max()
    print(f"grid {ROWS}x{ROW_FLOATS}, {ITERS} Jacobi iterations on "
          f"2 GPUs via DSM")
    print(f"max |error| vs numpy reference: {err:.2e}")
    print(f"coherence events: {cluster.stats.flushes} flushes, "
          f"{cluster.stats.invalidations} invalidations, "
          f"{cluster.stats.read_faults}/{cluster.stats.write_faults} "
          f"read/write faults")
    print(f"directory still coherent: {cluster.check_coherent()}")
    print(f"simulated time: {total_seconds * 1e3:.2f} ms")
    assert err < 1e-5, "DSM Jacobi diverged from the reference"
    assert cluster.stats.flushes > 0, "halo exchange never happened"
    print("OK")


if __name__ == "__main__":
    main()
