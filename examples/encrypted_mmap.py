"""An encrypted GPU file system via custom page-fault handlers.

The paper's introduction proposes exactly this use of ActivePointers:
"one can build an encrypted file system for GPUs by installing custom
page fault handlers for encrypting/decrypting file contents on-the-fly,
like in CryptFS.  This design requires no changes to GPU application
code ... without storing plain-text data in CPU memory."

Here the host file holds ciphertext (a keyed XOR stream cipher — a
stand-in for AES-CTR).  A :class:`FaultFilter` decrypts pages as they
fault into the GPU page cache and re-encrypts them on write-back.  The
GPU kernel is ordinary apointer code and never sees ciphertext.

Run:  python examples/encrypted_mmap.py
"""

import numpy as np

from repro.core import APConfig, AVM
from repro.gpu import Device
from repro.host import HostFileSystem, O_RDWR
from repro.host.ramfs import RamFS
from repro.paging import GPUfs, GPUfsConfig
from repro.paging.gpufs import FaultFilter

PAGE = 4096
FILE_PAGES = 16
KEY = 0xC96C5795D7870F42


class StreamCipherFilter(FaultFilter):
    """Keyed XOR keystream per page — decrypt on page-in, encrypt on
    page-out.  ``instructions_per_byte`` charges the GPU threads doing
    the transformation inside the fault handler."""

    instructions_per_byte = 0.25

    def __init__(self, key: int, page_size: int = PAGE):
        self._streams = {}
        self._key = key
        self._page_size = page_size

    def _keystream(self, fpn: int) -> np.ndarray:
        if fpn not in self._streams:
            rng = np.random.RandomState((self._key ^ fpn) % (2 ** 32))
            self._streams[fpn] = rng.randint(
                0, 256, self._page_size, dtype=np.uint8)
        return self._streams[fpn]

    def page_in(self, data: np.ndarray, fpn: int) -> np.ndarray:
        return data ^ self._keystream(fpn)

    def page_out(self, data: np.ndarray, fpn: int) -> np.ndarray:
        return data ^ self._keystream(fpn)


def main():
    cipher = StreamCipherFilter(KEY)
    plaintext = np.arange(FILE_PAGES * PAGE // 4, dtype=np.uint32)

    # The host file holds only ciphertext.
    ciphertext = np.concatenate([
        plaintext.view(np.uint8)[p * PAGE:(p + 1) * PAGE]
        ^ cipher._keystream(p)
        for p in range(FILE_PAGES)
    ])
    ramfs = RamFS()
    ramfs.create("secret.bin", ciphertext)

    device = Device(memory_bytes=64 * 1024 * 1024)
    gpufs = GPUfs(device, HostFileSystem(ramfs),
                  GPUfsConfig(page_size=PAGE, num_frames=8),
                  fault_filter=cipher)
    avm = AVM(APConfig(), gpufs=gpufs)
    fid = gpufs.open("secret.bin", O_RDWR)

    sums = []

    def kernel(ctx):
        # Ordinary apointer code — oblivious to the encryption.
        ptr = avm.gvmmap(ctx, FILE_PAGES * PAGE, fid, write=True)
        yield from ptr.seek(ctx, ctx.lane * 4)
        total = np.zeros(32, dtype=np.uint64)
        for page in range(FILE_PAGES):
            vals = yield from ptr.read(ctx, "u4")
            total += vals
            if page == 3:                      # update one page in place
                yield from ptr.write(ctx, vals * 2, "u4")
            yield from ptr.add(ctx, PAGE)
        sums.append(total)
        yield from ptr.destroy(ctx)
        yield from gpufs.flush(ctx)

    device.launch(kernel, grid=1, block_threads=32)

    expect = plaintext.reshape(FILE_PAGES, -1)[:, :32].sum(
        axis=0, dtype=np.uint64)
    assert np.array_equal(sums[0], expect), "GPU saw wrong plaintext"
    print(f"GPU summed plaintext correctly: lanes[:4] = {sums[0][:4]}")

    # The host file still holds ciphertext — including the updated page.
    stored = ramfs.open("secret.bin").pread(3 * PAGE, 128)
    decrypted = (stored ^ cipher._keystream(3)[:128]).view(np.uint32)
    assert np.array_equal(decrypted, plaintext[3 * 1024:3 * 1024 + 32] * 2)
    raw = stored.view(np.uint32)
    assert not np.array_equal(raw, decrypted), "file stores plaintext!"
    print("host file remains ciphertext; updated page re-encrypted on "
          "write-back")
    print(f"paging: {gpufs.stats.major_faults} major faults, "
          f"{gpufs.cache.writebacks} write-backs")
    print("OK")


if __name__ == "__main__":
    main()
