"""gread()/gwrite() vs. memory-mapped apointers, side by side.

The paper motivates memory-mapped files against the classic GPUfs
read/write API: mmap "eliminate[s] buffer allocation, read/write system
calls, and file pointer arithmetics, as well as enable[s] seamless
serialization/deserialization of in-memory data structures", plus
zero-copy.  This example performs the same task both ways — summing
scattered 256-byte records from a file — and reports the difference in
code shape, data movement, and simulated time.

Run:  python examples/gread_vs_mmap.py
"""

import numpy as np

from repro.core import APConfig, AVM
from repro.gpu import Device
from repro.host import HostFileSystem
from repro.host.ramfs import RamFS
from repro.paging import GPUfs, GPUfsConfig
from repro.paging.fileapi import gopen
from repro.workloads.filebench import warm_page_cache

PAGE = 4096
RECORD = 256                       # one 64-float record
NUM_RECORDS = 2048
LOOKUPS = 128                      # random records each warp sums


def build(seed=11):
    rng = np.random.RandomState(seed)
    data = rng.uniform(-1, 1, NUM_RECORDS * RECORD // 4).astype(np.float32)
    fs = RamFS()
    fs.create("records.bin", data.view(np.uint8))
    device = Device(memory_bytes=64 * 1024 * 1024)
    npages = NUM_RECORDS * RECORD // PAGE
    gpufs = GPUfs(device, HostFileSystem(fs),
                  GPUfsConfig(page_size=PAGE, num_frames=npages + 8))
    # Warm the page cache so the comparison isolates the access paths
    # (buffer copies vs zero-copy) rather than host transfers.
    fid_tmp = gpufs.open("records.bin")
    warm_page_cache(device, gpufs, fid_tmp, npages)
    picks = rng.randint(0, NUM_RECORDS, size=LOOKUPS)
    return device, gpufs, data, picks


NWARPS = 8
FILE_BYTES = NUM_RECORDS * RECORD


def main():
    stripe = FILE_BYTES // NWARPS          # each warp scans one stripe

    # ---------------- gread: explicit buffers and calls ---------------
    device, gpufs, data, picks = build()
    gfile = gopen(gpufs, "records.bin")
    bufs = device.alloc(NWARPS * PAGE)     # explicit per-warp buffers
    out_gread = []

    def gread_kernel(ctx):
        buf = bufs + ctx.warp_id * PAGE
        total = np.zeros(ctx.warp_size, dtype=np.float64)
        base = ctx.warp_id * stripe
        for off in range(0, stripe, PAGE):
            # read() a page-sized chunk into the buffer...
            yield from gfile.gread(ctx, base + off, PAGE, buf)
            # ...then consume the buffer.
            for line in range(PAGE // (16 * 32)):
                vals = yield from ctx.load_wide(
                    buf + line * 512 + ctx.lane * 16, "f4", 4)
                ctx.charge(6, chain=6)
                total += vals.sum(axis=1)
        out_gread.append(total)

    r1 = device.launch(gread_kernel, grid=1, block_threads=NWARPS * 32)

    # ---------------- mmap: just a pointer ----------------------------
    device2, gpufs2, _, _ = build()
    avm = AVM(APConfig(), gpufs=gpufs2)
    fid = gpufs2.open("records.bin")
    out_mmap = []

    def mmap_kernel(ctx):
        ptr = avm.gvmmap(ctx, FILE_BYTES, fid)
        total = np.zeros(ctx.warp_size, dtype=np.float64)
        yield from ptr.seek(ctx, ctx.warp_id * stripe + ctx.lane * 16)
        for _ in range(stripe // 512):
            vals = yield from ptr.read_wide(ctx, 4, "f4")  # zero-copy
            ctx.charge(6, chain=6)
            total += vals.sum(axis=1)
            yield from ptr.add(ctx, 512)
        yield from ptr.destroy(ctx)
        out_mmap.append(total)

    r2 = device2.launch(mmap_kernel, grid=1, block_threads=NWARPS * 32)

    per_warp = data.reshape(NWARPS, -1, 32, 4).sum(axis=(1, 3))
    for outs in (out_gread, out_mmap):
        got = np.stack(outs)
        assert np.allclose(np.sort(got.sum(axis=1)),
                           np.sort(per_warp.sum(axis=1)), rtol=1e-5)

    print(f"sequential scan of a {FILE_BYTES // 1024} KB file, "
          f"both results correct")
    print(f"  gread:  {r1.cycles:9.0f} cycles  "
          f"{r1.stats.dram_bytes:8d} DRAM bytes "
          f"(page copied to a buffer, then consumed)")
    print(f"  mmap:   {r2.cycles:9.0f} cycles  "
          f"{r2.stats.dram_bytes:8d} DRAM bytes "
          f"(zero-copy reads from the page cache)")
    saving = 100 * (1 - r2.stats.dram_bytes / r1.stats.dram_bytes)
    print(f"  mmap moves {saving:.0f}% less DRAM traffic at comparable "
          f"time ({r1.cycles / r2.cycles:.2f}x), with no buffer "
          f"management in the kernel")
    # Zero-copy: the buffer round-trip disappears from the traffic.
    assert r2.stats.dram_bytes < 0.75 * r1.stats.dram_bytes
    # Per-access translation costs roughly offset the copy savings in
    # cycles on this workload; neither should dominate.
    assert 0.7 < r2.cycles / r1.cycles < 1.3
    print("OK")


if __name__ == "__main__":
    main()
