"""Quickstart: memory-mapped files on a (simulated) GPU.

Mirrors the paper's Figure 3: open a host file, ``gvmmap`` it from GPU
code, and use the returned active pointer like a plain pointer — reads,
writes, and pointer arithmetic.  The first access to each page triggers
a page fault handled *on the GPU*; the data moves from the host file
into the GPU page cache on demand.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import APConfig, AVM
from repro.gpu import Device
from repro.host import HostFileSystem, O_RDWR
from repro.host.ramfs import RamFS
from repro.paging import GPUfs, GPUfsConfig

PAGE = 4096
FILE_PAGES = 64


def main():
    # --- Host side: a file in the (RAM) file system -------------------
    ramfs = RamFS()
    payload = np.arange(FILE_PAGES * PAGE // 4, dtype=np.uint32)
    ramfs.create("numbers.bin", payload.view(np.uint8))

    # --- GPU side: device + GPUfs paging layer + AVM ------------------
    device = Device(memory_bytes=64 * 1024 * 1024)
    gpufs = GPUfs(device, HostFileSystem(ramfs),
                  GPUfsConfig(page_size=PAGE, num_frames=16))
    avm = AVM(APConfig(), gpufs=gpufs)
    fid = gpufs.open("numbers.bin", O_RDWR)

    seen = []

    def kernel(ctx):
        # ptr starts unlinked; the first dereference page-faults.
        ptr = avm.gvmmap(ctx, FILE_PAGES * PAGE, fid, write=True)
        yield from ptr.seek(ctx, ctx.lane * 4)      # one element per lane

        first = yield from ptr.read(ctx, "u4")      # major page fault
        seen.append(("page 0", first.copy()))

        yield from ptr.add(ctx, 10 * PAGE)          # pointer arithmetic
        tenth = yield from ptr.read(ctx, "u4")      # faults page 10 in
        seen.append(("page 10", tenth.copy()))

        yield from ptr.write(ctx, tenth + 1, "u4")  # fault-free write
        yield from ptr.destroy(ctx)                 # drop page references
        yield from gpufs.flush(ctx)                 # write-back to host

    result = device.launch(kernel, grid=1, block_threads=32)

    for label, values in seen:
        print(f"{label}: lanes read {values[:4]} ...")
    back = ramfs.open("numbers.bin").pread(10 * PAGE, 16).view(np.uint32)
    print(f"host file after write-back: {back}")
    print(f"kernel time: {result.seconds * 1e6:.1f} us simulated "
          f"({result.cycles:.0f} cycles)")
    print(f"paging: {gpufs.stats.major_faults} major / "
          f"{gpufs.stats.minor_faults} minor faults")
    assert np.array_equal(seen[0][1], payload[:32])
    assert np.array_equal(back, payload[10 * 1024:10 * 1024 + 4] + 1)
    print("OK")


if __name__ == "__main__":
    main()
