"""Cross-shard tracing smoke: jobs=1 == jobs=2, spans end to end.

Runs one apointer-reading cluster on two devices twice — all shards
in-process, then one spawn worker per device — and asserts the merged
observability surfaces are bit-identical: trace events (including
causal request ids), cycle-window series, stats, and cycles.  Then
re-runs under the ambient profiler, validates the merged schema-v8
profile it records, and drives the ``repro-spans`` / ``repro-attr``
CLIs over the written trace.

CI runs this as the sharded-tracing gate.  It is a real file (not a
heredoc) because the ``jobs=2`` leg spawns workers, and spawn
re-imports ``__main__`` — which must therefore be importable.
"""

from __future__ import annotations

import json
import sys
import tempfile

import numpy as np

from repro.core import APConfig, AVM
from repro.gpu import Device, K80_SPEC
from repro.gpu.multigpu import ClusterLaunch
from repro.gpu.sharded import launch_cluster_sharded

ITERS = 64          # reads per thread
STRIDE = 128        # bytes between reads: crosses a page every 32
NBYTES = 64 * 1024
WINDOW = 2000.0


def kernel(ctx, avm, src, nbytes):
    ap = avm.gvmmap_device(ctx, src, nbytes)
    yield from ap.seek(ctx, ctx.lane * 4)
    for _ in range(ITERS):
        yield from ap.read(ctx, "f4")
        yield from ap.add(ctx, STRIDE)
    yield from ap.destroy(ctx)


def build():
    launches = []
    for _ in range(2):
        device = Device(spec=K80_SPEC, memory_bytes=8 * 1024 * 1024)
        src = device.alloc(NBYTES)
        device.memory.write(
            src, np.arange(NBYTES // 4, dtype=np.float32))
        avm = AVM(APConfig())
        launches.append(ClusterLaunch(device, kernel, grid=2,
                                      block_threads=64,
                                      args=(avm, src, NBYTES)))
    return launches


def run(jobs):
    return launch_cluster_sharded(build(), jobs=jobs, trace=True,
                                  timeseries=True,
                                  window_cycles=WINDOW, profile=True)


def event_tuples(tracer):
    return [(e.warp, e.block, e.kind, e.start, e.end, e.detail,
             e.sm, e.req) for e in tracer.events]


def main() -> int:
    serial = run(jobs=1)
    parallel = run(jobs=2)
    assert parallel.cycles == serial.cycles
    assert parallel.stats == serial.stats
    assert event_tuples(parallel.tracer) == event_tuples(serial.tracer)
    assert parallel.tracer.dropped == serial.tracer.dropped == 0
    assert json.dumps(parallel.series, sort_keys=True) \
        == json.dumps(serial.series, sort_keys=True)

    reqs = {e.req for e in serial.tracer.events if e.req}
    assert reqs, "no request-stamped spans in the merged trace"
    # Request ids rebase to each shard's device prefix.
    assert {r.split(":")[0] for r in reqs} == {"0", "1"}
    print(f"bit-identical at {serial.cycles:.0f} cycles: "
          f"{len(serial.tracer.events)} events, "
          f"{len(serial.series['series'])} windows, "
          f"{len(reqs)} causal requests")

    # Ambient profiler leg: the merged cluster lands as one schema-v8
    # profile whose spans component repro-spans / repro-attr can read.
    from repro.telemetry import capture, validate_profile
    from repro.telemetry.cli import main as attr_main
    from repro.telemetry.spans import main as spans_main

    with capture(trace=True, timeseries=True,
                 window_cycles=WINDOW) as prof:
        run(jobs=2)
    doc = prof.profiles[0].to_dict()
    validate_profile(doc)
    assert doc["version"] == 8, doc["version"]
    assert doc["components"]["spans"]["requests"] == len(reqs), \
        doc["components"]["spans"]
    out = tempfile.mkdtemp(prefix="sharded-smoke-")
    prof.write(out)
    assert spans_main([out]) == 0
    assert attr_main([out, "--validate"]) == 0
    print(f"v8 profile validated; repro-spans and repro-attr ok ({out})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
