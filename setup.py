"""Setuptools shim.

The project is configured in pyproject.toml; this file exists so that
``pip install -e . --no-build-isolation --no-use-pep517`` works on
offline machines that lack the ``wheel`` package required for PEP 660
editable installs.
"""

from setuptools import setup

setup()
