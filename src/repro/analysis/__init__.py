"""Static analysis and runtime sanitization for kernel coroutines.

Two layers share this package:

* the **linter** (``repro-lint`` / :mod:`repro.analysis.linter`): an
  AST pass over kernel source that needs nothing but the standard
  library - safe for fast CI jobs;
* the **sanitizer** (:mod:`repro.analysis.sanitizer`): an opt-in
  runtime mode (``GPUfsConfig(sanitize=True)``) that wraps live
  :class:`~repro.gpu.kernel.WarpContext` objects to check SIMT
  lockstep, pin balance, and cross-warp write races during a run.

The sanitizer pulls in numpy via the simulator, so it is exported
lazily: importing :mod:`repro.analysis` alone keeps the linter path
dependency-free.
"""

from repro.analysis.model import RULES, Finding

__all__ = ["RULES", "Finding", "EffectProgram", "EffectSummary",
           "CallGraph", "Sanitizer", "Violation", "SanitizerStats"]


def _effects_exports():
    # Local import: keeps ``import repro.analysis`` cheap and avoids
    # an import cycle with the rule modules.
    from repro.analysis.callgraph import CallGraph
    from repro.analysis.effects import EffectProgram, EffectSummary
    return {"CallGraph": CallGraph, "EffectProgram": EffectProgram,
            "EffectSummary": EffectSummary}

_LAZY = {"Sanitizer", "Violation", "SanitizerStats",
         "SanitizedWarpContext"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.analysis import sanitizer as _sanitizer
        return getattr(_sanitizer, name)
    if name in ("CallGraph", "EffectProgram", "EffectSummary"):
        return _effects_exports()[name]
    raise AttributeError(
        f"module 'repro.analysis' has no attribute {name!r}")
