"""Findings baseline: the ratchet that lets CI fail only on *new* debt.

``shared-race`` is a may-analysis; some of its reports are per-warp
disjoint by construction and will never be "fixed".  Instead of
suppressing them inline file by file, the repo commits a baseline
(``lint-baseline.json``): a set of finding *fingerprints* that are
known and accepted.  CI then:

* **fails** on any finding whose fingerprint is not in the baseline
  (new debt never lands silently);
* **warns** on baseline entries that no longer match any finding
  (fixed debt should be deleted from the baseline so the ratchet only
  ever tightens).

Fingerprints are deliberately **line-independent** -
``sha1(rule|path|function|message)`` truncated to 16 hex chars - so
unrelated edits above a finding do not churn the baseline.  Two
identical findings in one function fold into one fingerprint, which
is the right granularity for a ratchet.
"""

from __future__ import annotations

import hashlib
import json

from repro.analysis.model import Finding

#: Schema version of the baseline file.
VERSION = 1


def fingerprint(finding: Finding) -> str:
    blob = "|".join((finding.rule, finding.path, finding.function,
                     finding.message))
    return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:16]


def render(findings: list[Finding]) -> dict:
    """The committed baseline document for ``findings``."""
    entries: dict[str, dict] = {}
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col,
                                             f.rule)):
        entries.setdefault(fingerprint(f), {
            "rule": f.rule, "path": f.path, "function": f.function,
            "message": f.message,
        })
    return {"version": VERSION, "findings": entries}


def write(path: str, findings: list[Finding]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(render(findings), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load(path: str) -> dict:
    """Baseline entries ``{fingerprint: entry}``; {} if absent."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        return {}
    except (OSError, ValueError):
        return {}
    return dict(doc.get("findings", {}))


def compare(findings: list[Finding], entries: dict):
    """Split ``findings`` against a loaded baseline.

    Returns ``(new_findings, stale_entries)``: findings whose
    fingerprint is unknown (CI fails on these) and baseline entries no
    current finding matches (CI warns: delete them).
    """
    current = {fingerprint(f) for f in findings}
    new = [f for f in findings if fingerprint(f) not in entries]
    stale = {fp: entry for fp, entry in sorted(entries.items())
             if fp not in current}
    return new, stale
