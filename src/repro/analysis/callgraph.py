"""Kernel-coroutine call graph for interprocedural analysis.

The effect inference (:mod:`repro.analysis.effects`) needs to know, for
every ``yield from helper(ctx, ...)`` site, *which* generator functions
the call can reach.  This module builds that graph over every
:class:`~repro.analysis.kernels.ModuleIndex` handed to it:

* **nodes** are generator kernel functions (anything
  :func:`~repro.analysis.kernels.index_module` classified as a kernel
  whose own body yields);
* **edges** follow calls that can transfer control into another
  indexed generator - bare-name calls to module-local helpers,
  ``self._helper(ctx, ...)`` method calls, and cross-module method
  calls resolved *by name* (``backend.fault(ctx, ...)`` reaches every
  indexed generator named ``fault``: dynamic dispatch is modelled as
  the join over all candidates).

Resolution is deliberately conservative: a method call only resolves
when the context is passed as first argument (the kernel-coroutine
calling convention), and an unresolvable timed call is reported to the
caller as *opaque* rather than silently dropped.

:meth:`CallGraph.sccs` returns strongly connected components in
reverse topological order (callees before callers), which is the
evaluation order the bottom-up summary propagation wants; recursive
cliques come out as multi-node SCCs that the effects pass iterates to
a fixpoint.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.kernels import (
    KernelFn,
    ModuleIndex,
    call_name,
    first_arg_is_ctx,
    is_generator_fn,
    receiver_is_ctx,
)


@dataclass(frozen=True)
class FnKey:
    """Stable identity of one function: file path + qualified name."""

    path: str
    qualname: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.path}::{self.qualname}"


@dataclass
class FnNode:
    """One generator kernel function in the graph."""

    key: FnKey
    kernel: KernelFn
    index: ModuleIndex

    @property
    def name(self) -> str:
        return self.kernel.node.name

    def param_names(self) -> list[str]:
        """Positional parameter names, in order (``self`` included)."""
        args = self.kernel.node.args
        return [a.arg for a in
                list(args.posonlyargs) + list(args.args)]


@dataclass
class CallGraph:
    """Name-resolved call graph over a set of indexed modules."""

    nodes: dict[FnKey, FnNode] = field(default_factory=dict)
    #: function/method name -> every generator node with that name.
    by_name: dict[str, list[FnKey]] = field(default_factory=dict)
    #: names that are *also* a non-generator ctx-taking function
    #: somewhere: cross-module by-name resolution refuses these so a
    #: collision cannot bind a host helper to a coroutine summary.
    plain_names: set[str] = field(default_factory=set)
    edges: dict[FnKey, set[FnKey]] = field(default_factory=dict)
    callers: dict[FnKey, set[FnKey]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, indexes: list[ModuleIndex]) -> "CallGraph":
        graph = cls()
        for index in indexes:
            graph.plain_names |= index.local_plain
            for kernel in index.kernels:
                if not is_generator_fn(kernel.node):
                    continue
                key = FnKey(index.path, kernel.qualname)
                graph.nodes[key] = FnNode(key=key, kernel=kernel,
                                          index=index)
                graph.by_name.setdefault(
                    kernel.node.name, []).append(key)
        for index in indexes:
            for kernel in index.kernels:
                key = FnKey(index.path, kernel.qualname)
                if key not in graph.nodes:
                    continue
                succs = graph.edges.setdefault(key, set())
                for node in ast.walk(kernel.node):
                    if not isinstance(node, ast.Call):
                        continue
                    for callee in graph.resolve(node, kernel, index):
                        succs.add(callee.key)
                        graph.callers.setdefault(
                            callee.key, set()).add(key)
        return graph

    # ------------------------------------------------------------------
    def resolve(self, call: ast.Call, kernel: KernelFn,
                index: ModuleIndex) -> list[FnNode]:
        """Every indexed generator ``call`` can transfer into.

        Empty for context intrinsics (``ctx.load``), plain host calls,
        and names with no indexed generator candidate - the caller
        decides whether an empty resolution of a *timed* name means an
        opaque callee.
        """
        name = call_name(call)
        if not name or receiver_is_ctx(call, kernel.ctx_names):
            return []
        if name not in self.by_name:
            return []
        same_module = [k for k in self.by_name[name]
                       if k.path == index.path]
        if isinstance(call.func, ast.Name):
            # Bare-name call: a module-local helper (possibly a closure
            # capturing ctx) or, with an explicit ctx argument, any
            # known free function of that name.
            if name in index.local_generators and same_module:
                return [self.nodes[k] for k in same_module]
            if first_arg_is_ctx(call, kernel.ctx_names):
                keys = same_module or self._global(name)
                return [self.nodes[k] for k in keys]
            return []
        # Method call: require the coroutine calling convention (ctx as
        # first argument) so host-side APIs sharing a name never bind.
        if not first_arg_is_ctx(call, kernel.ctx_names):
            return []
        keys = same_module or self._global(name)
        return [self.nodes[k] for k in keys]

    def _global(self, name: str) -> list[FnKey]:
        """Cross-module by-name candidates, refused on collisions."""
        if name in self.plain_names:
            return []
        return self.by_name[name]

    # ------------------------------------------------------------------
    def sccs(self) -> list[list[FnKey]]:
        """Strongly connected components, callees before callers."""
        index_of: dict[FnKey, int] = {}
        low: dict[FnKey, int] = {}
        on_stack: set[FnKey] = set()
        stack: list[FnKey] = []
        out: list[list[FnKey]] = []
        counter = [0]

        def strongconnect(root: FnKey) -> None:
            # Iterative Tarjan: (node, iterator over successors).
            work = [(root, iter(sorted(self.edges.get(root, ()),
                                       key=str)))]
            index_of[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, succs = work[-1]
                advanced = False
                for succ in succs:
                    if succ not in self.nodes:
                        continue
                    if succ not in index_of:
                        index_of[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append(
                            (succ, iter(sorted(self.edges.get(succ, ()),
                                               key=str))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index_of[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index_of[node]:
                    component: list[FnKey] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    out.append(component)

        for key in sorted(self.nodes, key=str):
            if key not in index_of:
                strongconnect(key)
        return out

    def roots(self) -> list[FnKey]:
        """Nodes no indexed kernel calls - the entry kernels whose
        closed effect contexts the race rule evaluates."""
        return sorted((k for k in self.nodes
                       if not self.callers.get(k)), key=str)
