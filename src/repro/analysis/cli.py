"""``repro-lint``: command-line front end for :mod:`repro.analysis`.

Exit status: 0 when clean, 1 when findings exist, 2 on usage errors -
the contract the CI lint job keys on.  ``--format=json`` emits a
machine-readable envelope (findings + counts) on stdout.

The interprocedural additions:

``--effects PATH``
    Serialize every generator kernel's inferred effect summary
    (``effects.json``); ``-`` writes to stdout.
``--sarif PATH``
    Emit SARIF 2.1.0 for GitHub code scanning upload.
``--baseline PATH``
    Ratchet mode: only findings *not* fingerprinted in the baseline
    fail the run; stale baseline entries (fixed but not removed) are
    warned about on stderr.
``--update-baseline``
    Rewrite the baseline file from this run's findings and exit 0.
``--no-interprocedural``
    Lexical-only mode - what the linter saw before effect inference
    existed.  Exists so tests can prove the interprocedural rules
    catch bugs this mode provably misses.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import baseline as baseline_mod
from repro.analysis import sarif as sarif_mod
from repro.analysis.linter import lint_paths
from repro.analysis.model import RULES

DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=("Static analysis for SIMT kernel coroutines: "
                     "un-driven timed generators, divergent yields "
                     "and barriers, apointer lifecycle, lock order, "
                     "shared-structure races, uncalibrated costs."))
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit")
    parser.add_argument(
        "--effects", metavar="PATH",
        help="write inferred effect summaries as JSON ('-' = stdout)")
    parser.add_argument(
        "--sarif", metavar="PATH",
        help="write findings as SARIF 2.1.0 for code scanning")
    parser.add_argument(
        "--baseline", metavar="PATH", nargs="?",
        const=DEFAULT_BASELINE,
        help=(f"fail only on findings not in this baseline "
              f"(default path: {DEFAULT_BASELINE})"))
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from this run's findings")
    parser.add_argument(
        "--no-interprocedural", action="store_true",
        help="disable effect inference (lexical rules only)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for name, desc in RULES.items():
            print(f"{name}: {desc}")
        return 0
    result = lint_paths(args.paths,
                        interprocedural=not args.no_interprocedural)

    if args.effects:
        if result.effects is None:
            print("repro-lint: --effects requires interprocedural "
                  "analysis (drop --no-interprocedural)",
                  file=sys.stderr)
            return 2
        doc = json.dumps(result.effects.to_dict(), indent=2,
                         sort_keys=True)
        if args.effects == "-":
            print(doc)
        else:
            with open(args.effects, "w", encoding="utf-8") as fh:
                fh.write(doc + "\n")
    if args.sarif:
        sarif_mod.write(args.sarif, result.findings, result.errors)

    baseline_path = args.baseline or (
        DEFAULT_BASELINE if args.update_baseline else None)
    if args.update_baseline:
        baseline_mod.write(baseline_path, result.findings)
        print(f"repro-lint: baseline '{baseline_path}' updated with "
              f"{len(result.findings)} finding(s)", file=sys.stderr)
        return 0

    shown = result.findings
    stale: dict = {}
    hidden = 0
    if baseline_path is not None:
        entries = baseline_mod.load(baseline_path)
        shown, stale = baseline_mod.compare(result.findings, entries)
        hidden = len(result.findings) - len(shown)

    if args.format == "json":
        print(json.dumps({
            "findings": [f.to_dict() for f in shown],
            "baselined": hidden,
            "stale_baseline": stale,
            "files_checked": result.files_checked,
            "kernels_checked": result.kernels_checked,
            "errors": [{"path": p, "message": m}
                       for p, m in result.errors],
        }, indent=2))
    else:
        for finding in shown:
            where = f" in {finding.function}" if finding.function else ""
            print(f"{finding.location()}: [{finding.rule}]{where}: "
                  f"{finding.message}")
        for fp, entry in stale.items():
            print(f"repro-lint: warning: baseline entry {fp} "
                  f"({entry.get('rule')} in {entry.get('path')}) no "
                  f"longer matches any finding - remove it from the "
                  f"baseline", file=sys.stderr)
        suffix = f", {hidden} baselined" if hidden else ""
        print(f"repro-lint: {len(shown)} finding(s) in "
              f"{result.files_checked} file(s), "
              f"{result.kernels_checked} kernel(s) checked{suffix}",
              file=sys.stderr)
    return 1 if shown else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
