"""``repro-lint``: command-line front end for :mod:`repro.analysis`.

Exit status: 0 when clean, 1 when findings exist, 2 on usage errors -
the contract the CI lint job keys on.  ``--format=json`` emits a
machine-readable envelope (findings + counts) on stdout.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.linter import lint_paths
from repro.analysis.model import RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=("Static analysis for SIMT kernel coroutines: "
                     "un-driven timed generators, divergent yields, "
                     "apointer lifecycle, lock order, uncalibrated "
                     "costs."))
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for name, desc in RULES.items():
            print(f"{name}: {desc}")
        return 0
    result = lint_paths(args.paths)
    if args.format == "json":
        print(json.dumps({
            "findings": [f.to_dict() for f in result.findings],
            "files_checked": result.files_checked,
            "kernels_checked": result.kernels_checked,
            "errors": [{"path": p, "message": m}
                       for p, m in result.errors],
        }, indent=2))
    else:
        for finding in result.findings:
            where = f" in {finding.function}" if finding.function else ""
            print(f"{finding.location()}: [{finding.rule}]{where}: "
                  f"{finding.message}")
        print(f"repro-lint: {len(result.findings)} finding(s) in "
              f"{result.files_checked} file(s), "
              f"{result.kernels_checked} kernel(s) checked",
              file=sys.stderr)
    return 1 if result.findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
