"""Bottom-up interprocedural effect inference for kernel coroutines.

Every generator kernel gets an :class:`EffectSummary` - what it *may*
do to the machine state the paper's concurrency argument rests on:

* **locks** - spinlock keys may-acquired anywhere inside (transitively),
  keys still held at exit (``may``/``must`` split), and keys it
  releases on behalf of its caller;
* **barriers** - how many ``syncthreads`` a warp passes through the
  call, as a ``[min, max]`` interval (``TOP`` = data-dependent);
* **blocking syscalls** - which :mod:`repro.syscalls` entry points can
  be reached (the GPU-syscalls taxonomy's blocking axis);
* **pins** - net page-pin delta bounds (``gmmap``/``gmunmap``);
* **ownership** - which of its *parameters* it destroys
  (``ptr.destroy(ctx)`` / ``gvmunmap`` / ticket ``wait``), and whether
  on every path or only some;
* **shared-structure accesses** - reads/writes of the cross-warp
  host structures (page-table entries, page-cache frames, staging
  slots, syscall tickets, raw global memory), each recorded as an
  :class:`AccessSite` carrying the must-held locks and barrier epoch
  at the access.

Summaries are propagated bottom-up over the
:class:`~repro.analysis.callgraph.CallGraph`: SCCs (recursion) iterate
to a fixpoint, dynamic dispatch joins every candidate, and a timed
call that resolves to nothing is recorded in ``opaque_calls`` so
downstream rules know the summary is a lower bound there.  Lock keys
cross call boundaries by substituting the callee's parameter names
with the caller's argument expressions, so ``self._lock(k)`` inside a
helper shows up in the caller under the caller's spelling of ``k``.

The walk itself is path-sensitive with conservative joins: at a
branch join *must*-sets intersect and *may*-sets union; loop exits
join the zero-iteration path with every ``break`` and the
one-iteration body exit (a ``while True:`` has no zero-iteration
path, so a lock acquired before ``break`` is still must-held after
the loop).

Everything here is stdlib-only (``ast`` + ``dataclasses``): the CI
lint job must never pay the numpy import tax.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace

from repro.analysis.callgraph import CallGraph, FnKey, FnNode
from repro.analysis.kernels import (
    BLOCKING_SYSCALLS,
    KernelFn,
    ModuleIndex,
    call_name,
    first_arg_is_ctx,
    is_generator_fn,
    is_timed_generator_call,
    receiver_is_ctx,
)

#: Sentinel for "unbounded / data-dependent" barrier and pin counts.
TOP = 1 << 30

#: Per-summary bound on propagated access sites; beyond it the
#: summary sets ``sites_truncated`` (rules treat truncation as "may
#: access anything" rather than silently under-reporting).
SITE_CAP = 600

# ----------------------------------------------------------------------
# Shared-structure classification
# ----------------------------------------------------------------------
#: Attribute names that identify a page-table entry mutation/read
#: (``entry.dirty = False``).  Distinctive enough to match on the
#: attribute alone.
ENTRY_ATTRS = frozenset({
    "dirty", "ready", "ready_at", "refcount", "frame", "speculative",
    "removed",
})

#: Syscall-ticket completion state (``ticket.waited = True``).
TICKET_ATTRS = frozenset({"waited", "done_at"})

#: Method names that touch the page table / TLB; ``get``/``entries``
#: are too generic to match alone, so they additionally require a
#: receiver that *looks* like a table (``...table.get``, ``tlb...``).
_PT_WRITE_CALLS = frozenset({
    "insert", "host_insert", "host_remove", "remove_if_unreferenced",
    "add_refs", "unref", "lookup_and_ref", "install", "drain",
})
_PT_READ_CALLS = frozenset({"lookup", "get", "entries"})
_PT_GENERIC = frozenset({"get", "entries"})

_CACHE_WRITE_CALLS = frozenset({
    "bind", "mark_speculative", "allocate_speculative",
    "release_frame", "discard_frame",
})
_CACHE_READ_CALLS = frozenset({"frame_addr"})

_STAGING_TIMED_CALLS = frozenset({"fetch", "writeback", "flush_page"})
_STAGING_ANY_CALLS = frozenset({"fetch_async"})

_GMEM_WRITE = frozenset({"store", "store_wide", "store_scalar",
                         "atomic_add"})
_GMEM_READ = frozenset({"load", "load_wide", "load_scalar"})

#: Structures the ``shared-race`` rule pairs up.  ``global_memory`` is
#: deliberately excluded there (data races on raw memory are the
#: runtime sanitizer's torn-write detector's job - addresses are not
#: statically comparable) but still summarised for the
#: static/dynamic cross-check.
RACE_STRUCTS = ("page_table", "page_cache", "staging", "syscall_ticket")


@dataclass(frozen=True)
class AccessSite:
    """One classified shared-structure access."""

    struct: str                 # "page_table" | "page_cache" | ...
    kind: str                   # "read" | "write"
    path: str
    line: int
    col: int
    function: str
    locks: frozenset            # must-held lock keys at the access
    epoch: int                  # barriers passed before the access

    def to_dict(self) -> dict:
        return {
            "struct": self.struct, "kind": self.kind,
            "path": self.path, "line": self.line, "col": self.col,
            "function": self.function,
            "locks": sorted(self.locks), "epoch": self.epoch,
        }


@dataclass
class EffectSummary:
    """The inferred effect lattice element of one generator kernel."""

    path: str = ""
    qualname: str = ""
    params: tuple = ()
    yields: bool = False
    may_acquire: frozenset = frozenset()
    exit_may_held: frozenset = frozenset()
    exit_must_held: frozenset = frozenset()
    releases_foreign: frozenset = frozenset()
    barriers_min: int = 0
    barriers_max: int = 0
    blocking_syscalls: frozenset = frozenset()
    pin_delta_min: int = 0
    pin_delta_max: int = 0
    #: positional param index -> "always" | "sometimes" destroyed
    destroys_params: dict = field(default_factory=dict)
    writes: frozenset = frozenset()
    reads: frozenset = frozenset()
    opaque_calls: frozenset = frozenset()
    sites: tuple = ()
    sites_truncated: bool = False

    def to_dict(self) -> dict:
        def _bound(v):
            return "unbounded" if v >= TOP else v
        return {
            "path": self.path, "qualname": self.qualname,
            "params": list(self.params),
            "yields": self.yields,
            "locks": {
                "may_acquire": sorted(self.may_acquire),
                "exit_may_held": sorted(self.exit_may_held),
                "exit_must_held": sorted(self.exit_must_held),
                "releases_foreign": sorted(self.releases_foreign),
            },
            "barriers": {"min": _bound(self.barriers_min),
                         "max": _bound(self.barriers_max)},
            "blocking_syscalls": sorted(self.blocking_syscalls),
            "pins": {"min": -TOP if self.pin_delta_min <= -TOP
                     else self.pin_delta_min,
                     "max": _bound(self.pin_delta_max)},
            "destroys_params": {
                self.params[i] if i < len(self.params) else str(i): mode
                for i, mode in sorted(self.destroys_params.items())},
            "writes": sorted(self.writes),
            "reads": sorted(self.reads),
            "opaque_calls": sorted(self.opaque_calls),
            "sites": [s.to_dict() for s in self.sites],
            "sites_truncated": self.sites_truncated,
        }


# ----------------------------------------------------------------------
# Path state
# ----------------------------------------------------------------------
@dataclass
class _State:
    may: list = field(default_factory=list)   # acquisition order kept
    must: set = field(default_factory=set)
    bmin: int = 0
    bmax: int = 0
    pmin: int = 0
    pmax: int = 0

    def clone(self) -> "_State":
        return _State(list(self.may), set(self.must),
                      self.bmin, self.bmax, self.pmin, self.pmax)


def _merge_order(a: list, b: list) -> list:
    merged = list(a)
    for key in b:
        if key not in merged:
            merged.append(key)
    return merged


def _join_states(states: list) -> "_State":
    """Conservative join: may = union, must = intersection."""
    states = [s for s in states if s is not None]
    if not states:
        return _State()
    out = states[0].clone()
    for s in states[1:]:
        out.may = _merge_order(out.may, s.may)
        out.must &= s.must
        out.bmin = min(out.bmin, s.bmin)
        out.bmax = max(out.bmax, s.bmax)
        out.pmin = min(out.pmin, s.pmin)
        out.pmax = max(out.pmax, s.pmax)
    return out


def _cap(value: int) -> int:
    return TOP if value >= TOP else (-TOP if value <= -TOP else value)


def _canonical_key(expr: ast.expr) -> str:
    try:
        return ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on exprs
        return "<unknown>"


def _substitute(key: str, mapping: dict) -> str:
    """Rewrite callee parameter names to caller argument expressions."""
    for param, repl in mapping.items():
        key = re.sub(rf"\b{re.escape(param)}\b",
                     lambda _m, r=repl: r, key)
    return key


def param_arg_map(callee: FnNode, call: ast.Call) -> dict:
    """``callee`` param name -> caller argument source text."""
    params = callee.param_names()
    mapping: dict = {}
    if params and params[0] == "self" \
            and isinstance(call.func, ast.Attribute):
        mapping["self"] = _canonical_key(call.func.value)
        params = params[1:]
    for param, arg in zip(params, call.args):
        mapping.setdefault(param, _canonical_key(arg))
    for kw in call.keywords:
        if kw.arg in params:
            mapping.setdefault(kw.arg, _canonical_key(kw.value))
    return mapping


def aligned_param_index(callee: FnNode, call: ast.Call,
                        arg_pos: int) -> int:
    """The full-params index the ``arg_pos``-th call argument binds."""
    params = callee.param_names()
    offset = 1 if params and params[0] == "self" \
        and isinstance(call.func, ast.Attribute) else 0
    return arg_pos + offset


# ----------------------------------------------------------------------
# Site classification
# ----------------------------------------------------------------------
def classify_attribute(node: ast.Attribute):
    """Classify one attribute node as a shared-structure access."""
    store = isinstance(node.ctx, (ast.Store, ast.Del))
    if node.attr in ENTRY_ATTRS:
        return ("page_table", "write" if store else "read")
    if node.attr in TICKET_ATTRS:
        return ("syscall_ticket", "write" if store else "read")
    return None


def classify_call(call: ast.Call, kernel: KernelFn):
    """Classify one call as a shared-structure access, or ``None``."""
    name = call_name(call)
    if not name:
        return None
    if receiver_is_ctx(call, kernel.ctx_names):
        if name in _GMEM_WRITE:
            return ("global_memory", "write")
        if name in _GMEM_READ:
            return ("global_memory", "read")
        return None
    receiver = ""
    if isinstance(call.func, ast.Attribute):
        receiver = _canonical_key(call.func.value)
    tableish = "table" in receiver or "tlb" in receiver
    if name in _PT_WRITE_CALLS:
        if name == "insert" and not (tableish or
                                     first_arg_is_ctx(call,
                                                      kernel.ctx_names)):
            return None     # list.insert and friends
        return ("page_table", "write")
    if name in _PT_READ_CALLS:
        if name in _PT_GENERIC and not tableish:
            return None     # dict.get / dict.entries lookalikes
        return ("page_table", "read")
    if name in _CACHE_WRITE_CALLS:
        return ("page_cache", "write")
    if name in _CACHE_READ_CALLS:
        return ("page_cache", "read")
    if name in _STAGING_TIMED_CALLS \
            and first_arg_is_ctx(call, kernel.ctx_names):
        return ("staging", "write")
    if name in _STAGING_ANY_CALLS:
        return ("staging", "write")
    return None


# ----------------------------------------------------------------------
# The per-function walker
# ----------------------------------------------------------------------
class _FnWalker:
    """One path-sensitive pass over one function body."""

    def __init__(self, fn: FnNode, program: "EffectProgram"):
        self.fn = fn
        self.program = program
        self.kernel = fn.kernel
        self.branch_depth = 0
        self.loop_breaks: list = []      # stack of break-state lists
        self.exits: list = []            # normal-exit states
        self.raise_may: list = []        # may-held at raise sites
        # Draft summary accumulators.
        self.may_acquire: set = set()
        self.releases_foreign: set = set()
        self.blocking: set = set()
        self.writes: set = set()
        self.reads: set = set()
        self.opaque: set = set()
        self.destroys: dict = {}
        self.sites: list = []
        self.truncated = False

    # ------------------------------------------------------------------
    def run(self) -> EffectSummary:
        state, terminated = self._walk(self.kernel.node.body, _State())
        if not terminated:
            self.exits.append(state)
        exit_state = _join_states(self.exits) if self.exits else _State()
        exit_may = set(exit_state.may)
        for s in self.raise_may:
            exit_may |= set(s.may)
        name = self.fn.name
        if name in BLOCKING_SYSCALLS:
            self.blocking.add(name)
        sites = tuple(self.sites[:SITE_CAP])
        return EffectSummary(
            path=self.fn.key.path, qualname=self.fn.key.qualname,
            params=tuple(self.fn.param_names()),
            yields=is_generator_fn(self.kernel.node),
            may_acquire=frozenset(self.may_acquire),
            exit_may_held=frozenset(exit_may),
            exit_must_held=frozenset(exit_state.must)
            if self.exits else frozenset(),
            releases_foreign=frozenset(self.releases_foreign),
            barriers_min=_cap(exit_state.bmin),
            barriers_max=_cap(exit_state.bmax),
            blocking_syscalls=frozenset(self.blocking),
            pin_delta_min=_cap(exit_state.pmin),
            pin_delta_max=_cap(exit_state.pmax),
            destroys_params=dict(self.destroys),
            writes=frozenset(self.writes),
            reads=frozenset(self.reads),
            opaque_calls=frozenset(self.opaque),
            sites=sites,
            sites_truncated=self.truncated
            or len(self.sites) > SITE_CAP)

    # ------------------------------------------------------------------
    def _walk(self, body: list, state: _State):
        """Returns ``(state_after, terminated)``."""
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.If):
                self._scan(stmt.test, state)
                self.branch_depth += 1
                arms = [self._walk(stmt.body, state.clone()),
                        self._walk(stmt.orelse, state.clone())]
                self.branch_depth -= 1
                live = [s for s, term in arms if not term]
                if not live:
                    return state, True
                new = _join_states(live)
                state.may, state.must = new.may, new.must
                state.bmin, state.bmax = new.bmin, new.bmax
                state.pmin, state.pmax = new.pmin, new.pmax
                continue
            if isinstance(stmt, (ast.While, ast.For)):
                test = stmt.test if isinstance(stmt, ast.While) \
                    else stmt.iter
                self._scan(test, state)
                always_enters = (
                    isinstance(stmt, ast.While)
                    and isinstance(stmt.test, ast.Constant)
                    and bool(stmt.test.value))
                self.branch_depth += 0 if always_enters else 1
                self.loop_breaks.append([])
                entry = state.clone()
                body_state, body_term = self._walk(stmt.body,
                                                   state.clone())
                breaks = self.loop_breaks.pop()
                if not always_enters:
                    self.branch_depth -= 1
                candidates = list(breaks)
                if always_enters:
                    # ``while True``: the only exits are breaks (a
                    # falling-through body just loops again).
                    if not candidates:
                        orelse_state, _ = self._walk(stmt.orelse,
                                                     entry.clone())
                        return state, True
                else:
                    candidates.append(entry)
                    if not body_term:
                        candidates.append(body_state)
                new = _join_states(candidates)
                # A loop body containing barriers/pins repeats a
                # data-dependent number of times: widen to TOP.
                if not always_enters and not body_term:
                    if body_state.bmax > entry.bmax:
                        new.bmax = TOP
                    if body_state.pmax > entry.pmax:
                        new.pmax = TOP
                    if body_state.pmin < entry.pmin:
                        new.pmin = -TOP
                state.may, state.must = new.may, new.must
                state.bmin, state.bmax = new.bmin, new.bmax
                state.pmin, state.pmax = new.pmin, new.pmax
                state, term = self._walk(stmt.orelse, state)
                if term:
                    return state, True
                continue
            if isinstance(stmt, ast.Try):
                entry = state.clone()
                self.branch_depth += 1
                body_state, body_term = self._walk(stmt.body,
                                                   state.clone())
                handler_states = []
                for handler in stmt.handlers:
                    h_state, h_term = self._walk(handler.body,
                                                 entry.clone())
                    if not h_term:
                        handler_states.append(h_state)
                if not body_term:
                    body_state, body_term = self._walk(stmt.orelse,
                                                       body_state)
                self.branch_depth -= 1
                live = ([] if body_term else [body_state]) \
                    + handler_states
                if not live:
                    if stmt.finalbody:
                        self._walk(stmt.finalbody, entry.clone())
                    return state, True
                new = _join_states(live)
                state.may, state.must = new.may, new.must
                state.bmin, state.bmax = new.bmin, new.bmax
                state.pmin, state.pmax = new.pmin, new.pmax
                state, term = self._walk(stmt.finalbody, state)
                if term:
                    return state, True
                continue
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    self._scan(item.context_expr, state)
                state, term = self._walk(stmt.body, state)
                if term:
                    return state, True
                continue
            # Leaf statement.
            self._scan(stmt, state)
            if isinstance(stmt, ast.Return):
                self.exits.append(state.clone())
                return state, True
            if isinstance(stmt, ast.Raise):
                self.raise_may.append(state.clone())
                return state, True
            if isinstance(stmt, (ast.Break, ast.Continue)):
                if isinstance(stmt, ast.Break) and self.loop_breaks:
                    self.loop_breaks[-1].append(state.clone())
                return state, True
        return state, False

    # ------------------------------------------------------------------
    def _scan(self, node, state: _State) -> None:
        """Process every effect event inside one statement/expression,
        in source order."""
        if node is None:
            return
        events = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute):
                cls = classify_attribute(sub)
                if cls is not None:
                    events.append((sub.lineno, sub.col_offset, "site",
                                   (sub, cls)))
            if not isinstance(sub, ast.Call):
                continue
            events.append((sub.lineno, sub.col_offset, "call", sub))
        for _, _, kind, payload in sorted(events, key=lambda e: (e[0],
                                                                 e[1])):
            if kind == "site":
                sub, (struct, access) = payload
                self._record_site(struct, access, sub, state)
            else:
                self._handle_call(payload, state)

    def _handle_call(self, call: ast.Call, state: _State) -> None:
        kernel = self.kernel
        name = call_name(call)
        cls = classify_call(call, kernel)
        if cls is not None:
            self._record_site(cls[0], cls[1], call, state)
        if receiver_is_ctx(call, kernel.ctx_names):
            if name == "syncthreads":
                state.bmin = _cap(state.bmin + 1)
                state.bmax = _cap(state.bmax + 1)
            elif name == "lock" and call.args:
                key = _canonical_key(call.args[0])
                self.may_acquire.add(key)
                if key not in state.may:
                    state.may.append(key)
                state.must.add(key)
            elif name == "unlock" and call.args:
                key = _canonical_key(call.args[0])
                if key in state.may:
                    state.may.reverse()
                    state.may.remove(key)
                    state.may.reverse()
                else:
                    self.releases_foreign.add(key)
                state.must.discard(key)
            return
        if name == "gmmap" and first_arg_is_ctx(call, kernel.ctx_names):
            state.pmin = _cap(state.pmin + 1)
            state.pmax = _cap(state.pmax + 1)
        elif name == "gmunmap" \
                and first_arg_is_ctx(call, kernel.ctx_names):
            state.pmin = _cap(state.pmin - 1)
            state.pmax = _cap(state.pmax - 1)
        if name in BLOCKING_SYSCALLS \
                and first_arg_is_ctx(call, kernel.ctx_names):
            self.blocking.add(name)
        self._note_destroy(call, name)
        candidates = self.program.graph.resolve(call, kernel,
                                                self.fn.index)
        if candidates:
            self._apply_candidates(call, candidates, state)
        elif is_timed_generator_call(call, kernel, self.fn.index):
            self.opaque.add(name)

    # ------------------------------------------------------------------
    def _note_destroy(self, call: ast.Call, name: str) -> None:
        """Record destruction of one of this function's parameters."""
        params = self.fn.param_names()
        target = None
        if name == "destroy" and isinstance(call.func, ast.Attribute) \
                and isinstance(call.func.value, ast.Name):
            target = call.func.value.id
        elif name in ("gvmunmap", "wait") \
                and first_arg_is_ctx(call, self.kernel.ctx_names) \
                and len(call.args) >= 2 \
                and isinstance(call.args[1], ast.Name):
            target = call.args[1].id
        if target is None or target not in params:
            return
        self._record_destroy(params.index(target))

    def _record_destroy(self, param_index: int) -> None:
        # "always" requires top-level AND no early exit above us: after
        # ``if n == 0: return`` the fall-through runs at depth 0, but
        # the return path still skips this destroy.
        unconditional = self.branch_depth == 0 and not self.exits \
            and not self.raise_may
        mode = "always" if unconditional else "sometimes"
        if self.destroys.get(param_index) != "always":
            self.destroys[param_index] = mode

    # ------------------------------------------------------------------
    def _record_site(self, struct: str, kind: str, node: ast.AST,
                     state: _State) -> None:
        (self.writes if kind == "write" else self.reads).add(struct)
        if len(self.sites) >= SITE_CAP:
            self.truncated = True
            return
        self.sites.append(AccessSite(
            struct=struct, kind=kind, path=self.fn.key.path,
            line=node.lineno, col=node.col_offset,
            function=self.fn.key.qualname,
            locks=frozenset(state.must), epoch=state.bmin))

    # ------------------------------------------------------------------
    def _apply_candidates(self, call: ast.Call, candidates: list,
                          state: _State) -> None:
        """Join the effect of every resolution candidate into state."""
        results = []
        destroy_sets = []
        for callee in candidates:
            summary = self.program.summaries.get(
                callee.key, EffectSummary())
            branch = state.clone()
            self._apply_one(call, callee, summary, branch)
            results.append(branch)
            destroy_sets.append(self._callee_destroys(call, callee,
                                                     summary))
        new = _join_states(results)
        state.may, state.must = new.may, new.must
        state.bmin, state.bmax = new.bmin, new.bmax
        state.pmin, state.pmax = new.pmin, new.pmax
        # A parameter only counts as destroyed when *every* candidate
        # destroys it (dynamic dispatch must not launder a leak).
        if destroy_sets:
            common = destroy_sets[0]
            for other in destroy_sets[1:]:
                merged = {}
                for idx, mode in common.items():
                    if idx in other:
                        merged[idx] = "always" \
                            if mode == other[idx] == "always" \
                            else "sometimes"
                common = merged
            for idx, mode in common.items():
                if mode == "sometimes":
                    # Weakest mode sticks even at depth 0.
                    if self.destroys.get(idx) != "always":
                        self.destroys[idx] = "sometimes"
                else:
                    self._record_destroy(idx)

    def _callee_destroys(self, call: ast.Call, callee: FnNode,
                         summary: EffectSummary) -> dict:
        """Which of *our* params the callee destroys through this call."""
        out: dict = {}
        params = self.fn.param_names()
        for pos, arg in enumerate(call.args):
            if not isinstance(arg, ast.Name) or arg.id not in params:
                continue
            callee_idx = aligned_param_index(callee, call, pos)
            mode = summary.destroys_params.get(callee_idx)
            if mode:
                out[params.index(arg.id)] = mode
        return out

    def _apply_one(self, call: ast.Call, callee: FnNode,
                   summary: EffectSummary, state: _State) -> None:
        mapping = param_arg_map(callee, call)
        sub = lambda k: _substitute(k, mapping)  # noqa: E731
        self.may_acquire |= {sub(k) for k in summary.may_acquire}
        self.blocking |= summary.blocking_syscalls
        self.writes |= summary.writes
        self.reads |= summary.reads
        self.opaque |= summary.opaque_calls
        for key in summary.releases_foreign:
            key = sub(key)
            if key in state.may:
                state.may.reverse()
                state.may.remove(key)
                state.may.reverse()
            else:
                self.releases_foreign.add(key)
            state.must.discard(key)
        for key in summary.exit_may_held:
            key = sub(key)
            if key not in state.may:
                state.may.append(key)
        for key in summary.exit_must_held:
            state.must.add(sub(key))
        # Imported sites see the caller's lock context and epoch.
        caller_locks = frozenset(state.must)
        for site in summary.sites:
            if len(self.sites) >= SITE_CAP:
                self.truncated = True
                break
            self.sites.append(replace(
                site, locks=site.locks | caller_locks,
                epoch=_cap(site.epoch + state.bmin)))
        if summary.sites_truncated:
            self.truncated = True
        state.bmin = _cap(state.bmin + summary.barriers_min)
        state.bmax = _cap(state.bmax + summary.barriers_max)
        state.pmin = _cap(state.pmin + summary.pin_delta_min)
        state.pmax = _cap(state.pmax + summary.pin_delta_max)


# ----------------------------------------------------------------------
# Program-level driver
# ----------------------------------------------------------------------
class EffectProgram:
    """Summaries for every generator kernel of a set of modules."""

    #: Fixpoint bound per SCC.  The set dimensions are finite and
    #: converge on their own; the barrier/pin counters are NOT (a
    #: recursive call adds the callee's count every round), so hitting
    #: the bound triggers a widening pass that sends still-growing
    #: counters to TOP.
    MAX_ROUNDS = 12

    def __init__(self, indexes: list):
        self.indexes: list[ModuleIndex] = list(indexes)
        self.graph = CallGraph.build(self.indexes)
        self.summaries: dict[FnKey, EffectSummary] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_sources(cls, sources: list) -> "EffectProgram":
        """Build from ``[(path, source), ...]`` pairs and infer."""
        from repro.analysis.kernels import index_module
        indexes = []
        for path, source in sources:
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                continue
            indexes.append(index_module(path, tree))
        program = cls(indexes)
        program.infer()
        return program

    # ------------------------------------------------------------------
    def infer(self) -> None:
        for component in self.graph.sccs():
            for _ in range(4):
                if self._rounds(component):
                    break
                self._widen(component)

    def _rounds(self, component) -> bool:
        """Iterate the SCC to a fixpoint; False if the bound was hit."""
        for _ in range(self.MAX_ROUNDS):
            changed = False
            for key in component:
                walker = _FnWalker(self.graph.nodes[key], self)
                new = walker.run()
                if self.summaries.get(key) != new:
                    self.summaries[key] = new
                    changed = True
            if not changed:
                return True
        return False

    def _widen(self, component) -> None:
        """Send counters that are still growing to TOP (recursion with
        barriers or pins inside the cycle has no static bound)."""
        for key in component:
            old = self.summaries.get(key)
            if old is None:
                continue
            new = _FnWalker(self.graph.nodes[key], self).run()
            self.summaries[key] = replace(
                new,
                barriers_min=TOP
                if new.barriers_min > old.barriers_min
                else new.barriers_min,
                barriers_max=TOP
                if new.barriers_max > old.barriers_max
                else new.barriers_max,
                pin_delta_min=-TOP
                if new.pin_delta_min < old.pin_delta_min
                else new.pin_delta_min,
                pin_delta_max=TOP
                if new.pin_delta_max > old.pin_delta_max
                else new.pin_delta_max)

    # ------------------------------------------------------------------
    def summary(self, path: str, qualname: str):
        return self.summaries.get(FnKey(path, qualname))

    def summary_by_qualname(self, qualname: str):
        """First summary whose qualified name matches (test helper)."""
        for key in sorted(self.summaries, key=str):
            if key.qualname == qualname:
                return self.summaries[key]
        return None

    def roots(self) -> list:
        return self.graph.roots()

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": 1,
            "generator": "repro-lint --effects",
            "functions": {
                str(key): self.summaries[key].to_dict()
                for key in sorted(self.summaries, key=str)
            },
        }
