"""AST model of SIMT kernel code for the ``repro.analysis`` linter.

A *kernel function* is any function that receives a
:class:`~repro.gpu.kernel.WarpContext` - detected by a parameter
annotated ``WarpContext`` or named ``ctx``.  That covers launch kernels
(``def kernel(ctx, ...)``), layer methods (``def handle_fault(self,
ctx, ...)``), and nested helper generators.

The linter needs to know which calls return *timed generators* (the
things that are silent no-ops unless driven with ``yield from``).
Three sources:

* :data:`CTX_GENERATOR_METHODS` - methods **on** the context object
  itself (``ctx.load(...)``);
* :data:`TIMED_CTX_ARG_METHODS` - methods of the translation/paging
  stack that take the context as **first argument**
  (``ptr.read(ctx, ...)``, ``gpufs.gmmap(ctx, ...)``);
* module-local generator functions whose first (non-self) parameter is
  a context - collected per file, so helper coroutines defined next to
  a kernel are checked with no annotation burden.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

#: WarpContext methods that return timed generators.  Calling one of
#: these without ``yield from`` issues no request to the engine: the
#: access "happens" (numpy side effects run lazily or not at all) but
#: costs zero simulated cycles.
CTX_GENERATOR_METHODS = frozenset({
    "load", "store", "load_wide", "store_wide", "load_scalar",
    "store_scalar", "atomic_add", "scratch", "syncthreads", "lock",
    "unlock", "pcie", "host_compute", "sleep", "clock", "fence",
    "compute", "flush",
})

#: WarpContext methods that are plain calls (cost recorded lazily via
#: ``charge``); listed so rules can tell them apart explicitly.
CTX_PLAIN_METHODS = frozenset({
    "charge", "ballot", "all", "any", "shfl", "shfl_xor", "shfl_down",
    "ffs", "popc", "trace_span",
})

#: Warp-level syscall layer methods (:mod:`repro.syscalls`): take the
#: context as first argument and return timed generators — a bare
#: ``sc.pread(ctx, ...)`` without ``yield from`` performs no I/O.
SYSCALL_METHODS = frozenset({
    "pread", "pwrite", "msync", "madvise", "ftruncate",
    "pread_async", "pwrite_async", "wait", "invoke",
})

#: Non-blocking syscalls returning a :class:`SyscallTicket` that must
#: reach ``wait(ctx, ticket)`` before the kernel exits.
TICKET_CREATORS = frozenset({"pread_async", "pwrite_async"})

#: Syscall-layer entry points that block the warp and take bucket
#: locks internally (GPU-syscalls taxonomy: strong/relaxed blocking).
#: Shared by the lock-order rule and the effect inference.
BLOCKING_SYSCALLS = frozenset({
    "pread", "pwrite", "msync", "ftruncate", "wait",
})

#: Context attributes that are warp-uniform but *vary between warps of
#: one block* (``ctx.warp_id``...): branching on them is fine for
#: plain yields, but a barrier reached under such a condition breaks
#: block-level lockstep (the sanitizer's runtime ``lockstep`` check).
#: ``block_id`` is absent on purpose - it is uniform within a block,
#: so barriers under a block-id branch are safe.
WARP_VARYING_ATTRS = frozenset({"warp_id", "warp_in_block"})

#: Methods of APtr / AVM / GPUfs / TLB / page-table / DSM objects that
#: take the context as first argument and return timed generators.
#: Matching requires *both* the name and a context first argument, so
#: unrelated APIs (``set.add``, ``np.add``) never collide.
TIMED_CTX_ARG_METHODS = frozenset({
    # APtr
    "read", "write", "read_wide", "write_wide", "add", "seek",
    "destroy",
    # AVM
    "gvmunmap", "drain_tlb",
    # GPUfs / backends
    "gmmap", "gmunmap", "handle_fault", "release_page", "fault",
    "release", "flush",
    # page table / TLB
    "lookup", "insert", "add_refs", "lookup_and_ref", "install",
    "unref", "drain",
    # staging / transfers
    "fetch", "writeback", "flush_page",
}) | SYSCALL_METHODS

#: Lane-indexed WarpContext attributes: per-lane vectors whose values
#: differ across the lanes of a warp (taint sources for the
#: divergent-yield rule).
LANE_VECTOR_ATTRS = frozenset({
    "lane", "global_tid", "block_tid", "active",
})

#: Calls that reduce a per-lane vector to a warp-uniform scalar, which
#: is the legal way to branch on lane data (`__ballot`/`__all` idiom).
UNIFORM_REDUCERS = frozenset({
    "ballot", "all", "any", "all_sync", "any_sync", "popc", "ffs",
    "shfl", "shfl_xor", "shfl_down", "sum", "min", "max", "mean",
    "prod", "count_nonzero", "argmin", "argmax", "len", "unique",
    "nonzero",
})

#: Attribute reads on a tainted value that are warp-uniform metadata.
UNIFORM_ATTRS = frozenset({"size", "shape", "ndim", "dtype", "itemsize"})

#: Calls that create an APtr (lifecycle rule).  ``clone`` additionally
#: requires a context first argument.
APTR_CREATORS = frozenset({"gvmmap", "gvmmap_device", "map_backend"})


def _annotation_name(node: Optional[ast.expr]) -> str:
    if node is None:
        return ""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split(".")[-1].strip("\"' ")
    return ""


def ctx_param_names(fn: ast.FunctionDef) -> set[str]:
    """Parameter names of ``fn`` that carry a WarpContext."""
    names: set[str] = set()
    args = list(fn.args.posonlyargs) + list(fn.args.args) \
        + list(fn.args.kwonlyargs)
    for arg in args:
        if arg.arg == "ctx" \
                or _annotation_name(arg.annotation) == "WarpContext":
            names.add(arg.arg)
    return names


def is_generator_fn(fn: ast.FunctionDef) -> bool:
    """True if ``fn``'s own body contains yield / yield from."""
    for node in ast.walk(fn):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if _owner_function(node, fn) is fn:
                return True
    return False


def _owner_function(node: ast.AST, root: ast.FunctionDef):
    """The innermost function of ``root`` containing ``node``.

    Uses the parent links installed by :func:`attach_parents`.
    """
    cur = getattr(node, "_aplint_parent", None)
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.Lambda)):
            return cur
        cur = getattr(cur, "_aplint_parent", None)
    return root


def attach_parents(tree: ast.AST) -> None:
    """Install ``_aplint_parent`` links on every node of ``tree``."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._aplint_parent = node


def parent(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "_aplint_parent", None)


@dataclass
class KernelFn:
    """One kernel-like function plus its linting context."""

    node: ast.FunctionDef
    qualname: str
    ctx_names: set[str]


@dataclass
class ModuleIndex:
    """Everything the rules need to know about one source file."""

    path: str
    tree: ast.Module
    kernels: list[KernelFn] = field(default_factory=list)
    #: Names of module-local generator functions (free functions and
    #: methods alike) that take a context parameter - calls to these
    #: are timed sub-generators even though they are not in the
    #: hard-coded API lists.
    local_generators: set[str] = field(default_factory=set)
    #: Module-local functions taking a context that are *not*
    #: generators - calling them bare is fine.
    local_plain: set[str] = field(default_factory=set)


def index_module(path: str, tree: ast.Module) -> ModuleIndex:
    attach_parents(tree)
    index = ModuleIndex(path=path, tree=tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        ctx_names = ctx_param_names(node)
        # A function nested inside a kernel sees the enclosing context
        # through its closure (``def read_candidate(cid): ... yield
        # from ptr.read(ctx, ...)``) - inherit those names unless a
        # parameter shadows them.
        own_params = {a.arg for a in (node.args.posonlyargs
                                      + node.args.args
                                      + node.args.kwonlyargs)}
        cur = parent(node)
        while cur is not None:
            if isinstance(cur, ast.FunctionDef):
                ctx_names |= ctx_param_names(cur) - own_params
            cur = parent(cur)
        generator = is_generator_fn(node)
        if ctx_names:
            index.kernels.append(KernelFn(
                node=node, qualname=_qualname(node),
                ctx_names=ctx_names))
            if generator:
                index.local_generators.add(node.name)
            else:
                index.local_plain.add(node.name)
    return index


def _qualname(fn: ast.FunctionDef) -> str:
    parts = [fn.name]
    cur = parent(fn)
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.ClassDef)):
            parts.append(cur.name)
        cur = parent(cur)
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# Call classification
# ----------------------------------------------------------------------
def call_name(call: ast.Call) -> str:
    """The method/function name a call resolves to, or ''."""
    fn = call.func
    if isinstance(fn, ast.Attribute):
        return fn.attr
    if isinstance(fn, ast.Name):
        return fn.id
    return ""


def receiver_is_ctx(call: ast.Call, ctx_names: set[str]) -> bool:
    fn = call.func
    return (isinstance(fn, ast.Attribute)
            and isinstance(fn.value, ast.Name)
            and fn.value.id in ctx_names)


def first_arg_is_ctx(call: ast.Call, ctx_names: set[str]) -> bool:
    return (bool(call.args)
            and isinstance(call.args[0], ast.Name)
            and call.args[0].id in ctx_names)


def is_timed_generator_call(call: ast.Call, kernel: KernelFn,
                            index: ModuleIndex) -> bool:
    """True if ``call`` produces a timed generator that must be driven."""
    name = call_name(call)
    if not name:
        return False
    if receiver_is_ctx(call, kernel.ctx_names):
        return name in CTX_GENERATOR_METHODS
    if first_arg_is_ctx(call, kernel.ctx_names):
        if name in TIMED_CTX_ARG_METHODS:
            return True
    # Module-local helper coroutines: ``helper(ctx, ...)``,
    # ``self._helper(ctx, ...)``, or a closure helper called by bare
    # name that captures the context without taking it as a parameter.
    # A *method* call without a context argument is not matched - the
    # bare name may collide with unrelated host-side APIs
    # (``directory.release(fpn, ...)``).
    if name in index.local_generators and name not in index.local_plain:
        if isinstance(call.func, ast.Name):
            return True
        if first_arg_is_ctx(call, kernel.ctx_names):
            return True
    return False


def statements(body: list) -> Iterator[ast.stmt]:
    """All statements of a body, recursively, in source order."""
    for stmt in body:
        yield stmt
        for name in ("body", "orelse", "finalbody"):
            sub_body = getattr(stmt, name, None)
            if sub_body:
                yield from statements(sub_body)
        for handler in getattr(stmt, "handlers", []) or []:
            yield from statements(handler.body)


def walk_function(fn: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk ``fn``'s own nodes, not descending into nested functions."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
