"""Orchestrates the five ``repro-lint`` rules over a set of files.

Deliberately dependency-free (``ast`` + ``tokenize`` only) so the CI
lint job does not pay the numpy import tax: ``lint_paths`` never
imports the simulator, only parses its source.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from repro.analysis import (
    rules_calibration,
    rules_divergence,
    rules_lifecycle,
    rules_locks,
    rules_yield,
)
from repro.analysis.kernels import index_module
from repro.analysis.model import Finding, parse_suppressions

#: Per-kernel rules, run in reporting order.
_KERNEL_RULES = (
    rules_yield.check,
    rules_divergence.check,
    rules_lifecycle.check,
    rules_calibration.check,
)


@dataclass
class LintResult:
    """Findings plus bookkeeping for one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    kernels_checked: int = 0
    #: files that failed to parse: (path, message) - reported as
    #: findings too, but kept separate for the JSON envelope.
    errors: list[tuple[str, str]] = field(default_factory=list)


def iter_python_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            out.add(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = [d for d in dirs
                           if not d.startswith(".")
                           and d != "__pycache__"]
                for name in files:
                    if name.endswith(".py"):
                        out.add(os.path.join(root, name))
    return sorted(out)


def lint_source(path: str, source: str,
                lock_graph: rules_locks.LockOrderGraph | None = None,
                ) -> list[Finding]:
    """Lint one file's source; pure function used by the tests.

    When ``lock_graph`` is omitted a private graph is created and its
    inversion pass runs immediately; callers that share a graph across
    files run ``inversions()`` themselves once every file is in.
    """
    result = LintResult()
    private_graph = lock_graph is None
    graph = lock_graph if lock_graph is not None \
        else rules_locks.LockOrderGraph()
    _lint_one(path, source, graph, result)
    if private_graph:
        suppressions = parse_suppressions(source)
        result.findings.extend(
            f for f in graph.inversions() if suppressions.allows(f))
        result.findings.sort(
            key=lambda f: (f.path, f.line, f.col, f.rule))
    return result.findings


def lint_paths(paths: list[str]) -> LintResult:
    """Lint every ``.py`` file reachable from ``paths``."""
    result = LintResult()
    lock_graph = rules_locks.LockOrderGraph()
    for path in iter_python_files(paths):
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            result.errors.append((path, str(exc)))
            continue
        _lint_one(path, source, lock_graph, result)
    # Lock-order inversions are global: only known once every file's
    # acquisition sites are in the graph.  Inversion findings honour
    # the suppressions of the file they are reported in.
    inversions = lock_graph.inversions()
    if inversions:
        sup_cache = {}
        for finding in inversions:
            if finding.path not in sup_cache:
                try:
                    with open(finding.path, encoding="utf-8") as fh:
                        sup_cache[finding.path] = parse_suppressions(
                            fh.read())
                except OSError:
                    sup_cache[finding.path] = parse_suppressions("")
            if sup_cache[finding.path].allows(finding):
                result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result


def _lint_one(path: str, source: str,
              lock_graph: rules_locks.LockOrderGraph,
              result: LintResult) -> None:
    result.files_checked += 1
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        msg = f"syntax error: {exc.msg} (line {exc.lineno})"
        result.errors.append((path, msg))
        result.findings.append(Finding(
            rule="parse-error", path=path, line=exc.lineno or 1,
            col=exc.offset or 0, message=msg))
        return
    suppressions = parse_suppressions(source)
    index = index_module(path, tree)
    raw: list[Finding] = []
    for kernel in index.kernels:
        result.kernels_checked += 1
        for rule in _KERNEL_RULES:
            raw.extend(rule(kernel, index))
        raw.extend(lock_graph.scan(kernel, index))
    for line, directive in suppressions.bad_directives:
        raw.append(Finding(
            rule="bad-suppression", path=path, line=line, col=0,
            message=(f"malformed aplint directive '{directive}' - "
                     f"unknown rule name or bad syntax, nothing was "
                     f"suppressed")))
    result.findings.extend(
        f for f in raw if suppressions.allows(f))
