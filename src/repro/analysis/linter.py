"""Orchestrates the ``repro-lint`` rules over a set of files.

Deliberately dependency-free (``ast`` + ``tokenize`` only) so the CI
lint job does not pay the numpy import tax: ``lint_paths`` never
imports the simulator, only parses its source.

The run is two-phase.  Phase one parses and indexes every file and -
unless ``interprocedural=False`` - builds the
:class:`~repro.analysis.effects.EffectProgram`: the call graph plus a
bottom-up effect summary for every generator kernel.  Phase two runs
the per-kernel rules with those summaries in hand, then the two
whole-program passes that only make sense once every file is in:
lock-order inversion detection over the global acquisition graph, and
the ``shared-race`` happens-before check over the call-graph roots.
Finally every file's suppression table reports its dead pragmas as
``unused-suppression`` findings.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from repro.analysis import (
    rules_calibration,
    rules_divergence,
    rules_lifecycle,
    rules_locks,
    rules_race,
    rules_yield,
)
from repro.analysis.effects import EffectProgram
from repro.analysis.kernels import ModuleIndex, index_module
from repro.analysis.model import (
    Finding,
    Suppressions,
    parse_suppressions,
)

#: Per-kernel rules, run in reporting order.  Every rule takes the
#: optional ``effects`` program and degrades to its lexical behaviour
#: without it.
_KERNEL_RULES = (
    rules_yield.check,
    rules_divergence.check,
    rules_lifecycle.check,
    rules_calibration.check,
)


@dataclass
class LintResult:
    """Findings plus bookkeeping for one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    kernels_checked: int = 0
    #: files that failed to parse: (path, message) - reported as
    #: findings too, but kept separate for the JSON envelope.
    errors: list[tuple[str, str]] = field(default_factory=list)
    #: the effect program of the run (``None`` with
    #: ``interprocedural=False``) - the CLI serializes this for
    #: ``--effects``.
    effects: EffectProgram | None = None


def iter_python_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            out.add(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = [d for d in dirs
                           if not d.startswith(".")
                           and d != "__pycache__"]
                for name in files:
                    if name.endswith(".py"):
                        out.add(os.path.join(root, name))
    return sorted(out)


def lint_source(path: str, source: str,
                lock_graph: rules_locks.LockOrderGraph | None = None,
                interprocedural: bool = True) -> list[Finding]:
    """Lint one file's source; pure function used by the tests.

    When ``lock_graph`` is omitted a private graph is created and the
    whole-program passes (inversions, shared-race, unused
    suppressions) run immediately; callers that share a graph across
    files run those themselves once every file is in.
    """
    result = LintResult()
    private_graph = lock_graph is None
    graph = lock_graph if lock_graph is not None \
        else rules_locks.LockOrderGraph()
    index, suppressions = _parse_one(path, source, result)
    effects = None
    if interprocedural:
        effects = EffectProgram([index] if index is not None else [])
        effects.infer()
        result.effects = effects
    if index is not None:
        _run_rules(index, graph, effects, suppressions, result)
    if private_graph:
        _whole_program(result, graph, {path: suppressions}, effects)
        result.findings.sort(
            key=lambda f: (f.path, f.line, f.col, f.rule))
    return result.findings


def lint_paths(paths: list[str],
               interprocedural: bool = True) -> LintResult:
    """Lint every ``.py`` file reachable from ``paths``."""
    result = LintResult()
    lock_graph = rules_locks.LockOrderGraph()
    parsed: list[tuple[ModuleIndex, Suppressions]] = []
    sup_map: dict[str, Suppressions] = {}
    for path in iter_python_files(paths):
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            result.errors.append((path, str(exc)))
            continue
        index, suppressions = _parse_one(path, source, result)
        sup_map[path] = suppressions
        if index is not None:
            parsed.append((index, suppressions))
    effects = None
    if interprocedural:
        effects = EffectProgram([index for index, _ in parsed])
        effects.infer()
        result.effects = effects
    for index, suppressions in parsed:
        _run_rules(index, lock_graph, effects, suppressions, result)
    _whole_program(result, lock_graph, sup_map, effects)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result


# ----------------------------------------------------------------------
def _parse_one(path: str, source: str, result: LintResult):
    """Parse + index one file; returns ``(index|None, suppressions)``."""
    result.files_checked += 1
    suppressions = parse_suppressions(source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        msg = f"syntax error: {exc.msg} (line {exc.lineno})"
        result.errors.append((path, msg))
        result.findings.append(Finding(
            rule="parse-error", path=path, line=exc.lineno or 1,
            col=exc.offset or 0, message=msg))
        return None, suppressions
    return index_module(path, tree), suppressions


def _run_rules(index: ModuleIndex,
               lock_graph: rules_locks.LockOrderGraph,
               effects: EffectProgram | None,
               suppressions: Suppressions,
               result: LintResult) -> None:
    raw: list[Finding] = []
    for kernel in index.kernels:
        result.kernels_checked += 1
        for rule in _KERNEL_RULES:
            raw.extend(rule(kernel, index, effects=effects))
        raw.extend(lock_graph.scan(kernel, index, effects=effects))
    for line, directive in suppressions.bad_directives:
        raw.append(Finding(
            rule="bad-suppression", path=index.path, line=line, col=0,
            message=(f"malformed aplint directive '{directive}' - "
                     f"unknown rule name or bad syntax, nothing was "
                     f"suppressed")))
    result.findings.extend(
        f for f in raw if suppressions.allows(f))


def _whole_program(result: LintResult,
                   lock_graph: rules_locks.LockOrderGraph,
                   sup_map: dict[str, Suppressions],
                   effects: EffectProgram | None) -> None:
    """The passes that need every file: inversions, races, dead
    pragmas.  Findings honour the suppressions of the file they are
    reported in."""
    global_findings = lock_graph.inversions()
    if effects is not None:
        global_findings += rules_race.check_program(effects)
    for finding in global_findings:
        if finding.path not in sup_map:
            # A shared lock graph can carry sites from files linted
            # outside this call; fetch their pragmas from disk.
            try:
                with open(finding.path, encoding="utf-8") as fh:
                    sup_map[finding.path] = parse_suppressions(
                        fh.read())
            except OSError:
                sup_map[finding.path] = parse_suppressions("")
        if sup_map[finding.path].allows(finding):
            result.findings.append(finding)
    for path in sorted(sup_map):
        result.findings.extend(sup_map[path].unused(path))
