"""Findings, rule metadata, and inline suppressions for ``repro-lint``.

A :class:`Finding` is one diagnosed problem at one source location.
Rules are identified by short kebab-case names (``missing-yield-from``)
which are also what the inline suppression comment takes::

    yield ctx.load(addr, "f4")   # aplint: disable=missing-yield-from

A bare ``# aplint: disable`` suppresses every rule on that line.
Suppressions apply to the physical line a finding is reported on.
"""

from __future__ import annotations

import io
import tokenize
from dataclasses import dataclass, field

#: Registry of rule names -> one-line description.  ``repro-lint
#: --list-rules`` prints this and the docs quote it; rule modules
#: look their own entry up so the two cannot drift.
RULES: dict[str, str] = {
    "missing-yield-from":
        "a timed generator (ctx.load, ptr.read, gmmap, ...) is called "
        "but never driven with `yield from` - a silent timing no-op",
    "divergent-yield":
        "a yield is reachable only under a lane-divergent condition "
        "(derived from ctx.lane and friends) - breaks SIMT lockstep",
    "aptr-lifecycle":
        "an APtr created by gvmmap/clone does not reach destroy() on "
        "every exit path, or is used after destroy()",
    "lock-order":
        "ctx.lock acquisition order is inconsistent across call sites "
        "- a lock-order inversion that can deadlock",
    "uncalibrated-cost":
        "ctx.charge/ctx.compute with a bare magic-number cost - map it "
        "to a CostModel field or a named module constant",
    "barrier-divergence":
        "a barrier (direct or hidden inside a helper coroutine) is "
        "reachable only under a warp-varying condition - the block "
        "leaves barrier lockstep and hangs on hardware",
    "shared-race":
        "write/write or read/write accesses to the same shared "
        "structure (page table, page cache, staging, tickets) with no "
        "common lock and no separating barrier - a static torn-write",
    "unused-suppression":
        "an `# aplint:` suppression that suppressed nothing this run "
        "- delete the dead pragma so the baseline stays honest",
}


@dataclass(frozen=True)
class Finding:
    """One linter diagnosis, stable enough for CI to key on."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    function: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "function": self.function,
            "message": self.message,
        }


@dataclass
class Suppressions:
    """Rule suppressions parsed from ``# aplint:`` comments.

    Two scopes: per-line (``# aplint: disable[=rule,...]`` on the
    finding's physical line) and file-level
    (``# aplint: disable-file <rule>`` anywhere in the file, always
    rule-scoped - there is deliberately no file-wide disable-all).
    Every suppression records whether it actually matched a finding,
    so the linter can report dead pragmas as ``unused-suppression``
    findings instead of letting them rot in the baseline.
    """

    #: line -> set of suppressed rule names; the sentinel ``"*"``
    #: suppresses every rule on that line.
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: rule -> line of the ``disable-file`` directive.
    file_level: dict[str, int] = field(default_factory=dict)
    #: malformed directives (unknown rule names), reported as findings
    #: so a typoed suppression cannot silently disable nothing.
    bad_directives: list[tuple[int, str]] = field(default_factory=list)
    #: (line, name) pairs that suppressed at least one finding, plus
    #: ("file", rule) markers for used file-level directives.
    used: set = field(default_factory=set)

    def allows(self, finding: Finding) -> bool:
        if finding.rule in self.file_level:
            self.used.add(("file", finding.rule))
            return False
        rules = self.by_line.get(finding.line)
        if not rules:
            return True
        if "*" in rules:
            self.used.add((finding.line, "*"))
            return False
        if finding.rule in rules:
            self.used.add((finding.line, finding.rule))
            return False
        return True

    def unused(self, path: str) -> list[Finding]:
        """``unused-suppression`` findings for every dead pragma."""
        findings: list[Finding] = []
        for line in sorted(self.by_line):
            for name in sorted(self.by_line[line]):
                if (line, name) not in self.used:
                    shown = "disable" if name == "*" \
                        else f"disable={name}"
                    findings.append(Finding(
                        rule="unused-suppression", path=path,
                        line=line, col=0,
                        message=(f"suppression '# aplint: {shown}' "
                                 f"matched no finding - delete it")))
        for rule, line in sorted(self.file_level.items(),
                                 key=lambda kv: kv[1]):
            if ("file", rule) not in self.used:
                findings.append(Finding(
                    rule="unused-suppression", path=path,
                    line=line, col=0,
                    message=(f"file-level suppression '# aplint: "
                             f"disable-file {rule}' matched no "
                             f"finding - delete it")))
        return findings


_MARKER = "aplint:"


def _split_names(spec: str) -> list[str]:
    return [n.strip() for n in spec.replace(",", " ").split()
            if n.strip()]


def parse_suppressions(source: str) -> Suppressions:
    """Extract ``# aplint: disable...`` comments from source."""
    sup = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            text = tok.string.lstrip("#").strip()
            if not text.startswith(_MARKER):
                continue
            directive = text[len(_MARKER):].strip()
            line = tok.start[0]
            if directive == "disable":
                sup.by_line.setdefault(line, set()).add("*")
                continue
            if directive.startswith("disable-file"):
                spec = directive[len("disable-file"):].lstrip("= ")
                names = _split_names(spec)
                unknown = [n for n in names if n not in RULES]
                if unknown or not names:
                    sup.bad_directives.append((line, directive))
                for name in names:
                    if name in RULES:
                        sup.file_level.setdefault(name, line)
                continue
            if not directive.startswith("disable="):
                sup.bad_directives.append((line, directive))
                continue
            names = _split_names(directive[len("disable="):])
            unknown = [n for n in names if n not in RULES]
            if unknown or not names:
                sup.bad_directives.append((line, directive))
            for name in names:
                if name in RULES:
                    sup.by_line.setdefault(line, set()).add(name)
    except tokenize.TokenError:
        pass  # syntax errors are reported by the parser, not here
    return sup
