"""Findings, rule metadata, and inline suppressions for ``repro-lint``.

A :class:`Finding` is one diagnosed problem at one source location.
Rules are identified by short kebab-case names (``missing-yield-from``)
which are also what the inline suppression comment takes::

    yield ctx.load(addr, "f4")   # aplint: disable=missing-yield-from

A bare ``# aplint: disable`` suppresses every rule on that line.
Suppressions apply to the physical line a finding is reported on.
"""

from __future__ import annotations

import io
import tokenize
from dataclasses import dataclass, field

#: Registry of rule names -> one-line description.  ``repro-lint
#: --list-rules`` prints this and the docs quote it; rule modules
#: look their own entry up so the two cannot drift.
RULES: dict[str, str] = {
    "missing-yield-from":
        "a timed generator (ctx.load, ptr.read, gmmap, ...) is called "
        "but never driven with `yield from` - a silent timing no-op",
    "divergent-yield":
        "a yield is reachable only under a lane-divergent condition "
        "(derived from ctx.lane and friends) - breaks SIMT lockstep",
    "aptr-lifecycle":
        "an APtr created by gvmmap/clone does not reach destroy() on "
        "every exit path, or is used after destroy()",
    "lock-order":
        "ctx.lock acquisition order is inconsistent across call sites "
        "- a lock-order inversion that can deadlock",
    "uncalibrated-cost":
        "ctx.charge/ctx.compute with a bare magic-number cost - map it "
        "to a CostModel field or a named module constant",
}


@dataclass(frozen=True)
class Finding:
    """One linter diagnosis, stable enough for CI to key on."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    function: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "function": self.function,
            "message": self.message,
        }


@dataclass
class Suppressions:
    """Per-line rule suppressions parsed from ``# aplint:`` comments."""

    #: line -> set of suppressed rule names; the sentinel ``"*"``
    #: suppresses every rule on that line.
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: malformed directives (unknown rule names), reported as findings
    #: so a typoed suppression cannot silently disable nothing.
    bad_directives: list[tuple[int, str]] = field(default_factory=list)

    def allows(self, finding: Finding) -> bool:
        rules = self.by_line.get(finding.line)
        if not rules:
            return True
        return finding.rule not in rules and "*" not in rules


_MARKER = "aplint:"


def parse_suppressions(source: str) -> Suppressions:
    """Extract ``# aplint: disable[=rule,...]`` comments from source."""
    sup = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            text = tok.string.lstrip("#").strip()
            if not text.startswith(_MARKER):
                continue
            directive = text[len(_MARKER):].strip()
            line = tok.start[0]
            if directive == "disable":
                sup.by_line.setdefault(line, set()).add("*")
                continue
            if not directive.startswith("disable="):
                sup.bad_directives.append((line, directive))
                continue
            names = [n.strip() for n in
                     directive[len("disable="):].split(",") if n.strip()]
            unknown = [n for n in names if n not in RULES]
            if unknown or not names:
                sup.bad_directives.append((line, directive))
            for name in names:
                if name in RULES:
                    sup.by_line.setdefault(line, set()).add(name)
    except tokenize.TokenError:
        pass  # syntax errors are reported by the parser, not here
    return sup
