"""Rule ``uncalibrated-cost``: magic-number costs in charge/compute.

Every cycle the simulator accounts should trace back to the calibrated
:class:`~repro.core.calibration.CostModel` (instruction counts measured
from the paper's SASS listings) or to a *named* constant whose name
documents what was counted.  A bare ``ctx.compute(60)`` is a cost that
can silently drift from the hardware it claims to model and that no
reader can audit.

The rule fires on ``ctx.charge(...)`` / ``ctx.compute(...)`` calls
whose cost operands (first positional argument and the ``chain=`` /
``arith=`` keywords) are *all-literal* expressions with a magnitude
above :data:`LITERAL_THRESHOLD`.  Small literals stay legal: idiomatic
kernels charge 1-4 instructions for a compare or an index bump, and
naming every one of those would hurt more than help.  Any expression
containing a ``Name`` or ``Attribute`` operand - a CostModel field, a
module constant, an argument - passes.
"""

from __future__ import annotations

import ast

from repro.analysis.kernels import (
    KernelFn,
    ModuleIndex,
    call_name,
    receiver_is_ctx,
)
from repro.analysis.model import Finding

RULE = "uncalibrated-cost"

#: Largest bare integer cost that is accepted without a name.  Chosen
#: so the common "couple of arithmetic ops" charges pass while block
#: costs (a hash round, a distance computation) must be named.
LITERAL_THRESHOLD = 8

#: Keyword operands of charge/compute that carry instruction counts.
_COST_KEYWORDS = frozenset({"chain", "arith"})


def check(kernel: KernelFn, index: ModuleIndex,
          effects=None) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(kernel.node):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name not in ("charge", "compute") \
                or not receiver_is_ctx(node, kernel.ctx_names):
            continue
        operands: list[ast.expr] = list(node.args[:1]) + [
            kw.value for kw in node.keywords
            if kw.arg in _COST_KEYWORDS]
        for operand in operands:
            worst = _literal_magnitude(operand)
            if worst is not None and worst > LITERAL_THRESHOLD:
                findings.append(Finding(
                    rule=RULE, path=index.path, line=operand.lineno,
                    col=operand.col_offset, function=kernel.qualname,
                    message=(
                        f"ctx.{name} cost '{ast.unparse(operand)}' is "
                        f"a bare literal > {LITERAL_THRESHOLD} - bind "
                        f"it to a CostModel field or a named constant "
                        f"so the calibration stays auditable")))
                break   # one finding per call site is enough
    return findings


def _literal_magnitude(node: ast.expr) -> int | None:
    """Max abs literal in an all-literal expression, else ``None``.

    ``None`` means the expression references at least one name and is
    therefore considered calibrated (or at least auditable).
    """
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)):
            return None
        return abs(int(node.value))
    if isinstance(node, ast.BinOp):
        left = _literal_magnitude(node.left)
        right = _literal_magnitude(node.right)
        if left is None or right is None:
            return None
        return max(left, right)
    if isinstance(node, ast.UnaryOp):
        return _literal_magnitude(node.operand)
    # Name, Attribute, Call, Subscript, ... - auditable by definition.
    return None
