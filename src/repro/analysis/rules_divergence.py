"""Rule ``divergent-yield``: yields under lane-divergent control flow.

In SIMT execution every lane of a warp must reach the same timed
operations in the same order; the coroutine representation encodes one
warp as one generator, so a ``yield`` guarded by a condition derived
from *per-lane* values models a warp whose lanes disagree about whether
to execute a timed instruction - the lockstep-deadlock bug of the
paper's SIV discussion.

The analysis is a small forward taint pass per kernel:

* **taint sources** - the lane-indexed context vectors (``ctx.lane``,
  ``ctx.global_tid``, ``ctx.block_tid``, ``ctx.active``) and any name
  assigned from a tainted expression;
* **uniformizers** - warp votes and reductions (``ctx.any``,
  ``ctx.all``, ``ctx.ballot``, ``wp.*_sync``, ``.any()``, ``.sum()``,
  ``np.all``, ...), and subscripting with a *constant* index (a fixed
  lane's value is broadcast-uniform); these launder taint;
* **violation** - a ``yield``/``yield from`` lexically inside an
  ``if``/``while`` whose test is still tainted, or inside an ``if``
  whose test subscripts a tainted vector with a loop variable (the
  serialized per-lane-yield anti-pattern).

The correct idiom never fires: ``if ctx.any(pred):`` is warp-uniform,
and masked accesses (``ctx.load(addr, mask=pred)``) keep the whole
warp at the same yield site.
"""

from __future__ import annotations

import ast

from repro.analysis.kernels import (
    LANE_VECTOR_ATTRS,
    UNIFORM_ATTRS,
    UNIFORM_REDUCERS,
    KernelFn,
    ModuleIndex,
    call_name,
)
from repro.analysis.model import Finding

RULE = "divergent-yield"


def check(kernel: KernelFn, index: ModuleIndex) -> list[Finding]:
    checker = _Checker(kernel, index)
    checker.run()
    return checker.findings


class _Checker:
    def __init__(self, kernel: KernelFn, index: ModuleIndex):
        self.kernel = kernel
        self.index = index
        self.findings: list[Finding] = []
        self.tainted: set[str] = set()
        #: conditions currently guarding execution: (test node, tainted)
        self.guards: list[tuple[ast.expr, bool]] = []

    # ------------------------------------------------------------------
    def run(self) -> None:
        self._visit_body(self.kernel.node.body)

    def _visit_body(self, body: list) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested kernels are linted separately
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._track_assignment(stmt)
            self._scan_yields(stmt)
            return
        if isinstance(stmt, ast.If):
            divergent = self._is_tainted(stmt.test)
            self.guards.append((stmt.test, divergent))
            self._visit_body(stmt.body)
            self._visit_body(stmt.orelse)
            self.guards.pop()
            return
        if isinstance(stmt, ast.While):
            divergent = self._is_tainted(stmt.test)
            self.guards.append((stmt.test, divergent))
            self._visit_body(stmt.body)
            self.guards.pop()
            self._visit_body(stmt.orelse)
            return
        if isinstance(stmt, ast.For):
            # The loop target of an iteration over a tainted vector is
            # itself per-lane data.
            if self._is_tainted(stmt.iter):
                self._taint_target(stmt.target)
                self.guards.append((stmt.iter, True))
                self._visit_body(stmt.body)
                self.guards.pop()
            else:
                self._visit_body(stmt.body)
            self._visit_body(stmt.orelse)
            return
        if isinstance(stmt, (ast.With,)):
            self._visit_body(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self._visit_body(stmt.body)
            for handler in stmt.handlers:
                self._visit_body(handler.body)
            self._visit_body(stmt.orelse)
            self._visit_body(stmt.finalbody)
            return
        self._scan_yields(stmt)

    # ------------------------------------------------------------------
    def _scan_yields(self, stmt: ast.stmt) -> None:
        if not any(tainted for _, tainted in self.guards):
            return
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                test, _ = next((g for g in self.guards if g[1]))
                self.findings.append(Finding(
                    rule=RULE, path=self.index.path,
                    line=node.lineno, col=node.col_offset,
                    function=self.kernel.qualname,
                    message=(
                        "yield guarded by lane-divergent condition "
                        f"'{ast.unparse(test)}' (line {test.lineno}) - "
                        "lanes would leave lockstep; reduce with "
                        "ctx.any/ctx.all/ctx.ballot or use a masked "
                        "access"),
                ))

    # ------------------------------------------------------------------
    def _track_assignment(self, stmt) -> None:
        value = getattr(stmt, "value", None)
        if value is None:
            return
        tainted = self._is_tainted(value)
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        for target in targets:
            if isinstance(stmt, ast.AugAssign):
                if isinstance(target, ast.Name):
                    if tainted:
                        self.tainted.add(target.id)
                continue
            if tainted:
                self._taint_target(target)
            else:
                self._untaint_target(target)

    def _taint_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._taint_target(elt)

    def _untaint_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._untaint_target(elt)

    # ------------------------------------------------------------------
    def _is_tainted(self, node: ast.expr) -> bool:
        """Does ``node`` carry per-lane (warp-divergent) data?"""
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) \
                    and node.value.id in self.kernel.ctx_names:
                return node.attr in LANE_VECTOR_ATTRS
            if node.attr in UNIFORM_ATTRS:
                return False
            return self._is_tainted(node.value)
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in UNIFORM_REDUCERS:
                return False
            # Method reductions on a tainted value: pred.any(), .sum()
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in UNIFORM_REDUCERS:
                return False
            return any(self._is_tainted(a) for a in node.args) \
                or any(self._is_tainted(kw.value)
                       for kw in node.keywords)
        if isinstance(node, ast.Subscript):
            if not self._is_tainted(node.value):
                return False
            # A constant index selects one lane's value, which is the
            # same for the whole warp (broadcast); a variable index is
            # lane-dependent selection and stays divergent.
            return not isinstance(node.slice, ast.Constant)
        if isinstance(node, (ast.BinOp,)):
            return self._is_tainted(node.left) \
                or self._is_tainted(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._is_tainted(node.operand)
        if isinstance(node, ast.BoolOp):
            return any(self._is_tainted(v) for v in node.values)
        if isinstance(node, ast.Compare):
            return self._is_tainted(node.left) \
                or any(self._is_tainted(c) for c in node.comparators)
        if isinstance(node, ast.IfExp):
            return (self._is_tainted(node.test)
                    or self._is_tainted(node.body)
                    or self._is_tainted(node.orelse))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self._is_tainted(e) for e in node.elts)
        if isinstance(node, ast.YieldFrom):
            return False   # results of timed ops: treated as uniform
        return False
