"""Rule ``divergent-yield``: yields under lane-divergent control flow.

In SIMT execution every lane of a warp must reach the same timed
operations in the same order; the coroutine representation encodes one
warp as one generator, so a ``yield`` guarded by a condition derived
from *per-lane* values models a warp whose lanes disagree about whether
to execute a timed instruction - the lockstep-deadlock bug of the
paper's SIV discussion.

The analysis is a small forward taint pass per kernel:

* **taint sources** - the lane-indexed context vectors (``ctx.lane``,
  ``ctx.global_tid``, ``ctx.block_tid``, ``ctx.active``) and any name
  assigned from a tainted expression;
* **uniformizers** - warp votes and reductions (``ctx.any``,
  ``ctx.all``, ``ctx.ballot``, ``wp.*_sync``, ``.any()``, ``.sum()``,
  ``np.all``, ...), and subscripting with a *constant* index (a fixed
  lane's value is broadcast-uniform); these launder taint;
* **violation** - a ``yield``/``yield from`` lexically inside an
  ``if``/``while`` whose test is still tainted, or inside an ``if``
  whose test subscripts a tainted vector with a loop variable (the
  serialized per-lane-yield anti-pattern).

The correct idiom never fires: ``if ctx.any(pred):`` is warp-uniform,
and masked accesses (``ctx.load(addr, mask=pred)``) keep the whole
warp at the same yield site.

This module also owns rule ``barrier-divergence``, the block-level
sibling: ``ctx.syncthreads()`` must be reached by *every warp of the
block*, so a barrier guarded by a **warp-varying** condition - one
derived from ``ctx.warp_id`` / ``ctx.warp_in_block``, or from a warp
vote over per-lane data (``ctx.any(...)`` is uniform *within* a warp
but each warp votes on its own lanes) - hangs the block on real
hardware.  ``ctx.block_id`` is deliberately not warp-varying: it is
uniform across the whole block.  With an
:class:`~repro.analysis.effects.EffectProgram` attached the check is
interprocedural: ``yield from helper(ctx)`` counts as a barrier
whenever the helper's effect summary says it can pass through one,
which is exactly the case a lexical scan provably misses.
"""

from __future__ import annotations

import ast

from repro.analysis.kernels import (
    LANE_VECTOR_ATTRS,
    UNIFORM_ATTRS,
    UNIFORM_REDUCERS,
    WARP_VARYING_ATTRS,
    KernelFn,
    ModuleIndex,
    call_name,
    receiver_is_ctx,
)
from repro.analysis.model import Finding

RULE = "divergent-yield"
BARRIER_RULE = "barrier-divergence"


def check(kernel: KernelFn, index: ModuleIndex,
          effects=None) -> list[Finding]:
    checker = _Checker(kernel, index, effects)
    checker.run()
    return checker.findings


class _Checker:
    def __init__(self, kernel: KernelFn, index: ModuleIndex,
                 effects=None):
        self.kernel = kernel
        self.index = index
        self.effects = effects
        self.findings: list[Finding] = []
        self.tainted: set[str] = set()
        #: names carrying warp-varying (but lane-uniform) values
        self.warp_tainted: set[str] = set()
        #: conditions currently guarding execution:
        #: (test node, lane-tainted, warp-varying)
        self.guards: list[tuple[ast.expr, bool, bool]] = []

    # ------------------------------------------------------------------
    def run(self) -> None:
        self._visit_body(self.kernel.node.body)

    def _visit_body(self, body: list) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested kernels are linted separately
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._track_assignment(stmt)
            self._scan_yields(stmt)
            return
        if isinstance(stmt, ast.If):
            self.guards.append((stmt.test, self._is_tainted(stmt.test),
                                self._is_warp_varying(stmt.test)))
            self._visit_body(stmt.body)
            self._visit_body(stmt.orelse)
            self.guards.pop()
            return
        if isinstance(stmt, ast.While):
            self.guards.append((stmt.test, self._is_tainted(stmt.test),
                                self._is_warp_varying(stmt.test)))
            self._visit_body(stmt.body)
            self.guards.pop()
            self._visit_body(stmt.orelse)
            return
        if isinstance(stmt, ast.For):
            # The loop target of an iteration over a tainted vector is
            # itself per-lane data.
            if self._is_tainted(stmt.iter):
                self._taint_target(stmt.target)
                self.guards.append((stmt.iter, True,
                                    self._is_warp_varying(stmt.iter)))
                self._visit_body(stmt.body)
                self.guards.pop()
            elif self._is_warp_varying(stmt.iter):
                self.guards.append((stmt.iter, False, True))
                self._visit_body(stmt.body)
                self.guards.pop()
            else:
                self._visit_body(stmt.body)
            self._visit_body(stmt.orelse)
            return
        if isinstance(stmt, (ast.With,)):
            self._visit_body(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self._visit_body(stmt.body)
            for handler in stmt.handlers:
                self._visit_body(handler.body)
            self._visit_body(stmt.orelse)
            self._visit_body(stmt.finalbody)
            return
        self._scan_yields(stmt)

    # ------------------------------------------------------------------
    def _scan_yields(self, stmt: ast.stmt) -> None:
        lane_guarded = any(lane for _, lane, _ in self.guards)
        warp_guarded = any(warp for _, _, warp in self.guards)
        if not lane_guarded and not warp_guarded:
            return
        for node in ast.walk(stmt):
            if lane_guarded \
                    and isinstance(node, (ast.Yield, ast.YieldFrom)):
                test = next(g[0] for g in self.guards if g[1])
                self.findings.append(Finding(
                    rule=RULE, path=self.index.path,
                    line=node.lineno, col=node.col_offset,
                    function=self.kernel.qualname,
                    message=(
                        "yield guarded by lane-divergent condition "
                        f"'{ast.unparse(test)}' (line {test.lineno}) - "
                        "lanes would leave lockstep; reduce with "
                        "ctx.any/ctx.all/ctx.ballot or use a masked "
                        "access"),
                ))
            if warp_guarded and isinstance(node, ast.Call):
                self._check_barrier(node)

    def _check_barrier(self, call: ast.Call) -> None:
        """``barrier-divergence``: a barrier under a warp-varying guard."""
        name = call_name(call)
        how = ""
        if receiver_is_ctx(call, self.kernel.ctx_names):
            if name != "syncthreads":
                return
        elif self.effects is not None:
            candidates = self.effects.graph.resolve(
                call, self.kernel, self.index)
            hidden = [c for c in candidates
                      if (s := self.effects.summaries.get(c.key))
                      is not None and s.barriers_max > 0]
            if not hidden:
                return
            how = (f" hidden inside helper '{hidden[0].name}' "
                   f"(barriers {self._bounds(hidden[0])})")
        else:
            return
        test = next(g[0] for g in self.guards if g[2])
        self.findings.append(Finding(
            rule=BARRIER_RULE, path=self.index.path,
            line=call.lineno, col=call.col_offset,
            function=self.kernel.qualname,
            message=(
                f"barrier{how} is guarded by warp-varying condition "
                f"'{ast.unparse(test)}' (line {test.lineno}) - warps "
                f"of the block disagree about reaching syncthreads "
                f"and the block hangs; hoist the barrier out of the "
                f"branch"),
        ))

    def _bounds(self, node) -> str:
        summary = self.effects.summaries[node.key]
        hi = "unbounded" if summary.barriers_max >= (1 << 30) \
            else summary.barriers_max
        return f"[{summary.barriers_min}, {hi}]"

    # ------------------------------------------------------------------
    def _track_assignment(self, stmt) -> None:
        value = getattr(stmt, "value", None)
        if value is None:
            return
        tainted = self._is_tainted(value)
        warp = self._is_warp_varying(value)
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        for target in targets:
            if isinstance(stmt, ast.AugAssign):
                if isinstance(target, ast.Name):
                    if tainted:
                        self.tainted.add(target.id)
                    if warp:
                        self.warp_tainted.add(target.id)
                continue
            if tainted:
                self._taint_target(target)
            else:
                self._untaint_target(target)
            if warp:
                self._mark_target(target, self.warp_tainted.add)
            else:
                self._mark_target(target, self.warp_tainted.discard)

    def _taint_target(self, target: ast.expr) -> None:
        self._mark_target(target, self.tainted.add)

    def _untaint_target(self, target: ast.expr) -> None:
        self._mark_target(target, self.tainted.discard)

    def _mark_target(self, target: ast.expr, op) -> None:
        if isinstance(target, ast.Name):
            op(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._mark_target(elt, op)

    # ------------------------------------------------------------------
    def _is_tainted(self, node: ast.expr) -> bool:
        """Does ``node`` carry per-lane (warp-divergent) data?"""
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) \
                    and node.value.id in self.kernel.ctx_names:
                return node.attr in LANE_VECTOR_ATTRS
            if node.attr in UNIFORM_ATTRS:
                return False
            return self._is_tainted(node.value)
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in UNIFORM_REDUCERS:
                return False
            # Method reductions on a tainted value: pred.any(), .sum()
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in UNIFORM_REDUCERS:
                return False
            return any(self._is_tainted(a) for a in node.args) \
                or any(self._is_tainted(kw.value)
                       for kw in node.keywords)
        if isinstance(node, ast.Subscript):
            if not self._is_tainted(node.value):
                return False
            # A constant index selects one lane's value, which is the
            # same for the whole warp (broadcast); a variable index is
            # lane-dependent selection and stays divergent.
            return not isinstance(node.slice, ast.Constant)
        if isinstance(node, (ast.BinOp,)):
            return self._is_tainted(node.left) \
                or self._is_tainted(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._is_tainted(node.operand)
        if isinstance(node, ast.BoolOp):
            return any(self._is_tainted(v) for v in node.values)
        if isinstance(node, ast.Compare):
            return self._is_tainted(node.left) \
                or any(self._is_tainted(c) for c in node.comparators)
        if isinstance(node, ast.IfExp):
            return (self._is_tainted(node.test)
                    or self._is_tainted(node.body)
                    or self._is_tainted(node.orelse))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self._is_tainted(e) for e in node.elts)
        if isinstance(node, ast.YieldFrom):
            return False   # results of timed ops: treated as uniform
        return False

    # ------------------------------------------------------------------
    def _is_warp_varying(self, node: ast.expr) -> bool:
        """Lane-uniform but different between warps of one block?

        Sources: ``ctx.warp_id`` / ``ctx.warp_in_block`` and warp
        votes/reductions over per-lane data (``ctx.any(pred)`` is the
        *same* for all lanes of a warp yet each warp votes over its
        own lanes).  ``ctx.block_id`` is block-uniform, hence absent.
        """
        if isinstance(node, ast.Name):
            return node.id in self.warp_tainted
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) \
                    and node.value.id in self.kernel.ctx_names:
                return node.attr in WARP_VARYING_ATTRS
            if node.attr in UNIFORM_ATTRS:
                return False
            return self._is_warp_varying(node.value)
        if isinstance(node, ast.Call):
            name = call_name(node)
            reducer = name in UNIFORM_REDUCERS or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in UNIFORM_REDUCERS)
            operands = list(node.args) \
                + [kw.value for kw in node.keywords]
            if reducer:
                # Reducing lane-varying data yields a warp-varying
                # scalar; reducing warp-varying data stays so.
                receiver = node.func.value \
                    if isinstance(node.func, ast.Attribute) else None
                if receiver is not None:
                    operands.append(receiver)
                return any(self._is_tainted(a)
                           or self._is_warp_varying(a)
                           for a in operands)
            return any(self._is_warp_varying(a) for a in operands)
        if isinstance(node, ast.Subscript):
            return self._is_warp_varying(node.value) \
                or self._is_warp_varying(node.slice) \
                or (self._is_tainted(node.value)
                    and isinstance(node.slice, ast.Constant))
        if isinstance(node, ast.BinOp):
            return self._is_warp_varying(node.left) \
                or self._is_warp_varying(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._is_warp_varying(node.operand)
        if isinstance(node, ast.BoolOp):
            return any(self._is_warp_varying(v) for v in node.values)
        if isinstance(node, ast.Compare):
            return self._is_warp_varying(node.left) \
                or any(self._is_warp_varying(c)
                       for c in node.comparators)
        if isinstance(node, ast.IfExp):
            return (self._is_warp_varying(node.test)
                    or self._is_warp_varying(node.body)
                    or self._is_warp_varying(node.orelse))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self._is_warp_varying(e) for e in node.elts)
        return False
