"""Rule ``aptr-lifecycle``: every APtr must reach destroy(), once.

An :class:`~repro.core.apointer.APtr` holds page references while any
lane is linked; a kernel that exits without ``yield from
ptr.destroy(ctx)`` leaks those reference counts forever - the page can
never be evicted and, with a TLB, the entry can never be reclaimed.
Conversely a dereference *after* destroy re-faults pages the kernel
will never release.

Per kernel function the rule tracks names bound by creator calls
(``avm.gvmmap(...)``, ``gvmmap_device``, ``map_backend``,
``ptr.clone(ctx)``) and reports:

* **missing destroy** - the pointer is created but no
  ``destroy``/``gvmunmap`` call for it exists in the function;
* **conditional destroy** - the pointer is created unconditionally but
  only destroyed under a branch (some exit paths leak);
* **use after destroy** - a timed use at the same nesting level after
  the (last) destroy.

A pointer that *escapes* - returned, yielded, stored into a container
or attribute, aliased, or passed to another function - transfers
ownership, and the rule stays silent rather than guess.  With an
:class:`~repro.analysis.effects.EffectProgram` attached, passing the
pointer to a *resolvable helper coroutine* is no longer an escape:
the helper's ``destroys_params`` summary says whether it destroys the
argument on every path (counts as a destroy here) or only on some
(counts as a *conditional* destroy - the early-return-helper leak the
lexical scan could never see).  A resolvable helper that never
destroys the argument still transfers ownership conservatively.

The same machinery tracks *syscall tickets*: ``pread_async`` /
``pwrite_async`` (:mod:`repro.syscalls`) return a ticket whose
transfer only completes once the kernel drives ``yield from
sc.wait(ctx, ticket)``.  A ticket that is never waited on races the
warp's exit against the DMA; one waited on only inside a branch leaks
the race on the other arm.  Escape analysis applies identically.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.kernels import (
    APTR_CREATORS,
    TICKET_CREATORS,
    KernelFn,
    ModuleIndex,
    call_name,
    first_arg_is_ctx,
    parent,
    walk_function,
)
from repro.analysis.model import Finding

RULE = "aptr-lifecycle"

#: APtr methods that dereference or otherwise require a live pointer.
_USE_METHODS = frozenset({
    "read", "write", "read_wide", "write_wide", "add", "seek",
})


@dataclass
class _Pointer:
    name: str
    created: ast.Call
    create_depth: int            # 0 = top level of the function body
    create_pos: int              # linear statement index
    destroys: list[tuple[int, int]] = field(default_factory=list)
    #: (pos, node) of timed uses, for use-after-destroy
    uses: list[tuple[int, ast.AST]] = field(default_factory=list)
    escaped: bool = False


def check(kernel: KernelFn, index: ModuleIndex,
          effects=None) -> list[Finding]:
    pointers: dict[str, _Pointer] = {}
    order: dict[int, int] = {}      # id(stmt) -> linear position
    depth: dict[int, int] = {}      # id(stmt) -> branch nesting depth

    _number_statements(kernel.node.body, order, depth, 0)

    # walk_function yields nodes in stack order, not source order, so
    # collect every call first and register creators before matching
    # destroys/uses against them.
    calls: list[tuple[ast.Call, str, int, int]] = []
    for node in walk_function(kernel.node):
        if not isinstance(node, ast.Call):
            continue
        stmt = _enclosing_stmt(node)
        if stmt is None or id(stmt) not in order:
            continue
        calls.append((node, call_name(node),
                      order[id(stmt)], depth[id(stmt)]))
    calls.sort(key=lambda item: item[2])

    tickets: dict[str, _Pointer] = {}
    for node, name, pos, dep in calls:
        if name in APTR_CREATORS or (
                name == "clone" and first_arg_is_ctx(
                    node, kernel.ctx_names)):
            target = _assigned_name(node)
            if target is not None:
                pointers[target] = _Pointer(
                    name=target, created=node, create_depth=dep,
                    create_pos=pos)
        elif name in TICKET_CREATORS \
                and first_arg_is_ctx(node, kernel.ctx_names):
            target = _assigned_name(node)
            if target is not None:
                tickets[target] = _Pointer(
                    name=target, created=node, create_depth=dep,
                    create_pos=pos)

    for node, name, pos, dep in calls:
        if name == "destroy" and _receiver_name(node) in pointers:
            pointers[_receiver_name(node)].destroys.append((pos, dep))
        elif name == "gvmunmap":
            # avm.gvmunmap(ctx, ptr) destroys its second argument.
            if len(node.args) >= 2 and isinstance(node.args[1], ast.Name):
                ptr = pointers.get(node.args[1].id)
                if ptr is not None:
                    ptr.destroys.append((pos, dep))
        elif name == "wait" and first_arg_is_ctx(node, kernel.ctx_names):
            # sc.wait(ctx, ticket) completes its second argument.
            if len(node.args) >= 2 and isinstance(node.args[1], ast.Name):
                tkt = tickets.get(node.args[1].id)
                if tkt is not None:
                    tkt.destroys.append((pos, dep))
        elif name in _USE_METHODS and _receiver_name(node) in pointers \
                and first_arg_is_ctx(node, kernel.ctx_names):
            pointers[_receiver_name(node)].uses.append((pos, node))

    consumed = _apply_summaries(kernel, index, effects, calls,
                                pointers, tickets)
    _find_escapes(kernel, pointers, consumed)
    _find_escapes(kernel, tickets, consumed)

    findings: list[Finding] = []
    for ptr in pointers.values():
        if ptr.escaped:
            continue
        if not ptr.destroys:
            findings.append(_finding(
                kernel, index, ptr.created,
                f"apointer '{ptr.name}' is created but never "
                f"destroyed - leaked page references; add 'yield from "
                f"{ptr.name}.destroy(ctx)' before every exit"))
            continue
        min_destroy_depth = min(d for _, d in ptr.destroys)
        if ptr.create_depth == 0 and min_destroy_depth > 0:
            findings.append(_finding(
                kernel, index, ptr.created,
                f"apointer '{ptr.name}' is created unconditionally "
                f"but only destroyed inside a branch - some exit "
                f"paths leak its page references"))
        last_destroy = max(p for p, d in ptr.destroys
                           if d <= ptr.create_depth)  \
            if any(d <= ptr.create_depth for _, d in ptr.destroys) \
            else max(p for p, _ in ptr.destroys)
        for pos, node in ptr.uses:
            if pos > last_destroy:
                findings.append(_finding(
                    kernel, index, node,
                    f"apointer '{ptr.name}' is dereferenced after "
                    f"destroy() - re-faults pages that are never "
                    f"released"))

    for tkt in tickets.values():
        if tkt.escaped:
            continue
        creator = call_name(tkt.created)
        if not tkt.destroys:
            findings.append(_finding(
                kernel, index, tkt.created,
                f"syscall ticket '{tkt.name}' from {creator}() is "
                f"never waited on - the warp can exit while the "
                f"transfer is in flight; add 'yield from "
                f"sc.wait(ctx, {tkt.name})'"))
            continue
        if tkt.create_depth == 0 \
                and min(d for _, d in tkt.destroys) > 0:
            findings.append(_finding(
                kernel, index, tkt.created,
                f"syscall ticket '{tkt.name}' from {creator}() is "
                f"waited on only inside a branch - some exit paths "
                f"race the warp's exit against the transfer"))
    return findings


# ----------------------------------------------------------------------
def _number_statements(body: list, order: dict, depth: dict,
                       dep: int) -> None:
    for stmt in body:
        order[id(stmt)] = len(order)
        depth[id(stmt)] = dep
        branch = dep + 1 if isinstance(
            stmt, (ast.If, ast.While, ast.Try)) else dep
        # Loop bodies stay at the parent depth: a create/destroy pair
        # inside the same loop body balances every iteration.
        if isinstance(stmt, ast.For):
            branch = dep
        for name in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, name, None)
            if sub:
                _number_statements(
                    [s for s in sub
                     if not isinstance(s, ast.FunctionDef)],
                    order, depth, branch)
        for handler in getattr(stmt, "handlers", []) or []:
            _number_statements(handler.body, order, depth, branch)


def _enclosing_stmt(node: ast.AST):
    cur = node
    while cur is not None and not isinstance(cur, ast.stmt):
        cur = parent(cur)
    return cur


def _assigned_name(call: ast.Call) -> str | None:
    up = parent(call)
    # Tickets are bound through the driving delegation:
    # ``t = yield from sc.pread_async(ctx, ...)``.
    if isinstance(up, (ast.YieldFrom, ast.Await)):
        up = parent(up)
    if isinstance(up, ast.Assign) and len(up.targets) == 1 \
            and isinstance(up.targets[0], ast.Name):
        return up.targets[0].id
    if isinstance(up, (ast.AnnAssign, ast.NamedExpr)) \
            and isinstance(up.target, ast.Name):
        return up.target.id
    return None


def _receiver_name(call: ast.Call) -> str | None:
    fn = call.func
    if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
        return fn.value.id
    return None


def _apply_summaries(kernel: KernelFn, index: ModuleIndex, effects,
                     calls: list, pointers: dict,
                     tickets: dict) -> dict:
    """Consume callee ``destroys_params`` summaries.

    Returns ``{id(call): {arg names the summary accounted for}}`` so
    escape analysis skips those argument positions.  A destroy the
    callee performs on *every* path counts at the call's own depth;
    one performed only on *some* paths counts one level deeper, which
    is exactly what makes the conditional-destroy finding fire for an
    unconditionally created pointer.  Dynamic dispatch only counts
    when every candidate destroys the parameter.
    """
    consumed: dict[int, set[str]] = {}
    if effects is None:
        return consumed
    from repro.analysis.effects import aligned_param_index
    for node, name, pos, dep in calls:
        if name in ("destroy", "gvmunmap", "wait"):
            continue
        candidates = effects.graph.resolve(node, kernel, index)
        if not candidates:
            continue
        for arg_pos, arg in enumerate(node.args):
            if not isinstance(arg, ast.Name):
                continue
            tracked = pointers.get(arg.id) or tickets.get(arg.id)
            if tracked is None:
                continue
            modes = []
            for callee in candidates:
                summary = effects.summaries.get(callee.key)
                mode = None
                if summary is not None:
                    idx = aligned_param_index(callee, node, arg_pos)
                    mode = summary.destroys_params.get(idx)
                modes.append(mode)
            if any(m is None for m in modes):
                continue    # some candidate never destroys: escape
            all_always = all(m == "always" for m in modes)
            tracked.destroys.append(
                (pos, dep if all_always else dep + 1))
            consumed.setdefault(id(node), set()).add(arg.id)
    return consumed


def _find_escapes(kernel: KernelFn, pointers: dict,
                  consumed: dict | None = None) -> None:
    if not pointers:
        return
    consumed = consumed or {}
    for node in walk_function(kernel.node):
        if not (isinstance(node, ast.Name) and node.id in pointers
                and isinstance(node.ctx, ast.Load)):
            continue
        up = parent(node)
        ptr = pointers[node.id]
        if isinstance(up, ast.Attribute):
            continue        # ptr.read(...) / ptr.backend: not an escape
        if isinstance(up, (ast.Return, ast.Yield)):
            ptr.escaped = True
        elif isinstance(up, ast.Call):
            # An argument position other than gvmunmap's / wait's
            # hands the value to code this rule cannot see - unless an
            # effect summary already told us what the callee does.
            if call_name(up) not in ("gvmunmap", "wait") \
                    and node in up.args \
                    and node.id not in consumed.get(id(up), ()):
                ptr.escaped = True
        elif isinstance(up, (ast.Assign, ast.AnnAssign, ast.NamedExpr,
                             ast.Tuple, ast.List, ast.Dict, ast.Set,
                             ast.Subscript, ast.Starred)):
            ptr.escaped = True


def _finding(kernel: KernelFn, index: ModuleIndex, node: ast.AST,
             message: str) -> Finding:
    return Finding(rule=RULE, path=index.path, line=node.lineno,
                   col=node.col_offset, message=message,
                   function=kernel.qualname)
