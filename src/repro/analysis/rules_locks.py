"""Rule ``lock-order``: inconsistent ``ctx.lock`` acquisition order.

The spinlock table (paper Section 4.3: per-xpage locks guarding frame
install) is keyed by integer ids; two warps that acquire the same pair
of locks in opposite orders can deadlock the simulated machine just
like real firmware.  Because lock keys are expressions, the rule
canonicalizes each ``ctx.lock(expr)`` argument with ``ast.unparse`` and
builds a *global* acquisition-order graph across all linted files: an
edge ``A -> B`` whenever ``B`` is acquired while ``A`` is still held.
Any cycle in that graph is a potential inversion and every
participating acquisition site is reported.

Also reported per function:

* re-acquiring a key already held (self-deadlock on a non-reentrant
  spinlock);
* ``ctx.unlock`` of a key that is provably not held on any path
  (unbalanced pairing the static scan can prove wrong);
* a *blocking syscall* (``pread``/``pwrite``/``msync``/``ftruncate``/
  ``wait`` from :mod:`repro.syscalls`) reached while any lock may be
  held - directly, or hidden inside a helper coroutine whose effect
  summary says it can block.

The walk is path-sensitive with a **must/may split** at every join:
after a branch the intersection of the arms is *must-held* (used for
self-deadlock via helpers and for the shared-race rule's common-lock
proof) and the union is *may-held* (used for order edges and for
blocking-under-lock, which only needs possibility).  Loop exits join
the zero-iteration path with every ``break`` state, so a lock
acquired before a ``break`` is still held after the loop - the
join-state bug the purely lexical scan had.

With an :class:`~repro.analysis.effects.EffectProgram` attached, the
scan is interprocedural: ``yield from helper(ctx, k)`` applies the
helper's summary - order edges from every held key to every key the
helper may acquire (parameter names substituted with the caller's
argument expressions), blocking syscalls it reaches, and the locks it
leaves held or releases on the caller's behalf.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.effects import (
    EffectSummary,
    _canonical_key,
    _join_states,
    _State,
    param_arg_map,
    _substitute,
)
from repro.analysis.kernels import (
    BLOCKING_SYSCALLS,
    KernelFn,
    ModuleIndex,
    call_name,
    first_arg_is_ctx,
    receiver_is_ctx,
)
from repro.analysis.model import Finding

RULE = "lock-order"

#: Backwards-compatible alias (pre-effects name of the shared set).
_BLOCKING_SYSCALLS = BLOCKING_SYSCALLS


@dataclass
class _Acquire:
    """One ``ctx.lock`` site in the global order graph."""

    key: str
    path: str
    line: int
    col: int
    function: str


@dataclass
class LockOrderGraph:
    """Acquisition-order edges accumulated across every linted file.

    The linter feeds each kernel through :meth:`scan` and calls
    :meth:`inversions` once at the end; per-function findings
    (re-acquire, unmatched unlock, blocking-under-lock) are returned
    from :meth:`scan` directly.
    """

    #: held-key -> acquired-key -> list of witnessing acquire sites
    edges: dict[str, dict[str, list[_Acquire]]] = field(
        default_factory=dict)

    # ------------------------------------------------------------------
    def scan(self, kernel: KernelFn, index: ModuleIndex,
             effects=None) -> list[Finding]:
        findings: list[Finding] = []
        walker = _LockWalker(self, kernel, index, effects, findings)
        walker.walk(kernel.node.body, _State())
        return findings

    def edge(self, held: str, acquired: str, site: _Acquire) -> None:
        if held != acquired:
            self.edges.setdefault(held, {}) \
                .setdefault(acquired, []).append(site)

    # ------------------------------------------------------------------
    def inversions(self) -> list[Finding]:
        """Cycle detection over the accumulated order graph."""
        findings: list[Finding] = []
        seen_pairs: set[tuple[str, str]] = set()
        for a, succs in sorted(self.edges.items()):
            for b in sorted(succs):
                if (a, b) in seen_pairs:
                    continue
                if not self._reaches(b, a):
                    continue
                seen_pairs.add((a, b))
                seen_pairs.add((b, a))
                for site in succs[b] + self.edges.get(b, {}).get(a, []):
                    findings.append(Finding(
                        rule=RULE, path=site.path, line=site.line,
                        col=site.col, function=site.function,
                        message=(
                            f"lock-order inversion: '{a}' and '{b}' "
                            f"are acquired in both orders across the "
                            f"codebase - pick one global order "
                            f"(e.g. sort keys before locking)")))
        return findings

    def _reaches(self, src: str, dst: str) -> bool:
        stack, seen = [src], {src}
        while stack:
            cur = stack.pop()
            if cur == dst:
                return True
            for nxt in self.edges.get(cur, {}):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False


class _LockWalker:
    """Path-sensitive held-lock walk over one kernel function."""

    def __init__(self, graph: LockOrderGraph, kernel: KernelFn,
                 index: ModuleIndex, effects, findings: list):
        self.graph = graph
        self.kernel = kernel
        self.index = index
        self.effects = effects
        self.findings = findings
        self.loop_breaks: list = []
        #: every key ``ctx.lock``-ed anywhere in this function so far;
        #: distinguishes a provably unbalanced unlock from a *foreign
        #: release* (a helper unlocking on its caller's behalf).
        self.acquired: set[str] = set()

    # ------------------------------------------------------------------
    def walk(self, body: list, state: _State):
        """Returns ``(state_after, terminated)``."""
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.If):
                self._scan_expr(stmt.test, state)
                arms = [self.walk(stmt.body, state.clone()),
                        self.walk(stmt.orelse, state.clone())]
                live = [s for s, term in arms if not term]
                if not live:
                    return state, True
                self._adopt(state, _join_states(live))
                continue
            if isinstance(stmt, (ast.While, ast.For)):
                test = stmt.test if isinstance(stmt, ast.While) \
                    else stmt.iter
                self._scan_expr(test, state)
                always_enters = (
                    isinstance(stmt, ast.While)
                    and isinstance(stmt.test, ast.Constant)
                    and bool(stmt.test.value))
                self.loop_breaks.append([])
                entry = state.clone()
                body_state, body_term = self.walk(stmt.body,
                                                  state.clone())
                breaks = self.loop_breaks.pop()
                candidates = list(breaks)
                if always_enters:
                    if not candidates:
                        # Every exit from ``while True`` returns or
                        # raises: nothing ever falls through.
                        self.walk(stmt.orelse, entry.clone())
                        return state, True
                else:
                    candidates.append(entry)
                    if not body_term:
                        candidates.append(body_state)
                self._adopt(state, _join_states(candidates))
                state, term = self.walk(stmt.orelse, state)
                if term:
                    return state, True
                continue
            if isinstance(stmt, ast.Try):
                entry = state.clone()
                body_state, body_term = self.walk(stmt.body,
                                                  state.clone())
                handler_states = []
                for handler in stmt.handlers:
                    h_state, h_term = self.walk(handler.body,
                                                entry.clone())
                    if not h_term:
                        handler_states.append(h_state)
                if not body_term:
                    body_state, body_term = self.walk(stmt.orelse,
                                                      body_state)
                live = ([] if body_term else [body_state]) \
                    + handler_states
                if not live:
                    if stmt.finalbody:
                        self.walk(stmt.finalbody, entry.clone())
                    return state, True
                self._adopt(state, _join_states(live))
                state, term = self.walk(stmt.finalbody, state)
                if term:
                    return state, True
                continue
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    self._scan_expr(item.context_expr, state)
                state, term = self.walk(stmt.body, state)
                if term:
                    return state, True
                continue
            self._scan_expr(stmt, state)
            if isinstance(stmt, (ast.Return, ast.Raise)):
                return state, True
            if isinstance(stmt, (ast.Break, ast.Continue)):
                if isinstance(stmt, ast.Break) and self.loop_breaks:
                    self.loop_breaks[-1].append(state.clone())
                return state, True
        return state, False

    @staticmethod
    def _adopt(state: _State, new: _State) -> None:
        state.may, state.must = new.may, new.must

    # ------------------------------------------------------------------
    def _scan_expr(self, node, state: _State) -> None:
        if node is None:
            return
        calls = [n for n in ast.walk(node) if isinstance(n, ast.Call)]
        calls.sort(key=lambda n: (n.lineno, n.col_offset))
        for call in calls:
            self._handle_call(call, state)

    def _handle_call(self, call: ast.Call, state: _State) -> None:
        kernel = self.kernel
        name = call_name(call)
        if receiver_is_ctx(call, kernel.ctx_names):
            if name == "lock" and call.args:
                self._acquire(call, _canonical_key(call.args[0]), state)
            elif name == "unlock" and call.args:
                self._release(call, _canonical_key(call.args[0]), state)
            return
        if name in BLOCKING_SYSCALLS \
                and first_arg_is_ctx(call, kernel.ctx_names):
            if state.may:
                self._blocked(call, name, state)
            return
        if self.effects is None:
            return
        candidates = self.effects.graph.resolve(call, kernel,
                                                self.index)
        if not candidates:
            return
        results = []
        for callee in candidates:
            summary = self.effects.summaries.get(
                callee.key, EffectSummary())
            branch = state.clone()
            self._apply_summary(call, callee, summary, branch)
            results.append(branch)
        self._adopt(state, _join_states(results))

    # ------------------------------------------------------------------
    def _acquire(self, node, key: str, state: _State) -> None:
        if key in state.may:
            self.findings.append(self._finding(
                node,
                f"lock key '{key}' acquired while already held - "
                f"self-deadlock on a non-reentrant spinlock"))
        site = _Acquire(key=key, path=self.index.path,
                        line=node.lineno, col=node.col_offset,
                        function=self.kernel.qualname)
        for prior in state.may:
            self.graph.edge(prior, key, site)
        if key not in state.may:
            state.may.append(key)
        state.must.add(key)
        self.acquired.add(key)

    def _release(self, node, key: str, state: _State) -> None:
        if key in state.may:
            state.may.reverse()
            state.may.remove(key)
            state.may.reverse()
            state.must.discard(key)
            return
        if key not in self.acquired and self._has_callers():
            # Foreign release: this helper never took the lock itself
            # and some kernel calls it, so it is plausibly unlocking on
            # the caller's behalf.  The callers are judged against its
            # ``releases_foreign`` summary instead.
            return
        self.findings.append(self._finding(
            node,
            f"unlock of '{key}' which is not held on this path - "
            f"unbalanced lock/unlock pairing"))

    def _has_callers(self) -> bool:
        if self.effects is None:
            return False
        from repro.analysis.callgraph import FnKey
        key = FnKey(self.index.path, self.kernel.qualname)
        return bool(self.effects.graph.callers.get(key))

    def _blocked(self, node, name: str, state: _State,
                 via: str = "") -> None:
        held = next((k for k in reversed(state.may)
                     if k in state.must), state.may[-1])
        hedge = "is" if held in state.must else "may be"
        self.findings.append(self._finding(
            node,
            f"blocking syscall '{name}'{via} invoked while lock "
            f"'{held}' {hedge} held - syscalls take page-table "
            f"bucket locks internally and block on host I/O; "
            f"release held locks first"))

    # ------------------------------------------------------------------
    def _apply_summary(self, call: ast.Call, callee, summary,
                       state: _State) -> None:
        mapping = param_arg_map(callee, call)
        if summary.blocking_syscalls and state.may:
            for name in sorted(summary.blocking_syscalls):
                self._blocked(call, name, state,
                              via=f" reached via helper "
                                  f"'{callee.name}'")
        site = _Acquire(key="", path=self.index.path,
                        line=call.lineno, col=call.col_offset,
                        function=self.kernel.qualname)
        for raw in sorted(summary.may_acquire):
            key = _substitute(raw, mapping)
            if key in state.must:
                self.findings.append(self._finding(
                    call,
                    f"lock key '{key}' is held here and re-acquired "
                    f"inside helper '{callee.name}' - self-deadlock "
                    f"on a non-reentrant spinlock"))
            for prior in state.may:
                self.graph.edge(
                    prior, key,
                    _Acquire(key=key, path=site.path, line=site.line,
                             col=site.col, function=site.function))
        for raw in summary.releases_foreign:
            key = _substitute(raw, mapping)
            if key in state.may:
                state.may.reverse()
                state.may.remove(key)
                state.may.reverse()
            state.must.discard(key)
        for raw in summary.exit_may_held:
            key = _substitute(raw, mapping)
            if key not in state.may:
                state.may.append(key)
        for raw in summary.exit_must_held:
            state.must.add(_substitute(raw, mapping))

    def _finding(self, node, message: str) -> Finding:
        return Finding(rule=RULE, path=self.index.path,
                       line=node.lineno, col=node.col_offset,
                       function=self.kernel.qualname, message=message)
