"""Rule ``lock-order``: inconsistent ``ctx.lock`` acquisition order.

The spinlock table (paper Section 4.3: per-xpage locks guarding frame
install) is keyed by integer ids; two warps that acquire the same pair
of locks in opposite orders can deadlock the simulated machine just
like real firmware.  Because lock keys are expressions, the rule
canonicalizes each ``ctx.lock(expr)`` argument with ``ast.unparse`` and
builds a *global* acquisition-order graph across all linted files: an
edge ``A -> B`` whenever ``B`` is acquired while ``A`` is still held.
Any cycle in that graph is a potential inversion and every
participating acquisition site is reported.

Also reported per function:

* re-acquiring a key already held (self-deadlock on a non-reentrant
  spinlock);
* ``ctx.unlock`` of a key that is not currently held (unbalanced
  pairing the static scan can prove wrong);
* a *blocking syscall* (``pread``/``pwrite``/``msync``/``ftruncate``/
  ``wait`` from :mod:`repro.syscalls`, identified by a context first
  argument) invoked while any lock is held - syscalls acquire
  page-table bucket locks internally and block on host I/O, so the
  held spinlock can deadlock against the fault path.

The scan is lexical per function: ``yield from ctx.lock(k)`` pushes
``k``, ``yield from ctx.unlock(k)`` pops it, and branches are walked
with a copy of the held stack so an unlock on one arm does not leak
into the other.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.kernels import (
    KernelFn,
    ModuleIndex,
    call_name,
    first_arg_is_ctx,
    receiver_is_ctx,
)
from repro.analysis.model import Finding

RULE = "lock-order"

#: Syscall-layer entry points that block the warp and take bucket
#: locks internally (GPU-syscalls taxonomy: strong/relaxed blocking).
_BLOCKING_SYSCALLS = frozenset({
    "pread", "pwrite", "msync", "ftruncate", "wait",
})


@dataclass
class _Acquire:
    """One ``ctx.lock`` site in the global order graph."""

    key: str
    path: str
    line: int
    col: int
    function: str


@dataclass
class LockOrderGraph:
    """Acquisition-order edges accumulated across every linted file.

    The linter feeds each kernel through :meth:`scan` and calls
    :meth:`inversions` once at the end; per-function findings
    (re-acquire, unmatched unlock) are returned from :meth:`scan`
    directly.
    """

    #: held-key -> acquired-key -> list of witnessing acquire sites
    edges: dict[str, dict[str, list[_Acquire]]] = field(
        default_factory=dict)

    # ------------------------------------------------------------------
    def scan(self, kernel: KernelFn, index: ModuleIndex) -> list[Finding]:
        findings: list[Finding] = []
        self._walk_body(kernel.node.body, [], kernel, index, findings)
        return findings

    def _walk_body(self, body: list, held: list[str],
                   kernel: KernelFn, index: ModuleIndex,
                   findings: list[Finding]) -> tuple[list[str], bool]:
        """Walk statements tracking held locks path-sensitively.

        Returns ``(held_after, terminated)``: the held stack at the
        end of the straight-line path, and whether every path through
        ``body`` ends in return/raise/break/continue (in which case
        the caller must not propagate this arm's stack).
        """
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.If):
                self._scan_expr(stmt.test, held, kernel, index, findings)
                arms = [
                    self._walk_body(stmt.body, list(held),
                                    kernel, index, findings),
                    self._walk_body(stmt.orelse, list(held),
                                    kernel, index, findings),
                ]
                live = [h for h, terminated in arms if not terminated]
                if not live:
                    return held, True
                held = live[0] if len(live) == 1 \
                    else _merge_stacks(live[0], live[1])
                continue
            if isinstance(stmt, (ast.While, ast.For)):
                test = stmt.test if isinstance(stmt, ast.While) \
                    else stmt.iter
                self._scan_expr(test, held, kernel, index, findings)
                # Loop bodies are assumed lock-balanced per iteration:
                # walk with a copy so an early break/continue does not
                # poison the fall-through stack.
                self._walk_body(stmt.body, list(held),
                                kernel, index, findings)
                held, terminated = self._walk_body(
                    stmt.orelse, held, kernel, index, findings)
                if terminated:
                    return held, True
                continue
            if isinstance(stmt, ast.Try):
                held, terminated = self._walk_body(
                    stmt.body, held, kernel, index, findings)
                for handler in stmt.handlers:
                    self._walk_body(handler.body, list(held),
                                    kernel, index, findings)
                if not terminated:
                    held, terminated = self._walk_body(
                        stmt.orelse, held, kernel, index, findings)
                held, fin_term = self._walk_body(
                    stmt.finalbody, held, kernel, index, findings)
                if terminated or fin_term:
                    return held, True
                continue
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    self._scan_expr(item.context_expr, held,
                                    kernel, index, findings)
                held, terminated = self._walk_body(
                    stmt.body, held, kernel, index, findings)
                if terminated:
                    return held, True
                continue
            # Leaf statement: process lock/unlock calls in its
            # expressions, then handle control transfer.
            self._scan_expr(stmt, held, kernel, index, findings)
            if isinstance(stmt, (ast.Return, ast.Raise, ast.Break,
                                 ast.Continue)):
                return held, True
        return held, False

    def _scan_expr(self, node, held: list[str], kernel: KernelFn,
                   index: ModuleIndex, findings: list[Finding]) -> None:
        if node is None:
            return
        calls = [n for n in ast.walk(node)
                 if isinstance(n, ast.Call)
                 and ((call_name(n) in ("lock", "unlock")
                       and receiver_is_ctx(n, kernel.ctx_names)
                       and n.args)
                      or (call_name(n) in _BLOCKING_SYSCALLS
                          and first_arg_is_ctx(n, kernel.ctx_names)))]
        calls.sort(key=lambda n: (n.lineno, n.col_offset))
        for call in calls:
            name = call_name(call)
            if name in _BLOCKING_SYSCALLS \
                    and not receiver_is_ctx(call, kernel.ctx_names):
                if held:
                    findings.append(Finding(
                        rule=RULE, path=index.path,
                        line=call.lineno, col=call.col_offset,
                        function=kernel.qualname,
                        message=(
                            f"blocking syscall '{name}' invoked "
                            f"while lock '{held[-1]}' is held - "
                            f"syscalls take page-table bucket locks "
                            f"internally and block on host I/O; "
                            f"release held locks first")))
                continue
            key = _canonical_key(call.args[0])
            if name == "lock":
                if key in held:
                    findings.append(Finding(
                        rule=RULE, path=index.path,
                        line=call.lineno, col=call.col_offset,
                        function=kernel.qualname,
                        message=(
                            f"lock key '{key}' acquired while "
                            f"already held - self-deadlock on a "
                            f"non-reentrant spinlock")))
                site = _Acquire(key=key, path=index.path,
                                line=call.lineno, col=call.col_offset,
                                function=kernel.qualname)
                for prior in held:
                    if prior != key:
                        self.edges.setdefault(prior, {}) \
                            .setdefault(key, []).append(site)
                held.append(key)
            else:
                if key in held:
                    # Pop the most recent acquisition of the key.
                    held.reverse()
                    held.remove(key)
                    held.reverse()
                else:
                    findings.append(Finding(
                        rule=RULE, path=index.path,
                        line=call.lineno, col=call.col_offset,
                        function=kernel.qualname,
                        message=(
                            f"unlock of '{key}' which is not held "
                            f"on this path - unbalanced "
                            f"lock/unlock pairing")))

    # ------------------------------------------------------------------
    def inversions(self) -> list[Finding]:
        """Cycle detection over the accumulated order graph."""
        findings: list[Finding] = []
        seen_pairs: set[tuple[str, str]] = set()
        for a, succs in sorted(self.edges.items()):
            for b in sorted(succs):
                if (a, b) in seen_pairs:
                    continue
                if not self._reaches(b, a):
                    continue
                seen_pairs.add((a, b))
                seen_pairs.add((b, a))
                for site in succs[b] + self.edges.get(b, {}).get(a, []):
                    findings.append(Finding(
                        rule=RULE, path=site.path, line=site.line,
                        col=site.col, function=site.function,
                        message=(
                            f"lock-order inversion: '{a}' and '{b}' "
                            f"are acquired in both orders across the "
                            f"codebase - pick one global order "
                            f"(e.g. sort keys before locking)")))
        return findings

    def _reaches(self, src: str, dst: str) -> bool:
        stack, seen = [src], {src}
        while stack:
            cur = stack.pop()
            if cur == dst:
                return True
            for nxt in self.edges.get(cur, {}):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False


def _merge_stacks(a: list[str], b: list[str]) -> list[str]:
    """Union of two live branch stacks, preserving first-seen order.

    Taking the union (rather than intersection) means a key released
    on only one arm is still considered held afterwards - the walk
    over-approximates held sets, which can only create order edges,
    never false unlock-not-held reports.
    """
    merged = list(a)
    for key in b:
        if key not in merged:
            merged.append(key)
    return merged


def _canonical_key(expr: ast.expr) -> str:
    """A stable string for a lock-key expression.

    Variable names are kept (``xpage.lock_id``); constant folding is
    not attempted.  Distinct expressions that alias the same runtime
    key are treated as distinct - the rule under-approximates rather
    than guess.
    """
    try:
        return ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on exprs
        return "<unknown>"
