"""Rule ``shared-race``: static happens-before over shared structures.

The paper's whole concurrency argument is that every cross-warp
structure - page-table entries, page-cache frames, staging slots,
syscall tickets - is touched only under its bucket spinlock or in
barrier-separated phases.  The runtime sanitizer checks that claim for
the accesses a given run happens to execute; this rule checks it for
*every* access the effect inference can see.

Evaluation happens at the **call-graph roots** (entry kernels nobody
else calls): a root's :class:`~repro.analysis.effects.EffectSummary`
carries the transitively-closed set of
:class:`~repro.analysis.effects.AccessSite` records, each already
annotated with the must-held locks and barrier epoch *at the root* -
so a helper that is only ever called with the bucket lock held is
correctly quiet, and the same helper reached lock-free from another
root is correctly loud.

Two sites race when they touch the same structure, at least one
writes, they share **no** must-held lock, and they are not ordered by
barriers (same function, different epochs - the static mirror of the
sanitizer's torn-write ordering).  A lone unlocked *write* site races
against itself: two warps of the same grid execute the same line
concurrently.  ``global_memory`` is deliberately not paired - raw
addresses are not statically comparable and the runtime torn-write
detector owns that axis.

Reporting collapses the quadratic pair set to its causes: an
**unlocked write** is one finding at the site (pairing it with every
reader it can hurt restates the same bug dozens of times), and pair
findings are reserved for *inconsistent locking* - every write in
the pair holds some lock, just never the same one as the partner.

This is a may-analysis: a report means "no lock or barrier *provably*
separates these", not "they overlap on the same element".  Per-element
disjointness (each warp touching its own slot) is what the findings
baseline is for.
"""

from __future__ import annotations

from repro.analysis.effects import RACE_STRUCTS, AccessSite
from repro.analysis.model import Finding

RULE = "shared-race"

#: Human names used in messages.
_STRUCT_LABEL = {
    "page_table": "page-table entry",
    "page_cache": "page-cache frame",
    "staging": "staging slot",
    "syscall_ticket": "syscall ticket",
}


def check_program(effects) -> list[Finding]:
    """Race findings over every call-graph root of ``effects``."""
    findings: list[Finding] = []
    seen: set = set()
    for key in effects.roots():
        summary = effects.summaries.get(key)
        if summary is None:
            continue
        findings.extend(check_root(summary, seen))
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings


def check_root(summary, seen: set | None = None) -> list[Finding]:
    """Race pairs within one root kernel's closed access-site set.

    ``seen`` dedupes across roots: the same unsynchronized helper
    reached from three entry kernels is one finding, reported at the
    site, not three.
    """
    if seen is None:
        seen = set()
    findings: list[Finding] = []
    sites = [s for s in summary.sites if s.struct in RACE_STRUCTS]
    by_struct: dict[str, list[AccessSite]] = {}
    for site in sites:
        by_struct.setdefault(site.struct, []).append(site)
    for struct, group in sorted(by_struct.items()):
        group = sorted(set(group),
                       key=lambda s: (s.path, s.line, s.col, s.kind))
        for i, a in enumerate(group):
            if a.kind == "write" and not a.locks:
                fp = ("self", struct, a.path, a.line, a.col)
                if fp not in seen:
                    seen.add(fp)
                    findings.append(_self_race(summary, a))
            for b in group[i + 1:]:
                if _races(a, b):
                    fp = ("pair", struct) + tuple(sorted(
                        [(a.path, a.line, a.col),
                         (b.path, b.line, b.col)]))
                    if fp not in seen:
                        seen.add(fp)
                        findings.append(_pair_race(summary, a, b))
    return findings


def _races(a: AccessSite, b: AccessSite) -> bool:
    if (a.path, a.line, a.col) == (b.path, b.line, b.col):
        return False                  # the self-race case covers this
    if a.kind != "write" and b.kind != "write":
        return False
    for site in (a, b):
        if site.kind == "write" and not site.locks:
            return False              # the self-race case covers this
    if a.locks & b.locks:
        return False                  # a common lock orders them
    if a.function == b.function and a.epoch != b.epoch:
        return False                  # barrier-separated phases
    return True


# The messages deliberately name neither the entry kernel nor the
# partner's line number: baseline fingerprints hash the message, and
# both churn with unrelated edits (adding a test kernel re-roots the
# call graph; inserting a line above the partner moves it).


def _self_race(summary, site: AccessSite) -> Finding:
    label = _STRUCT_LABEL.get(site.struct, site.struct)
    return Finding(
        rule=RULE, path=site.path, line=site.line, col=site.col,
        function=site.function,
        message=(
            f"unsynchronized {label} write reachable from an entry "
            f"kernel with no lock held - two warps executing this "
            f"line race; take the bucket lock or prove per-warp "
            f"disjointness and baseline it"))


def _pair_race(summary, a: AccessSite, b: AccessSite) -> Finding:
    label = _STRUCT_LABEL.get(a.struct, a.struct)
    first, second = sorted([a, b], key=lambda s: (s.path, s.line,
                                                  s.col))
    kinds = f"{first.kind}/{second.kind}"
    return Finding(
        rule=RULE, path=first.path, line=first.line, col=first.col,
        function=first.function,
        message=(
            f"{kinds} race on a {label}: this access and the one in "
            f"{second.function} ({second.path}) hold no common lock "
            f"and no barrier separates them on some path reaching "
            f"both"))
