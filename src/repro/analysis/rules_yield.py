"""Rule ``missing-yield-from``: un-driven timed generator calls.

Every timed operation in this codebase is a generator: calling it
builds the coroutine but does nothing until something iterates it.  A
kernel that writes ``ctx.load(addr, "f4")`` instead of ``yield from
ctx.load(addr, "f4")`` compiles, runs, and silently accounts zero
cycles and issues zero memory transactions - the exact failure mode
this subsystem exists to catch.

Flagged shapes (``g`` = a timed generator call):

* ``g`` as a bare expression statement;
* ``yield g`` (plain yield of the generator object - the engine would
  receive a generator instead of a Request and crash *only* at
  runtime, and only if that path executes);
* ``x = g`` where ``x`` is never subsequently iterated, yielded from,
  passed on, or returned.

Not flagged: ``yield from g``, ``for _ in g``, ``return g`` /
``yield from x`` after assignment, and generators passed as arguments
(ownership transferred).

With an :class:`~repro.analysis.effects.EffectProgram` attached, a
call is also *timed* when the cross-module call graph resolves it to
a generator kernel defined in another linted file - so an imported
helper coroutine called bare (``helper(ctx, ...)`` after ``from m
import helper``) is caught even though the lexical per-module index
cannot see its definition.  Names that collide with a non-generator
ctx-taking function anywhere in the program are refused rather than
guessed.
"""

from __future__ import annotations

import ast

from repro.analysis.kernels import (
    KernelFn,
    ModuleIndex,
    call_name,
    is_timed_generator_call,
    parent,
    walk_function,
)
from repro.analysis.model import Finding

RULE = "missing-yield-from"


def check(kernel: KernelFn, index: ModuleIndex,
          effects=None) -> list[Finding]:
    findings: list[Finding] = []
    assigned: dict[str, ast.Call] = {}
    for node in walk_function(kernel.node):
        if not isinstance(node, ast.Call):
            continue
        if not is_timed_generator_call(node, kernel, index) \
                and not (effects is not None
                         and effects.graph.resolve(node, kernel,
                                                   index)):
            continue
        up = parent(node)
        if isinstance(up, ast.YieldFrom):
            continue
        if isinstance(up, ast.Expr):
            findings.append(_finding(
                kernel, index, node,
                f"result of timed generator '{call_name(node)}' is "
                f"discarded - prefix with 'yield from' or the "
                f"operation is a timing no-op"))
        elif isinstance(up, ast.Yield):
            findings.append(_finding(
                kernel, index, node,
                f"'yield {call_name(node)}(...)' yields the generator "
                f"object itself - use 'yield from'"))
        elif isinstance(up, (ast.Assign, ast.AnnAssign, ast.NamedExpr)):
            target = _single_name_target(up)
            if target is not None:
                assigned[target] = node
        elif isinstance(up, ast.Return):
            # ``return ctx.load(...)`` from a helper delegates the
            # generator to the caller; legitimate.
            continue
        # Calls in other positions (arguments, comprehensions, for
        # iterables) hand the generator to something that drives it.
    for name, call in assigned.items():
        if not _name_is_consumed(kernel.node, name, call):
            findings.append(_finding(
                kernel, index, call,
                f"generator assigned to '{name}' is never iterated - "
                f"drive it with 'yield from {name}'"))
    return findings


def _single_name_target(stmt) -> str | None:
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
            and isinstance(stmt.targets[0], ast.Name):
        return stmt.targets[0].id
    if isinstance(stmt, (ast.AnnAssign, ast.NamedExpr)) \
            and isinstance(stmt.target, ast.Name):
        return stmt.target.id
    return None


def _name_is_consumed(fn: ast.FunctionDef, name: str,
                      assignment: ast.Call) -> bool:
    """True if ``name`` is iterated/forwarded anywhere in ``fn``."""
    for node in walk_function(fn):
        if not (isinstance(node, ast.Name) and node.id == name
                and isinstance(node.ctx, ast.Load)):
            continue
        up = parent(node)
        if isinstance(up, (ast.YieldFrom, ast.Return, ast.Yield)):
            return True
        if isinstance(up, ast.For) and up.iter is node:
            return True
        if isinstance(up, ast.Call) and node in up.args:
            return True   # next(g), list(g), helper(g, ...)
        if isinstance(up, ast.comprehension) and up.iter is node:
            return True
        if isinstance(up, ast.Attribute):
            return True   # g.send(...), g.close(...)
    return False


def _finding(kernel: KernelFn, index: ModuleIndex, node: ast.AST,
             message: str) -> Finding:
    return Finding(rule=RULE, path=index.path, line=node.lineno,
                   col=node.col_offset, message=message,
                   function=kernel.qualname)
