"""Runtime sanitizer: SIMT invariants checked on a live simulation.

The static linter (:mod:`repro.analysis.linter`) proves what it can
from source; this module checks the rest while a kernel actually runs.
Enabled via ``GPUfsConfig(sanitize=True)``: the owning
:class:`~repro.paging.gpufs.GPUfs` installs a :class:`Sanitizer` on its
device, and every subsequent launch builds
:class:`SanitizedWarpContext` objects and drives each warp through
:meth:`Sanitizer.watch`.  When the flag is off nothing here is even
imported - instrumentation sites in the device, the apointer layer and
the paging layer guard on a single attribute test
(``ctx.sanitizer is not None``), the same zero-cost-when-off discipline
as the telemetry hooks.

Checked invariants, one :class:`Violation` record per break:

* **lockstep** - every warp of a threadblock must pass the same number
  of barriers before exiting.  One coroutine models one warp, so
  per-lane divergence *inside* a warp is the linter's job
  (``divergent-yield``); what the runtime can see is a warp skipping
  or double-counting a ``syncthreads`` relative to its block siblings,
  which on hardware is the classic barrier-divergence hang.
* **torn-write** - two warps wrote overlapping global-memory bytes
  with no happens-before edge between the accesses.  Ordering edges
  the sanitizer recognises: both warps in the same block with a
  barrier between the writes (different barrier epochs), or a common
  lock held at both write sites.  ``atomic_add`` is exempt by
  construction (it is not a plain store).
* **pin-leak** - page references still held when the warp exits:
  ``gmmap`` without a matching ``gmunmap`` (or an over-release), or an
  :class:`~repro.core.apointer.APtr` with linked lanes that was never
  ``destroy()``-ed.  Leaked pins make pages unevictable forever - the
  failure mode of the paper's reference-counted page cache.

The sanitizer never yields requests of its own, so enabling it is
timing-neutral: simulated cycle counts are identical with and without
it (asserted by the test suite).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.gpu.kernel import WarpContext

#: Bound on the torn-write history; beyond it the oldest records are
#: dropped (and counted), trading completeness for memory.
MAX_WRITE_HISTORY = 4096


@dataclass(frozen=True)
class Violation:
    """One invariant break, structured for programmatic assertion."""

    invariant: str          # "lockstep" | "torn-write" | "pin-leak"
    block_id: int
    warp_id: int
    message: str
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "block_id": self.block_id,
            "warp_id": self.warp_id,
            "message": self.message,
            "details": self.details,
        }


@dataclass
class SanitizerStats:
    """Numeric counters exported as the ``sanitizer`` profile component."""

    warps_watched: int = 0
    stores_checked: int = 0
    barriers_observed: int = 0
    lockstep_violations: int = 0
    torn_writes: int = 0
    pin_leaks: int = 0
    dropped_writes: int = 0


@dataclass
class _Write:
    """One recorded global-memory store for race checking."""

    block: object           # BlockContext identity (never dereferenced)
    block_id: int
    warp_id: int
    epoch: int
    locks: frozenset
    addrs: np.ndarray       # int64 start addresses, active lanes only
    width: int
    lo: int
    hi: int                 # exclusive byte bound
    now: float


class Sanitizer:
    """Watches every warp of every launch on one device."""

    def __init__(self, max_write_history: int = MAX_WRITE_HISTORY):
        self.stats = SanitizerStats()
        self.violations: list[Violation] = []
        self._writes: deque[_Write] = deque()
        self._max_writes = max_write_history
        #: id(BlockContext) -> (block ref, barrier count of its
        #: first-exited warp).  The reference pins the id against
        #: reuse while the sanitizer outlives the launch.
        self._exit_barriers: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Launch integration (called by Device.launch_cfg)
    # ------------------------------------------------------------------
    def begin_launch(self) -> None:
        """Reset cross-warp state; violations and stats accumulate.

        Happens-before only exists *within* a launch (launches on one
        device are serialized), so write records and barrier-count
        expectations must not carry over or sequential launches
        touching the same buffers would report phantom races.
        """
        self._writes.clear()
        self._exit_barriers.clear()

    def make_context(self, spec, memory, block, warp_in_block,
                     tracer=None) -> "SanitizedWarpContext":
        ctx = SanitizedWarpContext(spec, memory, block, warp_in_block,
                                   tracer=tracer)
        ctx.sanitizer = self
        return ctx

    def watch(self, gen, ctx: "SanitizedWarpContext"):
        """Pass-through driver: forwards every request and return value
        untouched, then runs the warp's exit checks."""
        self.stats.warps_watched += 1
        value = None
        while True:
            try:
                request = gen.send(value)
            except StopIteration as stop:
                self._on_exit(ctx)
                return stop.value
            value = yield request

    # ------------------------------------------------------------------
    # Hooks from SanitizedWarpContext / APtr / GPUfs
    # ------------------------------------------------------------------
    def note_store(self, ctx: "SanitizedWarpContext", addrs: np.ndarray,
                   width: int, mask) -> None:
        # Scalar ops (store_scalar) issue a length-1 address vector
        # that does not line up with the 32-lane masks; only apply a
        # mask whose shape matches.
        vec = np.asarray(addrs, dtype=np.int64).ravel()
        keep = np.ones(vec.shape, dtype=bool)
        if ctx.active.shape == vec.shape:
            keep &= ctx.active
        if mask is not None:
            m = np.asarray(mask, dtype=bool)
            if m.shape == vec.shape:
                keep &= m
        lanes = vec[keep]
        if lanes.size == 0:
            return
        self.stats.stores_checked += 1
        rec = _Write(
            block=ctx.block, block_id=ctx.block_id,
            warp_id=ctx.warp_id, epoch=ctx._san_epoch,
            locks=frozenset(ctx._san_held), addrs=lanes, width=width,
            lo=int(lanes.min()), hi=int(lanes.max()) + width,
            now=ctx.now)
        for prior in self._writes:
            if prior.warp_id == rec.warp_id:
                continue        # program order within a warp
            if prior.block is rec.block and prior.epoch != rec.epoch:
                continue        # a barrier separates the writes
            if prior.locks & rec.locks:
                continue        # both held a common lock
            if prior.hi <= rec.lo or rec.hi <= prior.lo:
                continue        # disjoint byte ranges (fast path)
            if not _byte_overlap(prior, rec):
                continue
            self.stats.torn_writes += 1
            self._report(
                "torn-write", ctx,
                f"warp {rec.warp_id} and warp {prior.warp_id} wrote "
                f"overlapping global memory "
                f"[{max(rec.lo, prior.lo)}, {min(rec.hi, prior.hi)}) "
                f"with no barrier or common lock between the accesses",
                other_warp=prior.warp_id,
                addr_lo=max(rec.lo, prior.lo),
                addr_hi=min(rec.hi, prior.hi),
                epoch=rec.epoch, other_epoch=prior.epoch)
            break               # one violation per store is enough
        if len(self._writes) >= self._max_writes:
            self._writes.popleft()
            self.stats.dropped_writes += 1
        self._writes.append(rec)

    def note_barrier(self, ctx: "SanitizedWarpContext") -> None:
        self.stats.barriers_observed += 1
        ctx._san_epoch += 1

    def note_lock(self, ctx: "SanitizedWarpContext", lock) -> None:
        ctx._san_held.add(id(lock))

    def note_unlock(self, ctx: "SanitizedWarpContext", lock) -> None:
        ctx._san_held.discard(id(lock))

    def note_pin(self, ctx, file_id: int, fpn: int) -> None:
        key = (file_id, fpn)
        pins = ctx._san_pins
        pins[key] = pins.get(key, 0) + 1

    def note_unpin(self, ctx, file_id: int, fpn: int) -> None:
        key = (file_id, fpn)
        pins = ctx._san_pins
        pins[key] = pins.get(key, 0) - 1
        if pins[key] == 0:
            del pins[key]

    def register_aptr(self, ctx, aptr) -> None:
        ctx._san_aptrs.append(aptr)

    # ------------------------------------------------------------------
    # Exit checks
    # ------------------------------------------------------------------
    def _on_exit(self, ctx: "SanitizedWarpContext") -> None:
        # Lockstep: all warps of a block pass the same barrier count.
        _, expected = self._exit_barriers.setdefault(
            id(ctx.block), (ctx.block, ctx._san_epoch))
        if ctx._san_epoch != expected:
            self.stats.lockstep_violations += 1
            self._report(
                "lockstep", ctx,
                f"warp {ctx.warp_id} exited after {ctx._san_epoch} "
                f"barrier(s) but a sibling warp of block "
                f"{ctx.block_id} exited after {expected} - the block "
                f"left barrier lockstep",
                barriers=ctx._san_epoch, expected=expected)
        # Pin balance: gmmap/gmunmap ledger must be empty.
        if ctx._san_pins:
            self.stats.pin_leaks += 1
            leaked = {f"{fid}:{fpn}": count
                      for (fid, fpn), count in sorted(ctx._san_pins.items())}
            self._report(
                "pin-leak", ctx,
                f"warp {ctx.warp_id} exited holding unbalanced page "
                f"pins {leaked} - gmmap without matching gmunmap "
                f"(negative counts are over-releases)",
                pins=leaked)
        # Apointer balance: linked lanes at exit mean destroy() never
        # ran - the page references can never be dropped.
        for aptr in ctx._san_aptrs:
            if aptr.valid.any():
                self.stats.pin_leaks += 1
                self._report(
                    "pin-leak", ctx,
                    f"warp {ctx.warp_id} exited with an apointer "
                    f"still linked ({int(aptr.valid.sum())} lane(s)) "
                    f"- missing 'yield from ptr.destroy(ctx)'",
                    linked_lanes=int(aptr.valid.sum()),
                    base_offset=aptr.base_offset)

    def _report(self, invariant: str, ctx, message: str,
                **details) -> None:
        self.violations.append(Violation(
            invariant=invariant, block_id=ctx.block_id,
            warp_id=ctx.warp_id, message=message, details=details))

    # ------------------------------------------------------------------
    def by_invariant(self, invariant: str) -> list[Violation]:
        return [v for v in self.violations if v.invariant == invariant]


def _byte_overlap(a: _Write, b: _Write) -> bool:
    """Exact per-lane extent intersection (the range test prefilters)."""
    starts_a, starts_b = a.addrs[:, None], b.addrs[None, :]
    return bool(np.any((starts_a < starts_b + b.width)
                       & (starts_b < starts_a + a.width)))


class SanitizedWarpContext(WarpContext):
    """A :class:`WarpContext` that reports to a :class:`Sanitizer`.

    Only observation points are overridden; every operation delegates
    to the base class unchanged, so timing is identical to an
    unsanitized run.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._san_epoch = 0
        self._san_held: set[int] = set()
        self._san_pins: dict = {}
        self._san_aptrs: list = []

    def store(self, addrs, values, dtype="f4", mask=None):
        vec = self._addr_vec(addrs)
        self.sanitizer.note_store(
            self, vec, int(np.dtype(dtype).itemsize), mask)
        return (yield from super().store(vec, values, dtype, mask=mask))

    def store_wide(self, addrs, values, dtype="f4", mask=None):
        vec = self._addr_vec(addrs)
        width = int(np.dtype(dtype).itemsize) \
            * int(np.asarray(values).shape[1])
        self.sanitizer.note_store(self, vec, width, mask)
        return (yield from super().store_wide(vec, values, dtype,
                                              mask=mask))

    def syncthreads(self):
        result = yield from super().syncthreads()
        self.sanitizer.note_barrier(self)
        return result

    def lock(self, lock):
        result = yield from super().lock(lock)
        self.sanitizer.note_lock(self, lock)
        return result

    def unlock(self, lock):
        result = yield from super().unlock(lock)
        self.sanitizer.note_unlock(self, lock)
        return result
