"""SARIF 2.1.0 export for ``repro-lint`` findings.

SARIF is the interchange format GitHub code scanning ingests: the CI
kernel-lint job runs ``repro-lint --sarif lint.sarif`` and uploads the
file, so findings annotate pull-request diffs instead of hiding in a
job log.  Only the small subset code scanning actually reads is
emitted: tool metadata with the rule registry, one ``result`` per
finding with a physical location (SARIF columns are 1-based; the
linter's are 0-based AST offsets, hence the ``+ 1``), and the
baseline fingerprint under ``partialFingerprints`` so the ratchet and
the UI agree on identity.
"""

from __future__ import annotations

import json

from repro.analysis.baseline import fingerprint
from repro.analysis.model import RULES, Finding

SARIF_VERSION = "2.1.0"
_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")

#: Rules whose findings block the build outright; everything else is
#: a warning (the baseline ratchet decides what actually fails CI).
_ERROR_RULES = frozenset({"parse-error"})


def to_sarif(findings: list[Finding],
             errors: list | None = None) -> dict:
    rule_ids = sorted({f.rule for f in findings} | set(RULES))
    results = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col,
                                             f.rule)):
        results.append({
            "ruleId": f.rule,
            "level": "error" if f.rule in _ERROR_RULES else "warning",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {
                        "startLine": max(1, f.line),
                        "startColumn": f.col + 1,
                    },
                },
                "logicalLocations": [{
                    "fullyQualifiedName": f.function,
                }] if f.function else [],
            }],
            "partialFingerprints": {
                "reproLint/v1": fingerprint(f),
            },
        })
    invocation = {"executionSuccessful": True}
    if errors:
        invocation["toolExecutionNotifications"] = [
            {"level": "error", "message": {"text": msg},
             "locations": [{"physicalLocation": {
                 "artifactLocation": {"uri": path}}}]}
            for path, msg in errors]
    return {
        "$schema": _SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri":
                    "https://example.invalid/repro-lint",
                "rules": [{
                    "id": rid,
                    "shortDescription": {
                        "text": RULES.get(rid, rid)},
                } for rid in rule_ids],
            }},
            "invocations": [invocation],
            "results": results,
        }],
    }


def write(path: str, findings: list[Finding],
          errors: list | None = None) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_sarif(findings, errors), fh, indent=2)
        fh.write("\n")
