"""The image-collage application of §VI-E.

Replaces blocks of an input image with the most "similar" images from a
large dataset, where similarity is the Euclidean distance between image
color histograms, and candidate images are found through
Locality-Sensitive Hashing (LSH).

Four implementations (:mod:`repro.collage.runners`) reproduce Figure 9:

1. **CPU-only** — 12 cores with 256-bit AVX (analytic CPU timing model);
2. **CPU+GPU** — the GPU computes LSH keys, the CPU gathers candidate
   histograms and ships them over PCIe, the GPU searches;
3. **GPUfs** — everything on the GPU, candidates read through the
   page-cache ``gmmap`` API;
4. **GPUfs + ActivePointers** — the whole dataset file mapped into GPU
   memory with ``gvmmap`` and accessed through apointers.

All four produce identical collages (verified against a numpy
reference).  The 80-million-tiny-images dataset is replaced by a seeded
synthetic generator (:mod:`repro.collage.dataset`) with the same layout:
one histogram per 4 KB page (or unaligned 3 KB records for the §VI-E
unaligned-access experiment) — see DESIGN.md for the substitution note.
"""

from repro.collage.histogram import (
    HIST_BINS,
    HIST_FLOATS,
    block_histograms,
    histogram_of_block,
)
from repro.collage.lsh import LSHIndex, LSHParams
from repro.collage.dataset import CollageDataset, DatasetParams
from repro.collage.collage import (
    CollageProblem,
    CollageResult,
    make_problem,
    reference_solution,
)
from repro.collage.runners import (
    RunOutcome,
    run_cpu,
    run_cpu_gpu,
    run_gpufs,
    run_gpufs_apointers,
)

__all__ = [
    "HIST_BINS",
    "HIST_FLOATS",
    "block_histograms",
    "histogram_of_block",
    "LSHIndex",
    "LSHParams",
    "CollageDataset",
    "DatasetParams",
    "CollageProblem",
    "CollageResult",
    "make_problem",
    "reference_solution",
    "RunOutcome",
    "run_cpu",
    "run_cpu_gpu",
    "run_gpufs",
    "run_gpufs_apointers",
]
