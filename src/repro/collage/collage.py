"""The collage problem definition and its numpy reference solution.

A *problem* is an input image (synthetic, with controllable block
diversity — the data-reuse knob of Figure 9) plus a dataset.  The
*solution* is, per 32x32 input block, the id of the dataset image whose
histogram is nearest (L2) among the block's LSH candidates.  Every
runner in :mod:`repro.collage.runners` must reproduce
:func:`reference_solution` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.collage.dataset import CollageDataset
from repro.collage.histogram import (
    BLOCK_SIDE,
    block_histograms,
    euclidean_distances,
)


@dataclass
class CollageProblem:
    """One Figure 9 input: an image over a dataset."""

    name: str
    image: np.ndarray                  # (H, W, 3) uint8
    dataset: CollageDataset
    block_hists: np.ndarray = field(init=False)
    candidates: list = field(init=False)

    def __post_init__(self):
        self.block_hists = block_histograms(self.image)
        self.candidates = [self.dataset.candidates_for(h)
                           for h in self.block_hists]

    @property
    def num_blocks(self) -> int:
        return len(self.block_hists)

    def total_candidate_refs(self) -> int:
        return int(sum(c.size for c in self.candidates))

    def unique_candidates(self) -> int:
        if not self.candidates:
            return 0
        return int(np.unique(np.concatenate(self.candidates)).size)

    def data_reuse(self) -> float:
        """Candidate references per unique candidate (Figure 9 labels)."""
        uniq = self.unique_candidates()
        return self.total_candidate_refs() / uniq if uniq else 0.0


@dataclass
class CollageResult:
    """Chosen dataset image per block."""

    choices: np.ndarray

    def __eq__(self, other) -> bool:  # pragma: no cover - convenience
        return np.array_equal(self.choices, other.choices)


def make_problem(dataset: CollageDataset, *, name: str = "input",
                 blocks_x: int = 16, blocks_y: int = 16,
                 cluster_spread: int = 8,
                 seed: int = 5) -> CollageProblem:
    """Generate a synthetic input image.

    ``cluster_spread`` controls how many dataset clusters the image's
    blocks resemble: few clusters mean many visually similar blocks and
    therefore high data reuse — the paper observes that "in larger
    images more visually similar blocks are available".
    """
    rng = np.random.RandomState(seed)
    p = dataset.params
    spread = min(cluster_spread, p.num_clusters)
    h, w = blocks_y * BLOCK_SIDE, blocks_x * BLOCK_SIDE
    image = np.empty((h, w, 3), dtype=np.uint8)
    chosen = rng.randint(0, spread, size=blocks_y * blocks_x)
    for b, cluster in enumerate(chosen):
        by, bx = divmod(b, blocks_x)
        block = _block_from_center(dataset.centers[cluster], rng)
        image[by * BLOCK_SIDE:(by + 1) * BLOCK_SIDE,
              bx * BLOCK_SIDE:(bx + 1) * BLOCK_SIDE] = block
    return CollageProblem(name=name, image=image, dataset=dataset)


def _block_from_center(center: np.ndarray, rng) -> np.ndarray:
    """Sample a 32x32 RGB block whose histogram resembles ``center``."""
    block = np.empty((BLOCK_SIDE, BLOCK_SIDE, 3), dtype=np.uint8)
    pixels = BLOCK_SIDE * BLOCK_SIDE
    for c in range(3):
        weights = center[c * 256:(c + 1) * 256].astype(np.float64)
        weights = weights + 1e-9
        weights /= weights.sum()
        vals = rng.choice(256, size=pixels, p=weights)
        block[:, :, c] = vals.reshape(BLOCK_SIDE, BLOCK_SIDE)
    return block


def reference_solution(problem: CollageProblem) -> CollageResult:
    """Exhaustive numpy search among each block's LSH candidates."""
    dataset = problem.dataset
    choices = np.empty(problem.num_blocks, dtype=np.int64)
    for b, (query, cands) in enumerate(zip(problem.block_hists,
                                           problem.candidates)):
        if cands.size == 0:
            choices[b] = -1
            continue
        dists = euclidean_distances(query, dataset.histograms[cands])
        choices[b] = cands[int(np.argmin(dists))]
    return CollageResult(choices=choices)
