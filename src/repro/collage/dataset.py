"""Synthetic image-histogram dataset, standing in for 80M tiny images.

The paper stores pre-computed color histograms of 10 million images in a
40 GB file, one 4 KB-padded histogram per image, grouped in buckets by
their LSH keys.  We generate a scaled-down equivalent with the same
structure and statistics that matter:

* **Clustered content** — histograms are drawn around a set of cluster
  centres, so LSH buckets have realistic, skewed occupancy and nearby
  queries share candidates (the data-reuse effect Figure 9's inputs
  vary).
* **Bucket-ordered layout** — the file stores histograms grouped by
  their primary-table LSH bucket, and a directory maps each image id to
  its record offset, exactly what the GPU kernels need for candidate
  lookups.
* **Aligned and unaligned variants** — records padded to one 4 KB page,
  or packed back-to-back at 3 KB (the §VI-E unaligned experiment).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.collage.histogram import (
    HIST_BYTES,
    HIST_BYTES_PADDED,
    HIST_FLOATS,
)
from repro.collage.lsh import LSHIndex, LSHParams


@dataclass(frozen=True)
class DatasetParams:
    """Shape of the synthetic dataset."""

    num_images: int = 8192
    num_clusters: int = 64
    pixels_per_image: int = 1024      # histogram mass (32x32 images)
    noise: float = 0.25
    aligned: bool = True              # 4 KB records vs packed 3 KB
    seed: int = 42

    @property
    def record_bytes(self) -> int:
        return HIST_BYTES_PADDED if self.aligned else HIST_BYTES


class CollageDataset:
    """Histogram dataset plus LSH index and file layout."""

    def __init__(self, params: DatasetParams = DatasetParams(),
                 lsh_params: LSHParams = LSHParams()):
        self.params = params
        rng = np.random.RandomState(params.seed)
        self.centers = self._make_centers(rng)
        self.histograms = self._make_histograms(rng)
        self.lsh = LSHIndex(lsh_params)
        self.lsh.build(self.histograms)
        self.order = self._bucket_order()
        #: record index of image id in the file
        self.position_of = np.empty(params.num_images, dtype=np.int64)
        self.position_of[self.order] = np.arange(params.num_images)

    # ------------------------------------------------------------------
    def _make_centers(self, rng) -> np.ndarray:
        p = self.params
        centers = rng.dirichlet(np.ones(HIST_FLOATS) * 0.05,
                                size=p.num_clusters)
        return centers * p.pixels_per_image * 3

    def _make_histograms(self, rng) -> np.ndarray:
        p = self.params
        assignment = rng.randint(0, p.num_clusters, size=p.num_images)
        base = self.centers[assignment]
        noise = rng.normal(0, p.noise, size=base.shape) * (base + 1.0)
        hists = np.maximum(base + noise, 0.0)
        return hists.astype(np.float32)

    def _bucket_order(self) -> np.ndarray:
        """Image ids ordered by their primary-table bucket (file order)."""
        table0 = self.lsh.buckets[0]
        order = []
        for key in sorted(table0):
            order.extend(int(i) for i in table0[key])
        return np.array(order, dtype=np.int64)

    # ------------------------------------------------------------------
    def file_bytes(self) -> np.ndarray:
        """The dataset file image: bucket-ordered records."""
        p = self.params
        rec = p.record_bytes
        out = np.zeros(p.num_images * rec, dtype=np.uint8)
        for pos, img in enumerate(self.order):
            raw = self.histograms[img].tobytes()
            out[pos * rec:pos * rec + len(raw)] = np.frombuffer(
                raw, dtype=np.uint8)
        return out

    def record_offset(self, image_id: int) -> int:
        """Byte offset of an image's histogram in the file."""
        return int(self.position_of[image_id]) * self.params.record_bytes

    @property
    def total_bytes(self) -> int:
        return self.params.num_images * self.params.record_bytes

    # ------------------------------------------------------------------
    def candidates_for(self, query: np.ndarray) -> np.ndarray:
        return self.lsh.candidates_for(query)

    def mean_candidates(self, queries: np.ndarray) -> float:
        return float(np.mean([self.candidates_for(q).size
                              for q in queries]))
