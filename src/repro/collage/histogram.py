"""Color histograms of image blocks.

Following the paper's dataset layout: a histogram has 256 bins per RGB
channel, 768 float32 values = 3072 bytes, padded to one 4 KB page in the
aligned dataset file (and stored back-to-back at 3 KB in the unaligned
variant).  Distance between histograms is plain Euclidean distance [20].
"""

from __future__ import annotations

import numpy as np

HIST_BINS = 256
CHANNELS = 3
HIST_FLOATS = HIST_BINS * CHANNELS           # 768 floats
HIST_BYTES = HIST_FLOATS * 4                 # 3072 B (the unaligned record)
HIST_BYTES_PADDED = 4096                     # one page (the aligned record)
BLOCK_SIDE = 32                              # 32x32 input blocks


def histogram_of_block(block: np.ndarray) -> np.ndarray:
    """Histogram of one ``(side, side, 3)`` uint8 image block."""
    if block.ndim != 3 or block.shape[2] != CHANNELS:
        raise ValueError(f"expected (h, w, 3) block, got {block.shape}")
    out = np.empty(HIST_FLOATS, dtype=np.float32)
    for c in range(CHANNELS):
        counts = np.bincount(block[:, :, c].ravel(), minlength=HIST_BINS)
        out[c * HIST_BINS:(c + 1) * HIST_BINS] = counts[:HIST_BINS]
    return out


def block_histograms(image: np.ndarray,
                     block_side: int = BLOCK_SIDE) -> np.ndarray:
    """Histograms of every ``block_side`` square block of an image.

    The image is cropped to whole blocks.  Returns shape
    ``(num_blocks, HIST_FLOATS)``.
    """
    h, w = image.shape[0] // block_side, image.shape[1] // block_side
    if h == 0 or w == 0:
        raise ValueError("image smaller than one block")
    hists = np.empty((h * w, HIST_FLOATS), dtype=np.float32)
    for by in range(h):
        for bx in range(w):
            block = image[by * block_side:(by + 1) * block_side,
                          bx * block_side:(bx + 1) * block_side]
            hists[by * w + bx] = histogram_of_block(block)
    return hists


def euclidean_distances(query: np.ndarray,
                        candidates: np.ndarray) -> np.ndarray:
    """L2 distances from one query histogram to each candidate row."""
    diff = candidates.astype(np.float64) - query.astype(np.float64)
    return np.sqrt((diff * diff).sum(axis=1))
