"""Locality-Sensitive Hashing for L2 distance (p-stable projections).

The scheme of Datar et al. [21], as used by the paper: each of ``tables``
hash tables concatenates ``projections`` quantised random projections
``floor((v . a + b) / w)`` into one bucket key.  Near histograms collide
with high probability, so the exhaustive search is narrowed to the
candidates sharing a bucket with the query.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.collage.histogram import HIST_FLOATS


@dataclass(frozen=True)
class LSHParams:
    """Hash family parameters."""

    tables: int = 4            # L independent hash tables
    projections: int = 4       # k projections concatenated per key
    bucket_width: float = 600.0  # w: quantisation step
    seed: int = 1701


class LSHIndex:
    """LSH index over a fixed set of histograms."""

    def __init__(self, params: LSHParams = LSHParams(),
                 dim: int = HIST_FLOATS):
        self.params = params
        self.dim = dim
        rng = np.random.RandomState(params.seed)
        self._a = rng.normal(size=(params.tables, params.projections, dim)
                             ).astype(np.float64)
        self._b = rng.uniform(0, params.bucket_width,
                              size=(params.tables, params.projections))
        self.buckets: list[dict[tuple, np.ndarray]] = [
            {} for _ in range(params.tables)]

    # ------------------------------------------------------------------
    def keys_for(self, vectors: np.ndarray) -> list[list[tuple]]:
        """Bucket keys of each vector in each table.

        Returns ``keys[i][t]`` — the key of vector *i* in table *t*.
        """
        vectors = np.atleast_2d(vectors).astype(np.float64)
        all_keys: list[list[tuple]] = [[] for _ in range(len(vectors))]
        for t in range(self.params.tables):
            proj = vectors @ self._a[t].T + self._b[t]
            quant = np.floor(proj / self.params.bucket_width).astype(np.int64)
            for i, row in enumerate(quant):
                all_keys[i].append(tuple(row))
        return all_keys

    def build(self, vectors: np.ndarray) -> None:
        """Index ``vectors`` (row *i* gets id *i*)."""
        keys = self.keys_for(vectors)
        staging: list[dict[tuple, list[int]]] = [
            {} for _ in range(self.params.tables)]
        for i, per_table in enumerate(keys):
            for t, key in enumerate(per_table):
                staging[t].setdefault(key, []).append(i)
        for t in range(self.params.tables):
            self.buckets[t] = {k: np.array(v, dtype=np.int64)
                               for k, v in staging[t].items()}

    def candidates_for(self, vector: np.ndarray) -> np.ndarray:
        """Ids sharing a bucket with ``vector`` in any table (deduped)."""
        keys = self.keys_for(vector[None, :])[0]
        found = [self.buckets[t].get(key, _EMPTY)
                 for t, key in enumerate(keys)]
        return np.unique(np.concatenate(found))

    def bucket_sizes(self) -> np.ndarray:
        """Sizes of every non-empty bucket across all tables."""
        return np.array([len(v) for table in self.buckets
                         for v in table.values()])

    # Cost accounting (used by the timing models): flops to hash one
    # vector across all tables.
    def hash_flops(self) -> float:
        return 2.0 * self.params.tables * self.params.projections * self.dim


_EMPTY = np.empty(0, dtype=np.int64)
