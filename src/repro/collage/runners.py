"""The four collage implementations of Figure 9.

Every runner returns a :class:`RunOutcome` with wall time (simulated)
and the chosen image ids, which must match the numpy reference — the
implementations differ only in *where* work happens and *how* the
dataset is accessed:

* :func:`run_cpu` — 12-core AVX CPU (analytic timing model);
* :func:`run_cpu_gpu` — GPU computes LSH keys, CPU gathers candidate
  histograms and ships them over PCIe, GPU searches (no GPUfs);
* :func:`run_gpufs` — single GPU kernel; candidates fetched through the
  GPUfs page cache with ``gmmap`` per record page;
* :func:`run_gpufs_apointers` — same kernel, but the whole dataset file
  is ``gvmmap``-ed once and walked with pointer arithmetic.

The GPU kernels assign one warp per input block; per-candidate work is a
histogram distance computed with 16-byte vector loads, matching the
structure the paper describes (all stages in one kernel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.collage.collage import CollageProblem, CollageResult
from repro.collage.histogram import HIST_BYTES, HIST_FLOATS
from repro.core import APConfig, AVM
from repro.gpu import Device
from repro.gpu.kernel import WarpContext
from repro.host import HostFileSystem
from repro.host.cpu import CPUSpec, HOST_CPU
from repro.host.ramfs import RamFS
from repro.paging import GPUfs, GPUfsConfig

#: Per-block fixed GPU work (instructions/warp): block histogram +
#: LSH key computation, derived from the operation counts.
HIST_INSTRS = 32 * 32 * 3 * 2 / 32          # bin increments
ARGMIN_INSTRS = 6
#: Dependent-op depth of the histogram + LSH key computation: the bin
#: reduction tree feeding the hash rounds serializes ~60 ops.
HIST_LSH_CHAIN = 60
#: Dependent-op depth of the 768-wide L2 distance reduction.
DISTANCE_CHAIN = 30

#: CPU-side post-processing (assembling the output collage) per block.
CPU_FINAL_SECONDS_PER_BLOCK = 2e-7


@dataclass
class RunOutcome:
    """Timing and result of one collage implementation."""

    name: str
    seconds: float
    choices: np.ndarray
    breakdown: dict = field(default_factory=dict)
    paging: Optional[dict] = None

    def per_block(self, problem: CollageProblem) -> float:
        return self.seconds / problem.num_blocks

    def matches(self, reference: CollageResult) -> bool:
        return bool(np.array_equal(self.choices, reference.choices))


# ----------------------------------------------------------------------
# Shared pieces
# ----------------------------------------------------------------------
def _lsh_instrs(problem: CollageProblem) -> float:
    """Warp instructions to hash one block's histogram on the GPU."""
    return problem.dataset.lsh.hash_flops() / 32.0


def _distance_instrs() -> float:
    """Warp instructions for one 768-float L2 distance plus reduction."""
    return HIST_FLOATS * 3 / 32.0 + 10


def _search_block(ctx, query, cand_ids, read_candidate):
    """Generator: exhaustive search among candidates for one block.

    ``read_candidate`` is a generator function returning the candidate's
    histogram as float32[768].
    """
    best_id, best_dist = -1, np.inf
    q = query.astype(np.float64)
    for cid in cand_ids:
        hist = yield from read_candidate(int(cid))
        ctx.charge(_distance_instrs(), chain=DISTANCE_CHAIN)
        diff = hist.astype(np.float64) - q
        dist = float(np.sqrt((diff * diff).sum()))
        ctx.charge(ARGMIN_INSTRS)
        if dist < best_dist:
            best_dist, best_id = dist, int(cid)
    return best_id


def _wide_reads_per_record() -> int:
    # 3072 bytes at 16 bytes/lane * 32 lanes = 512 B per access.
    return -(-HIST_BYTES // (16 * 32))


# ----------------------------------------------------------------------
# 1. CPU-only baseline (TBB + AVX on 12 cores)
# ----------------------------------------------------------------------
def run_cpu(problem: CollageProblem,
            cpu: CPUSpec = HOST_CPU) -> RunOutcome:
    """Analytic CPU timing + numpy compute (it *is* the reference)."""
    d = problem.dataset
    blocks = problem.num_blocks
    refs = problem.total_candidate_refs()

    hist_time = cpu.time_for(
        scalar_ops=blocks * 32 * 32 * 3 * 2,     # binning: scalar chase
        mem_bytes=blocks * 32 * 32 * 3)
    lsh_time = cpu.time_for(flops=blocks * d.lsh.hash_flops())
    search_time = cpu.time_for(
        flops=refs * HIST_FLOATS * 3,
        mem_bytes=refs * HIST_BYTES)
    final_time = blocks * CPU_FINAL_SECONDS_PER_BLOCK

    choices = np.empty(blocks, dtype=np.int64)
    for b, (query, cands) in enumerate(zip(problem.block_hists,
                                           problem.candidates)):
        if cands.size == 0:
            choices[b] = -1
            continue
        diffs = d.histograms[cands].astype(np.float64) - query
        choices[b] = cands[int(np.argmin((diffs * diffs).sum(axis=1)))]
    return RunOutcome(
        name="CPU",
        seconds=hist_time + lsh_time + search_time + final_time,
        choices=choices,
        breakdown={"hist": hist_time, "lsh": lsh_time,
                   "search": search_time, "final": final_time},
    )


# ----------------------------------------------------------------------
# 2. CPU + GPU without GPUfs
# ----------------------------------------------------------------------
def run_cpu_gpu(problem: CollageProblem,
                cpu: CPUSpec = HOST_CPU,
                warps_per_tb: int = 8,
                rounds: int = 4) -> RunOutcome:
    """GPU keys -> CPU gather -> PCIe -> GPU search, in chunked rounds.

    The paper's description: "the GPU computes the LSH keys, and the CPU
    then groups them, eliminates duplicates, reads the candidates from
    the dataset, and invokes the GPU to search among candidates."  The
    input is processed in ``rounds`` chunks sized to the GPU's staging
    capacity; the phases of one round serialise (kernel - copy - CPU -
    copy - kernel), which is the structural weakness Figure 9 exposes:
    cross-round data reuse cannot be exploited, the CPU's scattered
    dataset reads are random-access bound, and every round pays launch
    and transfer latencies.
    """
    d = problem.dataset
    device = Device(memory_bytes=max(256 * 1024 * 1024,
                                     d.total_bytes + 64 * 1024 * 1024))
    blocks = problem.num_blocks
    spec = device.spec
    lsh_instrs = _lsh_instrs(problem)
    image_base = device.alloc(blocks * HIST_BYTES)
    choices = np.full(blocks, -1, dtype=np.int64)
    kernel_launch_s = 10e-6
    total = 0.0
    breakdown = {"gpu_keys": 0.0, "pcie_keys": 0.0, "cpu_gather": 0.0,
                 "pcie_cands": 0.0, "gpu_search": 0.0, "launch": 0.0,
                 "final": 0.0}

    round_size = -(-blocks // rounds)
    for start in range(0, blocks, round_size):
        chunk = list(range(start, min(start + round_size, blocks)))

        # Phase 1 (GPU): histograms + LSH keys for this chunk.
        def keys_kernel(ctx: WarpContext):
            w = ctx.warp_id
            if w >= len(chunk):
                return
            b = chunk[w]
            for i in range(_wide_reads_per_record()):
                yield from ctx.load_wide(
                    image_base + b * HIST_BYTES + i * 512 + ctx.lane * 16,
                    "f4", 4)
            yield from ctx.compute(HIST_INSTRS + lsh_instrs,
                                   chain=HIST_LSH_CHAIN)

        grid = -(-len(chunk) // warps_per_tb)
        r1 = device.launch(keys_kernel, grid=grid,
                           block_threads=warps_per_tb * 32)

        # Keys to the host.
        keys_bytes = len(chunk) * d.lsh.params.tables * 8
        pcie_keys = spec.pcie_latency_s + keys_bytes / spec.pcie_bandwidth

        # CPU: group, dedup within the round, gather from the dataset.
        chunk_cands = [problem.candidates[b] for b in chunk]
        refs = int(sum(c.size for c in chunk_cands))
        uniq_ids = (np.unique(np.concatenate(chunk_cands))
                    if refs else np.empty(0, np.int64))
        cpu_gather = cpu.time_for(
            scalar_ops=refs * 40,
            random_mem_bytes=uniq_ids.size * HIST_BYTES,
            mem_bytes=uniq_ids.size * HIST_BYTES)
        payload = uniq_ids.size * HIST_BYTES + refs * 4
        pcie_cands = spec.pcie_latency_s + payload / spec.pcie_bandwidth

        # Stage candidates in GPU memory for the search kernel.
        device.memory.reset_allocator()
        device.alloc(blocks * HIST_BYTES)   # keep the image region
        cand_base = device.alloc(max(uniq_ids.size, 1) * HIST_BYTES)
        slot_of = {int(cid): i for i, cid in enumerate(uniq_ids)}
        for cid, slot in slot_of.items():
            device.memory.write(cand_base + slot * HIST_BYTES,
                                d.histograms[cid])

        # Phase 2 (GPU): exhaustive search for this chunk.
        def search_kernel(ctx: WarpContext):
            w = ctx.warp_id
            if w >= len(chunk):
                return
            b = chunk[w]

            def read_candidate(cid):
                base = cand_base + slot_of[cid] * HIST_BYTES
                parts = []
                for i in range(_wide_reads_per_record()):
                    ctx.charge(3)
                    part = yield from ctx.load_wide(
                        base + i * 512 + ctx.lane * 16, "f4", 4,
                        nonblocking=True)
                    parts.append(part.reshape(-1))
                yield from ctx.fence()
                return np.concatenate(parts)[:HIST_FLOATS]

            best = yield from _search_block(
                ctx, problem.block_hists[b], problem.candidates[b],
                read_candidate)
            choices[b] = best

        r2 = device.launch(search_kernel, grid=grid,
                           block_threads=warps_per_tb * 32)
        total += (r1.seconds + pcie_keys + cpu_gather + pcie_cands
                  + r2.seconds + 2 * kernel_launch_s)
        breakdown["gpu_keys"] += r1.seconds
        breakdown["pcie_keys"] += pcie_keys
        breakdown["cpu_gather"] += cpu_gather
        breakdown["pcie_cands"] += pcie_cands
        breakdown["gpu_search"] += r2.seconds
        breakdown["launch"] += 2 * kernel_launch_s

    final_time = blocks * CPU_FINAL_SECONDS_PER_BLOCK
    breakdown["final"] = final_time
    return RunOutcome(
        name="CPU+GPU",
        seconds=total + final_time,
        choices=choices,
        breakdown=breakdown,
    )


# ----------------------------------------------------------------------
# 3 & 4. GPUfs, with and without ActivePointers
# ----------------------------------------------------------------------
def _run_gpufs_common(problem: CollageProblem, *, use_apointers: bool,
                      page_cache_frames: Optional[int] = None,
                      warps_per_tb: int = 8,
                      team_warps: int = 4,
                      config: Optional[APConfig] = None) -> RunOutcome:
    d = problem.dataset
    blocks = problem.num_blocks
    record = d.params.record_bytes
    page = 4096
    # The paper's cache (2 GB of 12 GB) holds a fraction of the 40 GB
    # dataset; scale: default to half the unique working set so the
    # largest inputs overflow it, as in §VI-E.
    if page_cache_frames is None:
        uniq_pages = max(1, problem.unique_candidates() * record // page)
        page_cache_frames = max(64, uniq_pages // 2)
    fs = RamFS()
    fs.create("dataset", d.file_bytes())
    device = Device(memory_bytes=(page_cache_frames * page
                                  + 256 * 1024 * 1024))
    gpufs = GPUfs(device, HostFileSystem(fs),
                  GPUfsConfig(page_size=page,
                              num_frames=page_cache_frames))
    fid = gpufs.open("dataset")
    cfg = config if config is not None else APConfig()
    avm = AVM(cfg, gpufs=gpufs)
    lsh_instrs = _lsh_instrs(problem)
    image_base = device.alloc(blocks * HIST_BYTES)
    choices = np.full(blocks, -1, dtype=np.int64)
    wide = _wide_reads_per_record()
    # A *team* of warps shares one input block, splitting its candidate
    # list — large candidate sets would otherwise leave the GPU
    # latency-bound on one warp's serial chain.
    team = max(1, min(team_warps, warps_per_tb))
    blocks_per_tb = max(1, warps_per_tb // team)

    def kernel(ctx: WarpContext):
        slot = ctx.warp_in_block // team
        member = ctx.warp_in_block % team
        b = ctx.block_id * blocks_per_tb + slot
        shared = ctx.block.shared.setdefault("best", {})
        if b < blocks:
            if member == 0:
                # Stage 1: block histogram + LSH keys (input resident).
                for i in range(wide):
                    yield from ctx.load_wide(
                        image_base + b * HIST_BYTES + i * 512
                        + ctx.lane * 16, "f4", 4)
                yield from ctx.compute(HIST_INSTRS + lsh_instrs,
                                   chain=HIST_LSH_CHAIN)

            if use_apointers:
                ptr = avm.gvmmap(ctx, d.total_bytes, fid)

                def read_candidate(cid):
                    offset = d.record_offset(cid)
                    parts = []
                    yield from ptr.seek(ctx, offset + ctx.lane * 16)
                    for i in range(wide):
                        part = yield from ptr.read_wide(ctx, 4, "f4",
                                                        nonblocking=True)
                        parts.append(part.reshape(-1))
                        if i + 1 < wide:
                            yield from ptr.add(ctx, 512)
                    yield from ctx.fence()
                    return np.concatenate(parts)[:HIST_FLOATS]
            else:
                def read_candidate(cid):
                    # The gmmap path must handle records straddling page
                    # boundaries explicitly — the "significant code
                    # changes" the paper contrasts with apointers.
                    offset = d.record_offset(cid)
                    parts = []
                    mapped = []
                    first_page = offset // page
                    last_page = (offset + HIST_BYTES - 1) // page
                    addrs = {}
                    for p in range(first_page, last_page + 1):
                        addrs[p] = yield from gpufs.gmmap(ctx, fid,
                                                          p * page)
                        mapped.append(p)
                    for i in range(wide):
                        pos = offset + i * 512
                        p = pos // page
                        ctx.charge(4)
                        part = yield from ctx.load_wide(
                            addrs[p] + (pos % page) + ctx.lane * 16,
                            "f4", 4, nonblocking=True)
                        parts.append(part.reshape(-1))
                    yield from ctx.fence()
                    for p in mapped:
                        yield from gpufs.gmunmap(ctx, fid, p * page)
                    return np.concatenate(parts)[:HIST_FLOATS]

            my_cands = problem.candidates[b][member::team]
            best = yield from _search_block(
                ctx, problem.block_hists[b], my_cands, read_candidate)
            bd = float("inf")
            if best >= 0:
                q = problem.block_hists[b].astype(np.float64)
                diff = d.histograms[best].astype(np.float64) - q
                bd = float(np.sqrt((diff * diff).sum()))
            shared[(slot, member)] = (bd, best)
            yield from ctx.scratch(1)
            if use_apointers:
                yield from ptr.destroy(ctx)
        yield from ctx.syncthreads()
        if b < blocks and member == 0:
            ctx.charge(4 * team)
            yield from ctx.scratch(team)
            entries = [shared.get((slot, m), (float("inf"), -1))
                       for m in range(team)]
            choices[b] = min(entries)[1]

    grid = -(-blocks // blocks_per_tb)
    res = device.launch(kernel, grid=grid, block_threads=warps_per_tb * 32,
                        scratchpad_bytes=cfg.tlb_bytes())
    final_time = blocks * CPU_FINAL_SECONDS_PER_BLOCK
    name = "GPUfs+AP" if use_apointers else "GPUfs"
    return RunOutcome(
        name=name,
        seconds=res.seconds + final_time,
        choices=choices,
        breakdown={"gpu": res.seconds, "final": final_time},
        paging={"major": gpufs.stats.major_faults,
                "minor": gpufs.stats.minor_faults,
                "evictions": gpufs.cache.evictions,
                "frames": page_cache_frames},
    )


def run_gpufs(problem: CollageProblem, **kwargs) -> RunOutcome:
    """All stages on the GPU; candidates via ``gmmap`` (§VI-E item 3)."""
    return _run_gpufs_common(problem, use_apointers=False, **kwargs)


def run_gpufs_apointers(problem: CollageProblem, **kwargs) -> RunOutcome:
    """Whole dataset mapped via ``gvmmap`` and accessed through
    apointers (§VI-E item 4)."""
    return _run_gpufs_common(problem, use_apointers=True, **kwargs)
