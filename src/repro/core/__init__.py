"""ActivePointers: the paper's primary contribution.

A software address translation layer for GPUs.  An *active pointer*
(:class:`APtr`) behaves like a regular pointer — dereference, arithmetic,
assignment — but accesses *avirtual* memory: a contiguous address space
layered over scattered page-cache pages.  Under the hood it

* caches the avirtual-to-aphysical mapping of its current page in the
  pointer value itself (a hardware register), so linked accesses are
  page-fault free and need no table lookup;
* triggers page faults handled **on the GPU** by warp-level translation
  aggregation (deadlock-free leader election, Listing 1 of the paper);
* maintains per-page reference counts so the paging layer never evicts a
  page any linked apointer can reach (the fixed-mapping guarantee);
* optionally consults a per-threadblock software TLB that aggregates
  reference counts, sloppy-counter style.

Entry point: create an :class:`AVM` over a GPUfs instance (or over raw
device memory for fault-free microbenchmarks) and call
:meth:`AVM.gvmmap` from GPU code.
"""

from repro.core.config import APConfig, ImplVariant, PtrFormat
from repro.core.calibration import CostModel, cost_model_for
from repro.core.apointer import APtr, APtrState, ProtectionError
from repro.core.aarray import AArray
from repro.core.mmap import AVM, DirectBackend, GPUfsBackend
from repro.core.tlb import SoftwareTLB
from repro.core.metrics import APStats

__all__ = [
    "APConfig",
    "ImplVariant",
    "PtrFormat",
    "CostModel",
    "cost_model_for",
    "APtr",
    "AArray",
    "APtrState",
    "ProtectionError",
    "AVM",
    "DirectBackend",
    "GPUfsBackend",
    "SoftwareTLB",
    "APStats",
]
