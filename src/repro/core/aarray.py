"""AArray: a typed-array view over an active pointer.

The paper's pitch for memory-mapped files is the "intuitive pointer
interface" — and what most kernels actually want on top of a pointer is
array indexing.  :class:`AArray` wraps an :class:`~repro.core.apointer.
APtr` as an array of fixed-size elements:

    arr = AArray(ptr, dtype="f4")            # ptr from gvmmap
    vals = yield from arr.get(ctx, idx)      # idx per-lane or scalar
    yield from arr.set(ctx, idx, vals)
    row = yield from arr.get_block(ctx, base, 4)   # vectorised rows

Indexing seeks the underlying pointer, so page faults, reference
counting, and unaligned layouts all behave exactly as for raw apointer
code — this is sugar, not a new mechanism.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.apointer import APtr
from repro.gpu.kernel import WarpContext

#: Index-to-offset arithmetic (shift + add) per access.
INDEX_INSTRS = 2


class AArray:
    """Array of ``dtype`` elements over a mapped region."""

    def __init__(self, ptr: APtr, dtype: str = "f4",
                 offset: int = 0, length: Optional[int] = None):
        self.ptr = ptr
        self.dtype = dtype
        self.itemsize = int(np.dtype(dtype).itemsize)
        self.offset = int(offset)
        max_len = (ptr.size - self.offset) // self.itemsize
        self.length = max_len if length is None else int(length)
        if self.length < 0 or self.length > max_len:
            raise ValueError(
                f"length {length} exceeds the mapping "
                f"({max_len} elements available)")

    def __len__(self) -> int:
        return self.length

    # ------------------------------------------------------------------
    def _positions(self, ctx: WarpContext, index) -> np.ndarray:
        idx = np.asarray(index, dtype=np.int64)
        if idx.ndim == 0:
            idx = np.full(ctx.warp_size, int(idx), dtype=np.int64)
        if idx.size and (int(idx.min()) < 0
                         or int(idx.max()) >= self.length):
            raise IndexError(
                f"index out of range [0, {self.length}): "
                f"[{idx.min()}, {idx.max()}]")
        return self.offset + idx * self.itemsize

    # ------------------------------------------------------------------
    def get(self, ctx: WarpContext, index):
        """Timed: ``arr[index]`` — one element per lane.

        ``index`` may be a scalar (all lanes read the same element) or
        a per-lane vector.
        """
        ctx.charge(INDEX_INSTRS)
        yield from self.ptr.seek(ctx, self._positions(ctx, index))
        return (yield from self.ptr.read(ctx, self.dtype))

    def set(self, ctx: WarpContext, index, values):
        """Timed: ``arr[index] = values`` — one element per lane."""
        ctx.charge(INDEX_INSTRS)
        yield from self.ptr.seek(ctx, self._positions(ctx, index))
        yield from self.ptr.write(ctx, values, self.dtype)

    def get_block(self, ctx: WarpContext, base: int, elems_per_lane: int):
        """Timed: read ``32 * elems_per_lane`` consecutive elements
        starting at ``base``, one wide vector access per lane.  Returns
        shape ``(lanes, elems_per_lane)``."""
        if base < 0 or base + 32 * elems_per_lane > self.length:
            raise IndexError("block out of range")
        ctx.charge(INDEX_INSTRS)
        lane_base = base + ctx.lane * elems_per_lane
        yield from self.ptr.seek(ctx, self.offset
                                 + lane_base * self.itemsize)
        return (yield from self.ptr.read_wide(ctx, elems_per_lane,
                                              self.dtype))

    def set_block(self, ctx: WarpContext, base: int, values):
        """Timed: write ``(lanes, elems_per_lane)`` consecutive values
        starting at ``base``."""
        values = np.asarray(values)
        elems = values.shape[1]
        if base < 0 or base + 32 * elems > self.length:
            raise IndexError("block out of range")
        ctx.charge(INDEX_INSTRS)
        lane_base = base + ctx.lane * elems
        yield from self.ptr.seek(ctx, self.offset
                                 + lane_base * self.itemsize)
        yield from self.ptr.write_wide(ctx, values, self.dtype)

    # ------------------------------------------------------------------
    def view(self, offset_elems: int, length: Optional[int] = None
             ) -> "AArray":
        """A sub-array sharing the same pointer (like a slice)."""
        return AArray(self.ptr, self.dtype,
                      offset=self.offset + offset_elems * self.itemsize,
                      length=length)
