"""The ActivePointer: a pointer with software address translation.

An :class:`APtr` is a *warp-level* object holding per-lane pointer state,
matching how the real implementation lives in each thread's registers
while executing in SIMT lockstep.  Each lane has its own position, valid
bit, and cached aphysical address; lanes may point into different pages.

State machine (paper Figure 4):

* **uninitialized** — fresh object before a mapping is attached (here:
  construction via ``AVM.gvmmap`` initializes immediately);
* **unlinked** — the lane holds an xAddress (backing-store position);
  dereferencing triggers a page fault handled on the GPU;
* **linked** — the lane holds an aphysical address and a reference to an
  *active page* whose mapping cannot change; dereferencing is page-fault
  free and needs no table lookup.

Transitions: first access links (page fault); pointer arithmetic that
leaves the current page unlinks (proactively dropping the reference —
the paper's heuristic for keeping pinned pages few); assignment from
another apointer copies the position but stays unlinked; destruction
unlinks everything.

Page faults use the warp-level *translation aggregation* of Listing 1:
subgroups of lanes that fault on the same page elect a leader with
``__ballot``/``__ffs``, broadcast the backing address with ``__shfl``,
aggregate the reference count with ``__popc``, and the leader alone
touches shared data structures — which is what makes the handler
deadlock-free.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.core import translation as tr
from repro.core.calibration import CostModel, cost_model_for
from repro.core.config import APConfig, ImplVariant, PtrFormat
from repro.gpu import warp_primitives as wp
from repro.gpu.kernel import WarpContext


class APtrState(enum.Enum):
    UNINITIALIZED = "uninitialized"
    UNLINKED = "unlinked"
    LINKED = "linked"
    MIXED = "mixed"          # some lanes linked, some not


class ProtectionError(Exception):
    """An access violated the mapping's page permissions."""


class BoundsError(IndexError):
    """An access fell outside the mapped region."""


class APtr:
    """An active pointer over one mapped region (one per warp)."""

    def __init__(self, ctx: WarpContext, avm, backend, base_offset: int,
                 size: int, write: bool):
        # -- metadata (local memory; only touched on faults, §IV-A) --
        self.avm = avm
        self.backend = backend
        self.base_offset = int(base_offset)
        self.size = int(size)
        self.readable = True
        self.writable = bool(write)
        self.config: APConfig = avm.config
        self.cost: CostModel = cost_model_for(avm.config)
        n = ctx.warp_size
        # -- per-lane translation state (hardware registers) --
        self.pos = np.zeros(n, dtype=np.int64)
        self.valid = np.zeros(n, dtype=bool)
        self.frame_addr = np.zeros(n, dtype=np.int64)
        self.linked_xpage = np.full(n, -1, dtype=np.int64)
        self.tlb_backed = np.zeros(n, dtype=bool)
        # Whether each lane's link was established by a write fault; a
        # write through a read-only link must re-fault (the upgrade
        # fault that lets paging backends observe S->M transitions).
        self.linked_write = np.zeros(n, dtype=bool)
        if ctx.sanitizer is not None:
            ctx.sanitizer.register_aptr(ctx, self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def page_size(self) -> int:
        return self.backend.page_size

    @property
    def state(self) -> APtrState:
        if self.valid.all():
            return APtrState.LINKED
        if self.valid.any():
            return APtrState.MIXED
        return APtrState.UNLINKED

    def xpage_vec(self) -> np.ndarray:
        """Backing-store page number each lane currently points into."""
        return (self.base_offset + self.pos) // self.page_size

    def in_page_vec(self) -> np.ndarray:
        return (self.base_offset + self.pos) % self.page_size

    def encoded_word(self) -> np.ndarray:
        """The packed 64-bit translation field per lane (§IV-A)."""
        perms = tr.perm_bits(self.readable, self.writable)
        if self.config.fmt is PtrFormat.LONG:
            addr = np.where(self.valid,
                            self.frame_addr.astype(np.uint64),
                            (self.base_offset
                             + self.pos).astype(np.uint64))
            return tr.encode_long(self.valid, perms, addr)
        return tr.encode_short(self.valid, perms,
                               self.frame_addr.astype(np.uint64),
                               self.xpage_vec().astype(np.uint64))

    def clone(self, ctx: WarpContext) -> "APtr":
        """Assignment: the copy points at the same positions, *unlinked*
        (a fresh copy must not pin pages it may never touch, §III-C)."""
        twin = APtr(ctx, self.avm, self.backend, self.base_offset,
                    self.size, self.writable)
        twin.pos = self.pos.copy()
        return twin

    # ------------------------------------------------------------------
    # Pointer arithmetic
    # ------------------------------------------------------------------
    def add(self, ctx: WarpContext, delta):
        """Timed: advance each lane by ``delta`` bytes (scalar or
        per-lane).  Lanes that leave their linked page unlink, dropping
        their page references — the paper's proactive-decrement
        heuristic."""
        cm = self.cost
        ctx.charge(cm.arith_count + cm.fmt_extra_count,
                   chain=cm.arith_chain + cm.fmt_extra_chain,
                   tag="translation")
        self.avm.stats.arith_ops += 1
        new_pos = self.pos + np.asarray(delta, dtype=np.int64)
        new_xpage = (self.base_offset + new_pos) // self.page_size
        crossing = self.valid & (new_xpage != self.linked_xpage)
        self.pos = new_pos
        if crossing.any():
            yield from self._unlink(ctx, crossing)

    def seek(self, ctx: WarpContext, pos):
        """Timed: set each lane's absolute position in the mapping."""
        delta = np.asarray(pos, dtype=np.int64) - self.pos
        yield from self.add(ctx, delta)

    # ------------------------------------------------------------------
    # Dereference
    # ------------------------------------------------------------------
    def read(self, ctx: WarpContext, dtype: str = "f4",
             mask: Optional[np.ndarray] = None):
        """Timed: ``*ptr`` — load one ``dtype`` element per active lane."""
        width = int(np.dtype(dtype).itemsize)
        addrs = yield from self._deref(ctx, width, write=False, mask=mask)
        cm = self.cost
        self.avm.stats.reads += 1
        ctx.charge(cm.deref_count + cm.fmt_extra_count,
                   chain=cm.deref_chain + cm.fmt_extra_chain,
                   tag="translation")
        overlap, post = cm.deref_overlap, cm.deref_post
        if self.config.perm_checks:
            self.avm.stats.perm_checks += 1
            ctx.charge(cm.perm_count, chain=cm.perm_chain,
                       tag="translation")
            post += cm.perm_post
        return (yield from ctx.load(addrs, dtype, mask=mask,
                                    overlap_chain=overlap,
                                    post_chain=post,
                                    chain_tag="translation"))

    def read_wide(self, ctx: WarpContext, elems: int,
                  dtype: str = "f4",
                  mask: Optional[np.ndarray] = None,
                  nonblocking: bool = False):
        """Timed: vector dereference — ``elems`` consecutive elements per
        lane in one access (the 16-byte loads of §VI-B, which amortise
        the translation cost over more data).

        ``nonblocking`` overlaps the load with later work (memory-level
        parallelism); pair with ``ctx.fence()``.
        """
        width = int(np.dtype(dtype).itemsize) * elems
        addrs = yield from self._deref(ctx, width, write=False, mask=mask)
        cm = self.cost
        self.avm.stats.reads += 1
        ctx.charge(cm.deref_count + cm.fmt_extra_count + elems,
                   chain=cm.deref_chain + cm.fmt_extra_chain,
                   tag="translation")
        overlap, post = cm.deref_overlap, cm.deref_post
        if self.config.perm_checks:
            self.avm.stats.perm_checks += 1
            ctx.charge(cm.perm_count, chain=cm.perm_chain,
                       tag="translation")
            post += cm.perm_post
        return (yield from ctx.load_wide(addrs, dtype, elems, mask=mask,
                                         overlap_chain=overlap,
                                         post_chain=post,
                                         nonblocking=nonblocking,
                                         chain_tag="translation"))

    def write(self, ctx: WarpContext, values, dtype: str = "f4",
              mask: Optional[np.ndarray] = None):
        """Timed: ``*ptr = v`` — store one element per active lane."""
        width = int(np.dtype(dtype).itemsize)
        addrs = yield from self._deref(ctx, width, write=True, mask=mask)
        cm = self.cost
        self.avm.stats.writes += 1
        ctx.charge(cm.deref_count + cm.fmt_extra_count,
                   chain=cm.deref_chain + cm.fmt_extra_chain,
                   tag="translation")
        if self.config.perm_checks:
            self.avm.stats.perm_checks += 1
            ctx.charge(cm.perm_count, chain=cm.perm_chain + cm.perm_post,
                       tag="translation")
        yield from ctx.store(addrs, values, dtype, mask=mask)

    def write_wide(self, ctx: WarpContext, values, dtype: str = "f4",
                   mask: Optional[np.ndarray] = None):
        """Timed: vector store — ``values`` of shape (lanes, elems)
        written through one dereference per lane."""
        values = np.asarray(values)
        elems = values.shape[1]
        width = int(np.dtype(dtype).itemsize) * elems
        addrs = yield from self._deref(ctx, width, write=True, mask=mask)
        cm = self.cost
        self.avm.stats.writes += 1
        ctx.charge(cm.deref_count + cm.fmt_extra_count + elems,
                   chain=cm.deref_chain + cm.fmt_extra_chain,
                   tag="translation")
        if self.config.perm_checks:
            self.avm.stats.perm_checks += 1
            ctx.charge(cm.perm_count, chain=cm.perm_chain + cm.perm_post,
                       tag="translation")
        yield from ctx.store_wide(addrs, values, dtype, mask=mask)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def destroy(self, ctx: WarpContext):
        """Timed: drop all references (scope exit in Figure 3)."""
        if self.valid.any():
            yield from self._unlink(ctx, self.valid.copy())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _deref(self, ctx: WarpContext, width: int, write: bool,
               mask: Optional[np.ndarray]):
        active = ctx.active if mask is None else (ctx.active & mask)
        self.avm.stats.derefs += 1
        self._check_bounds(width, active)
        if write and not self.writable:
            raise ProtectionError("write through a read-only apointer")
        if write:
            # Upgrade fault: lanes linked read-only must re-fault so the
            # paging backend sees the write (dirty marking, coherence).
            upgrade = self.valid & ~self.linked_write & active
            if upgrade.any():
                yield from self._unlink(ctx, upgrade)
        # Joint valid-bit vote across the warp (one instruction): the
        # fault-free path has no divergent control flow.  Under
        # speculative prefetch the vote overlaps the memory access
        # (§IV-B), so it adds no serial latency.
        all_valid = wp.all_sync(self.valid, active)
        prefetching = self.config.variant is ImplVariant.PREFETCH
        ctx.charge(1, chain=0 if prefetching else 1, tag="translation")
        if not all_valid:
            yield from self._page_fault(ctx, active, write)
        elif write:
            self._mark_dirty(active)
        return self.frame_addr + self.in_page_vec()

    def _page_fault(self, ctx: WarpContext, active: np.ndarray,
                    write: bool):
        """Listing 1: aggregated, leader-driven fault handling."""
        cm = self.cost
        xpages = self.xpage_vec()
        faulting = (~self.valid) & active
        self.avm.stats.translation_faults += int(faulting.sum())
        t0 = ctx.now
        ctx.begin_request()
        try:
            ctx.push_activity("translation")
            try:
                while True:
                    ballot = wp.ballot(~self.valid, active)
                    ctx.charge(2)              # __ballot + __ffs
                    leader = wp.ffs(ballot) - 1
                    if leader < 0:
                        break
                    self.avm.stats.fault_groups += 1
                    # Broadcast the leader's backing-store address;
                    # lanes bound for the same page are handled
                    # together.
                    leader_xpage = int(wp.shfl(xpages, leader)[0])
                    same = ((~self.valid) & active
                            & (xpages == leader_xpage))
                    refs = wp.popc(wp.ballot(same))
                    ctx.charge(cm.fault_setup_count)
                    frame_addr, via_tlb = yield from self._resolve(
                        ctx, leader_xpage, refs, write)
                    self.frame_addr[same] = frame_addr
                    self.linked_xpage[same] = leader_xpage
                    self.tlb_backed[same] = via_tlb
                    self.linked_write[same] = write
                    self.valid |= same
                    ctx.charge(cm.fault_link_count)
                    self.avm.stats.links += refs
            finally:
                ctx.pop_activity()
            if ctx.tracer is not None:
                ctx.trace_span("translation_fault", t0, ctx.now,
                               f"lanes={int(faulting.sum())}")
        finally:
            ctx.end_request()
        if write:
            self._mark_dirty(active)

    def _resolve(self, ctx: WarpContext, xpage: int, refs: int,
                 write: bool):
        """Leader-only: obtain the frame address for one page.

        Consults the block TLB when configured; otherwise (or on a
        bypass) goes to the paging backend.  Returns
        ``(frame_addr, via_tlb)``.
        """
        backend = self.backend
        tlb = self.avm.tlb_for(ctx)
        if tlb is None or not getattr(backend, "paged", True):
            frame = yield from backend.fault(ctx, xpage, refs, write)
            return frame, False
        fid = backend.file_id
        frame = yield from tlb.lookup_and_ref(ctx, fid, xpage, refs)
        if frame is not None:
            return frame, True
        frame = yield from backend.fault(ctx, xpage, refs, write)
        ctx.push_activity("tlb_miss")
        try:
            installed, evicted = yield from tlb.install(
                ctx, fid, xpage, frame, refs)
            if evicted is not None:
                (_, old_xpage), held = evicted
                if held:
                    yield from backend.release(ctx, old_xpage, held)
        finally:
            ctx.pop_activity()
        return frame, installed

    def _unlink(self, ctx: WarpContext, mask: np.ndarray):
        """Drop references for ``mask`` lanes, grouped per page and per
        backing path (TLB-tracked vs. direct)."""
        cm = self.cost
        remaining = mask.copy()
        tlb = self.avm.tlb_for(ctx)
        while remaining.any():
            leader = int(np.argmax(remaining))
            xpage = int(self.linked_xpage[leader])
            via_tlb = bool(self.tlb_backed[leader])
            group = (remaining & (self.linked_xpage == xpage)
                     & (self.tlb_backed == via_tlb))
            refs = int(group.sum())
            ctx.charge(cm.fault_setup_count, tag="translation")
            if via_tlb and tlb is not None:
                found = yield from tlb.unref(
                    ctx, self.backend.file_id, xpage, refs)
                if not found:
                    raise RuntimeError(
                        "TLB-backed lane lost its TLB entry")
            else:
                yield from self.backend.release(ctx, xpage, refs)
            self.valid &= ~group
            self.tlb_backed &= ~group
            self.linked_write &= ~group
            self.avm.stats.unlinks += refs
            remaining &= ~group

    def _mark_dirty(self, active: np.ndarray) -> None:
        backend = self.backend
        gpufs = getattr(backend, "gpufs", None)
        if gpufs is None:
            return
        for xpage in np.unique(self.linked_xpage[active & self.valid]):
            entry = gpufs.cache.table.get(backend.file_id, int(xpage))
            if entry is not None:
                entry.dirty = True

    def _check_bounds(self, width: int, active: np.ndarray) -> None:
        pos = self.pos[active]
        if pos.size == 0:
            return
        if int(pos.min()) < 0 or int(pos.max()) + width > self.size:
            raise BoundsError(
                f"access at [{pos.min()}, {pos.max()} + {width}) outside "
                f"mapping of {self.size} bytes")
        in_page = (self.base_offset + pos) % self.page_size
        if int((in_page % width).max()) != 0:
            raise BoundsError(
                f"{width}-byte access not {width}-aligned "
                "(would straddle a page boundary)")
