"""Instruction-cost calibration of apointer operations.

Python cannot count SASS instructions, so the *number* of simulated
instructions each apointer code path costs is taken from the paper's own
measurements and SASS inspection (§VI-A):

* a raw pointer increment is **2** instructions, the apointer increment
  is **18** ("the most efficient apointer implementation uses 18
  instructions vs. only 2 for a simple pointer increment");
* one apointer access in the memcpy loop is about **105/4 ≈ 26-35**
  instructions ("the apointer access involves 105 instructions" for an
  iteration with two reads and two writes plus increments);
* the dependent-chain lengths are fitted once to reproduce Table I's
  latency column with the engine's latency model
  (``latency = 14 + 7.6 * chain + 195·[is-load]`` cycles) and are then
  used unchanged by every other experiment.

``chain`` is the dependent-instruction chain length (determines the
latency the issuing warp sees); ``count`` is the total instructions
issued (determines occupancy of the SM issue pipelines).  The prefetch
variant splits its chain into a part overlapped with the memory access
and a short post-load tail.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import APConfig, ImplVariant, PtrFormat


@dataclass(frozen=True)
class CostModel:
    """Instruction costs of one apointer implementation variant."""

    # Dereference of a linked apointer (valid-bit vote + address compose).
    deref_count: float        # instructions issued
    deref_chain: float        # serialized chain before the load
    deref_overlap: float      # chain overlapped with the load (prefetch)
    deref_post: float         # chain after the data arrives

    # Pointer arithmetic (+=, ++): boundary check + offset update.
    arith_count: float
    arith_chain: float

    # Page permission checking (added to the deref when enabled).
    perm_count: float
    perm_chain: float         # serialized (compiler/PTX)
    perm_post: float          # post-load (prefetch hides it, §VI-A)

    # Fault-path costs (per Listing 1 loop iteration, converged warp).
    fault_setup_count: float = 12.0
    fault_link_count: float = 10.0

    # Extra packing cost of the short format (two fields in one word).
    fmt_extra_count: float = 0.0
    fmt_extra_chain: float = 0.0


_RAW = CostModel(
    deref_count=2, deref_chain=2, deref_overlap=0, deref_post=0,
    arith_count=2, arith_chain=2,
    perm_count=0, perm_chain=0, perm_post=0,
)

_COMPILER = CostModel(
    deref_count=34, deref_chain=20, deref_overlap=0, deref_post=0,
    arith_count=18, arith_chain=18,
    perm_count=9, perm_chain=9, perm_post=0,
)

_OPTIMIZED_PTX = CostModel(
    deref_count=28, deref_chain=9, deref_overlap=0, deref_post=0,
    arith_count=18, arith_chain=18,
    perm_count=14, perm_chain=14, perm_post=0,
)

_PREFETCH = CostModel(
    deref_count=28, deref_chain=0, deref_overlap=9, deref_post=8,
    arith_count=18, arith_chain=18,
    perm_count=9, perm_chain=0, perm_post=2,
)

# §VII what-if: dedicated boundary-check/increment instructions and
# fused shuffle+arithmetic collapse the deref to a handful of
# instructions and the increment to a bounds-checked add.  Speculative
# prefetch is assumed retained.
_HW_ASSISTED = CostModel(
    deref_count=8, deref_chain=0, deref_overlap=3, deref_post=2,
    arith_count=4, arith_chain=4,
    perm_count=1, perm_chain=0, perm_post=1,
    fault_setup_count=8.0, fault_link_count=6.0,
)

_BY_VARIANT = {
    ImplVariant.COMPILER: _COMPILER,
    ImplVariant.OPTIMIZED_PTX: _OPTIMIZED_PTX,
    ImplVariant.PREFETCH: _PREFETCH,
    ImplVariant.HW_ASSISTED: _HW_ASSISTED,
}

#: Extra per-operation cost of the short format: packing/unpacking the
#: two sub-fields of the 64-bit word.
_SHORT_EXTRA_COUNT = 2.0
_SHORT_EXTRA_CHAIN = 1.0


def raw_cost_model() -> CostModel:
    """Cost of a plain C pointer (the baseline in every experiment)."""
    return _RAW


def cost_model_for(config: APConfig) -> CostModel:
    """The cost model selected by an :class:`APConfig`."""
    base = _BY_VARIANT[config.variant]
    if config.fmt is PtrFormat.SHORT:
        return CostModel(
            **{**base.__dict__,
               "fmt_extra_count": _SHORT_EXTRA_COUNT,
               "fmt_extra_chain": _SHORT_EXTRA_CHAIN})
    return base
