"""Configuration of the ActivePointers translation layer.

The paper evaluates several implementation variants and design
alternatives; :class:`APConfig` selects among them:

* ``variant`` — how aggressively the dereference path is optimised:
  the straightforward *compiler* code, the hand-tuned *optimized PTX*
  version, or PTX plus *speculative prefetching* (§IV-B, Table I);
* ``fmt`` — *long* apointers (one 60-bit field holding either an
  aphysical address or an xAddress) vs. *short* apointers (32-bit
  aphysical + 40-bit xAddress packed together), §IV-B;
* ``use_tlb`` / ``tlb_entries`` — the per-threadblock software TLB of
  §III-E / §IV-D, or the TLB-less design that the paper finds fastest;
* ``perm_checks`` — page permission checking on access (§VI-A measures
  its cost and then disables it, which is the default here too).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ImplVariant(enum.Enum):
    """Dereference code generation level (Table I rows).

    ``HW_ASSISTED`` is not in the paper's evaluation: it models the
    hardware extensions its Discussion proposes (§VII) — instructions
    for page-boundary checking and pointer increment, and fused
    shuffle+integer ops — as a what-if cost model.
    """

    COMPILER = "compiler"
    OPTIMIZED_PTX = "optimized_ptx"
    PREFETCH = "prefetching"
    HW_ASSISTED = "hw_assisted"


class PtrFormat(enum.Enum):
    """Translation-field layout (§IV-B design alternatives)."""

    LONG = "long"
    SHORT = "short"


@dataclass(frozen=True)
class APConfig:
    """Tunable knobs of the translation layer."""

    variant: ImplVariant = ImplVariant.PREFETCH
    fmt: PtrFormat = PtrFormat.LONG
    use_tlb: bool = False
    tlb_entries: int = 32
    perm_checks: bool = False

    def tlb_entry_bytes(self) -> int:
        """Per-entry TLB footprint (§IV-D): 12 B short / 20 B long,
        plus 4 B for the entry lock."""
        payload = 12 if self.fmt is PtrFormat.SHORT else 20
        return payload + 4

    def tlb_bytes(self) -> int:
        return self.tlb_entries * self.tlb_entry_bytes() if self.use_tlb \
            else 0
