"""Counters for the translation layer."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class APStats:
    """What the apointer layer did during a run.

    Faults here are *translation* faults (valid-bit misses); whether one
    is minor or major at the paging level is counted by
    :class:`repro.paging.PagingStats`.
    """

    derefs: int = 0
    reads: int = 0
    writes: int = 0
    arith_ops: int = 0
    translation_faults: int = 0
    fault_groups: int = 0          # Listing-1 loop iterations
    links: int = 0
    unlinks: int = 0
    tlb_hits: int = 0
    tlb_misses: int = 0
    tlb_bypasses: int = 0
    tlb_evictions: int = 0
    perm_checks: int = 0

    def tlb_hit_rate(self) -> float:
        total = self.tlb_hits + self.tlb_misses
        return self.tlb_hits / total if total else 0.0

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)
