"""Virtual memory management: gvmmap() and mapping backends.

:class:`AVM` (*active virtual memory*) is the management layer a GPU
program talks to: ``gvmmap`` maps a file region (through GPUfs) or a raw
device-memory region and returns an :class:`~repro.core.apointer.APtr`.

Two backends implement the paging side of a mapping:

* :class:`GPUfsBackend` — the real thing: faults go to the GPUfs page
  cache, pages are transferred from the host on major faults, and
  reference counts protect active pages (§V).
* :class:`DirectBackend` — a linear mapping over GPU global memory with
  no page cache.  Faults only re-derive the aphysical address.  This is
  the configuration of the paper's §VI-A/§VI-B microbenchmarks, which
  measure pure translation overhead "with apointers initialized to map a
  region in the GPU global memory" and GPUfs excluded.
"""

from __future__ import annotations

from typing import Optional

from repro.core.apointer import APtr
from repro.core.config import APConfig
from repro.core.metrics import APStats
from repro.core.tlb import SoftwareTLB
from repro.gpu.kernel import WarpContext
from repro.paging.gpufs import GPUfs, PROT_READ, PROT_WRITE
from repro.telemetry import hooks as telemetry_hooks

#: Instructions a direct-backend "fault" costs: recompute base + offset.
DIRECT_FAULT_INSTRS = 8


class DirectBackend:
    """Linear mapping over raw device memory (no page cache)."""

    def __init__(self, base: int, size: int, page_size: int = 4096):
        self.base = base
        self.size = size
        self.page_size = page_size
        self.file_id = -1            # no file behind this mapping
        self.paged = False           # no page cache: faults are address math
        self.minor_faults = 0

    def fault(self, ctx: WarpContext, xpage: int, refs: int, write: bool):
        """Timed: trivially resolve a page — address arithmetic only."""
        self.minor_faults += 1
        ctx.charge(DIRECT_FAULT_INSTRS)
        addr = self.base + xpage * self.page_size
        if addr >= self.base + self.size:
            raise ValueError(
                f"page {xpage} outside mapped region of {self.size} bytes")
        return addr
        yield  # pragma: no cover - generator marker

    def release(self, ctx: WarpContext, xpage: int, refs: int):
        """No reference counting for unpaged device memory."""
        return
        yield  # pragma: no cover - generator marker


class GPUfsBackend:
    """File mapping backed by the GPUfs page cache."""

    def __init__(self, gpufs: GPUfs, file_id: int, write: bool = False):
        self.gpufs = gpufs
        self.file_id = file_id
        self.page_size = gpufs.page_size
        self.paged = True
        self.writable = write

    def fault(self, ctx: WarpContext, xpage: int, refs: int, write: bool):
        """Timed: resolve through the page cache (minor or major)."""
        return (yield from self.gpufs.handle_fault(
            ctx, self.file_id, xpage, refs=refs, write=write))

    def release(self, ctx: WarpContext, xpage: int, refs: int):
        yield from self.gpufs.release_page(ctx, self.file_id, xpage,
                                           refs=refs)


class AVM:
    """Active virtual memory manager: creates and destroys apointers."""

    def __init__(self, config: APConfig = APConfig(),
                 gpufs: Optional[GPUfs] = None):
        self.config = config
        self.gpufs = gpufs
        self.stats = APStats()
        profiler = telemetry_hooks.current()
        if profiler is not None:
            profiler.register("translation", self.stats)

    # ------------------------------------------------------------------
    def gvmmap(self, ctx: WarpContext, size: int, fid: int,
               foffset: int = 0, write: bool = False,
               prot: Optional[int] = None) -> APtr:
        """Map ``size`` bytes of file ``fid`` at ``foffset``.

        Mirrors the paper's Figure 3: returns an initialized, *unlinked*
        apointer — the first dereference will fault.  Not timed beyond
        pointer construction: the mapping itself only records metadata.

        ``prot`` is a ``PROT_READ`` / ``PROT_WRITE`` bitmask; when
        omitted it is derived from the legacy ``write`` boolean.  A
        ``PROT_WRITE`` mapping requires the fd to be writable — checked
        here, at map time, not when write-back finally fails.
        """
        if self.gpufs is None:
            raise RuntimeError("this AVM has no GPUfs layer for files")
        if foffset % self.gpufs.page_size:
            raise ValueError("gvmmap offset must be page-aligned")
        if prot is None:
            prot = PROT_READ | (PROT_WRITE if write else 0)
        writable = bool(prot & PROT_WRITE)
        if writable and not self.gpufs.handle_for(fid).writable:
            raise ValueError(
                f"PROT_WRITE gvmmap of read-only fd {fid}")
        backend = GPUfsBackend(self.gpufs, fid, write=writable)
        return APtr(ctx, self, backend, base_offset=foffset, size=size,
                    write=writable)

    def gvmmap_device(self, ctx: WarpContext, base: int, size: int,
                      page_size: int = 4096, write: bool = True) -> APtr:
        """Map a raw device-memory region (microbenchmark backend)."""
        backend = DirectBackend(base, size, page_size)
        return APtr(ctx, self, backend, base_offset=0, size=size,
                    write=write)

    def map_backend(self, ctx: WarpContext, backend, size: int,
                    foffset: int = 0, write: bool = False) -> APtr:
        """Map through an arbitrary paging backend (e.g. DSM).

        The backend must provide ``page_size``, ``file_id``, and the
        timed ``fault``/``release`` generators.
        """
        if foffset % backend.page_size:
            raise ValueError("mapping offset must be page-aligned")
        return APtr(ctx, self, backend, base_offset=foffset, size=size,
                    write=write)

    def gvmunmap(self, ctx: WarpContext, aptr: APtr):
        """Timed: unlink the pointer and drop its references."""
        yield from aptr.destroy(ctx)

    # ------------------------------------------------------------------
    # TLB management (per threadblock)
    # ------------------------------------------------------------------
    def tlb_for(self, ctx: WarpContext) -> Optional[SoftwareTLB]:
        """The calling block's TLB (created on first use), or ``None``."""
        if not self.config.use_tlb:
            return None
        shared = ctx.block.shared
        if "ap_tlb" not in shared:
            shared["ap_tlb"] = SoftwareTLB(
                self.config.tlb_entries,
                self.config.tlb_entry_bytes(),
                ctx.block.scratchpad,
                stats=self.stats,
            )
        return shared["ap_tlb"]

    def drain_tlb(self, ctx: WarpContext, backend):
        """Timed: release the block TLB's cached global pins.

        Models the threadblock-teardown flush; benchmark kernels call it
        once per block before exiting.
        """
        tlb = ctx.block.shared.get("ap_tlb")
        if tlb is None:
            return
        released = yield from tlb.drain(ctx)
        for (file_id, xpage), held in released:
            if held:
                yield from backend.release(ctx, xpage, held)
