"""The per-threadblock software TLB (§III-E, §IV-D).

A direct-mapped hash table in the threadblock's scratchpad memory.
Besides cached ``(file page) -> frame address`` mappings, each entry
keeps a *threadblock-private* reference count, making the TLB a
reference-count aggregator for the block's threads (the sloppy-counter
optimisation the paper cites).

Semantics, following the paper's discussion of the TLB's complications:

* Reads are lock-free (one scratchpad access); modifications take the
  entry's lock.
* Every resident entry holds **one global pin** on its page (taken via
  the normal fault path when the entry was created), so a cached mapping
  can never go stale — the page cannot be evicted.
* An entry whose local count is positive **cannot be evicted on
  conflict** (the count would be lost); the conflicting access *bypasses*
  the TLB and works against the global page table directly, which "does
  not affect the correctness of the counter".
* An entry whose local count has dropped to zero stays cached — that is
  the TLB's payoff — and is evicted (releasing its pin) only on conflict
  or when the block drains its TLB at the end of the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.metrics import APStats
from repro.gpu.instructions import TimedLock
from repro.gpu.kernel import WarpContext

#: Acquire cost of a scratchpad spin lock, in cycles.
SCRATCH_LOCK_CYCLES = 35.0

#: Instruction costs of the TLB code paths (index hash, tag compare,
#: entry update).  Updates are costly relative to lookups — "the TLB
#: data structure itself adds overheads to address translation, because
#: the TLB updates are costly" (§III-E) — and scale with the entry size
#: (12 B for short apointers, 20 B for long, §IV-D).
LOOKUP_INSTRS = 8
UPDATE_INSTRS = 30


@dataclass
class _Entry:
    key: tuple[int, int]          # (file_id, xpage)
    frame_addr: int
    tb_refs: int                  # threadblock-private reference count
    global_held: int              # global refs this entry is holding


class SoftwareTLB:
    """Direct-mapped TLB for one threadblock."""

    def __init__(self, entries: int, entry_bytes: int, scratchpad,
                 stats: Optional[APStats] = None):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("TLB size must be a positive power of two")
        self.entries = entries
        # Scratchpad words moved per entry update (size-dependent cost:
        # this is what makes short apointers cheaper in Table III).
        self.entry_words = max(2, -(-entry_bytes // 8))
        self._table: list[Optional[_Entry]] = [None] * entries
        self._locks = [TimedLock(f"tlb-{i}", latency=SCRATCH_LOCK_CYCLES)
                       for i in range(entries)]
        # Claim the scratchpad footprint (raises if it does not fit).
        scratchpad.alloc_array("tlb", entries * entry_bytes, "u1")
        self.stats = stats if stats is not None else APStats()

    # ------------------------------------------------------------------
    def _slot(self, file_id: int, xpage: int) -> int:
        h = file_id * 0x9E3779B1 + xpage * 0x85EBCA77
        return (h ^ (h >> 13)) % self.entries

    def resident_pins(self) -> list[tuple[tuple[int, int], int]]:
        """``(key, global_held)`` of all cached entries."""
        return [(e.key, e.global_held) for e in self._table
                if e is not None]

    # ------------------------------------------------------------------
    # Timed operations
    # ------------------------------------------------------------------
    def lookup_and_ref(self, ctx: WarpContext, file_id: int, xpage: int,
                       refs: int):
        """Timed: if ``(file_id, xpage)`` is cached, take ``refs`` local
        references and return the frame address; else return ``None``."""
        slot = self._slot(file_id, xpage)
        ctx.charge(LOOKUP_INSTRS)
        yield from ctx.scratch(1)           # lock-free tag read
        entry = self._table[slot]
        if entry is None or entry.key != (file_id, xpage):
            self.stats.tlb_misses += 1
            return None
        lock = self._locks[slot]
        yield from ctx.lock(lock)
        ctx.charge(UPDATE_INSTRS)
        yield from ctx.scratch(self.entry_words)   # count update
        # Re-check under the lock: a conflicting install may have
        # evicted this (zero-referenced) entry since the tag read.
        if self._table[slot] is not entry:
            yield from ctx.unlock(lock)
            self.stats.tlb_misses += 1
            return None
        self.stats.tlb_hits += 1
        entry.tb_refs += refs
        yield from ctx.unlock(lock)
        return entry.frame_addr

    def install(self, ctx: WarpContext, file_id: int, xpage: int,
                frame_addr: int, refs: int):
        """Timed: cache a fresh mapping holding ``refs`` local refs.

        Returns ``(installed, evicted)``.  ``installed`` is ``False`` —
        a *bypass* — when the slot is occupied by an entry with live
        references, in which case the caller keeps working against the
        global table.  A zero-referenced occupant is evicted and returned
        as ``(key, global_held)``; the caller must release its global
        references.
        """
        slot = self._slot(file_id, xpage)
        lock = self._locks[slot]
        yield from ctx.lock(lock)
        ctx.charge(UPDATE_INSTRS)
        yield from ctx.scratch(self.entry_words)
        occupant = self._table[slot]
        if occupant is not None and occupant.key == (file_id, xpage):
            # Another warp of the block installed it while we faulted;
            # merge our references into the existing entry.
            occupant.tb_refs += refs
            occupant.global_held += refs
            yield from ctx.unlock(lock)
            return True, None
        if occupant is not None and occupant.tb_refs > 0:
            self.stats.tlb_bypasses += 1
            yield from ctx.unlock(lock)
            return False, None
        evicted = None
        if occupant is not None:
            self.stats.tlb_evictions += 1
            evicted = (occupant.key, occupant.global_held)
        self._table[slot] = _Entry((file_id, xpage), frame_addr, refs,
                                   global_held=refs)
        yield from ctx.scratch(self.entry_words)
        yield from ctx.unlock(lock)
        return True, evicted

    def unref(self, ctx: WarpContext, file_id: int, xpage: int,
              refs: int):
        """Timed: drop ``refs`` local references.

        Returns ``True`` if the entry was found (the global count needs
        no update); ``False`` if it was not (entry was installed by a
        bypass path — caller updates the global count itself).
        """
        slot = self._slot(file_id, xpage)
        ctx.charge(LOOKUP_INSTRS)
        yield from ctx.scratch(1)
        entry = self._table[slot]
        if entry is None or entry.key != (file_id, xpage):
            return False
        lock = self._locks[slot]
        yield from ctx.lock(lock)
        ctx.charge(UPDATE_INSTRS)
        if self._table[slot] is not entry:
            # Evicted while we waited — only possible at zero local
            # refs, so the caller cannot be holding any.
            yield from ctx.unlock(lock)
            return False
        entry.tb_refs -= refs
        if entry.tb_refs < 0:
            yield from ctx.unlock(lock)
            raise RuntimeError(
                f"TLB local refcount underflow for page {entry.key}")
        yield from ctx.scratch(1)
        yield from ctx.unlock(lock)
        return True

    def drain(self, ctx: WarpContext):
        """Timed: evict every entry; returns ``(key, global_held)`` pairs
        whose global references the caller must release.  Called at
        threadblock teardown."""
        released = []
        for slot, entry in enumerate(self._table):
            if entry is None:
                continue
            lock = self._locks[slot]
            yield from ctx.lock(lock)
            self._table[slot] = None
            yield from ctx.scratch(1)
            yield from ctx.unlock(lock)
            released.append((entry.key, entry.global_held))
        return released
