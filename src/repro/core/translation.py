"""Translation-field encodings: the 64-bit word inside an apointer.

The paper packs the whole translation state of an apointer into 64 bits
so the compiler keeps it in one hardware register (§IV-A, Figure 5).
Two layouts are evaluated (§IV-B):

* **Long apointer** — the mapping field holds *either* a 60-bit
  aphysical address (linked) *or* a 60-bit xAddress (unlinked), selected
  by the valid bit.
* **Short apointer** — the field holds *both* a 32-bit aphysical address
  and a 40-bit xAddress page number at all times, at reduced address
  range and some packing cost.

This module implements real bit packing/unpacking: the per-lane encoded
words are what a kernel would hold in registers, and tests verify that
decoding recovers exactly what was encoded (or rejects out-of-range
addresses, which is the short format's trade-off).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import PtrFormat

VALID_BIT = np.uint64(1) << np.uint64(63)
READ_BIT = np.uint64(1) << np.uint64(62)
WRITE_BIT = np.uint64(1) << np.uint64(61)

_LONG_ADDR_BITS = 60
_LONG_MASK = np.uint64((1 << _LONG_ADDR_BITS) - 1)

_SHORT_APHYS_BITS = 32
_SHORT_XPAGE_BITS = 29  # page number of the xAddress (29 + 32 = 61 bits)
_SHORT_APHYS_MASK = np.uint64((1 << _SHORT_APHYS_BITS) - 1)
_SHORT_XPAGE_MASK = np.uint64((1 << _SHORT_XPAGE_BITS) - 1)


class AddressRangeError(ValueError):
    """An address does not fit the chosen translation-field layout."""


def perm_bits(read: bool, write: bool) -> np.uint64:
    bits = np.uint64(0)
    if read:
        bits |= READ_BIT
    if write:
        bits |= WRITE_BIT
    return bits


def encode_long(valid: np.ndarray, perms: np.uint64,
                addr: np.ndarray) -> np.ndarray:
    """Pack long-format words: one 60-bit field, aphys or xAddress."""
    addr = np.asarray(addr, dtype=np.uint64)
    if addr.size and int(addr.max()) >= (1 << _LONG_ADDR_BITS):
        raise AddressRangeError("address exceeds 60 bits")
    word = addr & _LONG_MASK
    word = word | np.where(np.asarray(valid, bool), VALID_BIT, np.uint64(0))
    return word | perms


def decode_long(word: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(valid, addr)`` from long-format words."""
    word = np.asarray(word, dtype=np.uint64)
    return (word & VALID_BIT) != 0, word & _LONG_MASK


def encode_short(valid: np.ndarray, perms: np.uint64, aphys: np.ndarray,
                 xpage: np.ndarray) -> np.ndarray:
    """Pack short-format words: 32-bit aphys plus 29-bit xAddress page."""
    aphys = np.asarray(aphys, dtype=np.uint64)
    xpage = np.asarray(xpage, dtype=np.uint64)
    if aphys.size and int(aphys.max()) >= (1 << _SHORT_APHYS_BITS):
        raise AddressRangeError("aphysical address exceeds 32 bits")
    if xpage.size and int(xpage.max()) >= (1 << _SHORT_XPAGE_BITS):
        raise AddressRangeError("xAddress page exceeds 29 bits")
    word = (aphys & _SHORT_APHYS_MASK)
    word = word | ((xpage & _SHORT_XPAGE_MASK)
                   << np.uint64(_SHORT_APHYS_BITS))
    word = word | np.where(np.asarray(valid, bool), VALID_BIT, np.uint64(0))
    return word | perms


def decode_short(word: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(valid, aphys, xpage)`` from short-format words."""
    word = np.asarray(word, dtype=np.uint64)
    valid = (word & VALID_BIT) != 0
    aphys = word & _SHORT_APHYS_MASK
    xpage = (word >> np.uint64(_SHORT_APHYS_BITS)) & _SHORT_XPAGE_MASK
    return valid, aphys, xpage


def has_perm(word: np.ndarray, write: bool) -> np.ndarray:
    """Per-lane permission check against the packed word."""
    word = np.asarray(word, dtype=np.uint64)
    bit = WRITE_BIT if write else READ_BIT
    return (word & bit) != 0


def max_mappable_bytes(fmt: PtrFormat, page_size: int) -> int:
    """Largest file region addressable by a format's xAddress field."""
    if fmt is PtrFormat.LONG:
        return 1 << _LONG_ADDR_BITS
    return (1 << _SHORT_XPAGE_BITS) * page_size
