"""Distributed shared memory over a cluster of (simulated) GPUs.

The paper's introduction names this as a direction ActivePointers open
up: "page fault interposition has been useful for implementing software
distributed shared memory in a CPU cluster.  ActivePointers pave the
way to building a distributed shared memory system in a cluster of
GPUs."  This package builds that system on top of the reproduction:

* each GPU keeps its own page cache over a shared backing store
  (host memory);
* a host-side **directory** (:mod:`repro.dsm.directory`) runs an
  MSI-style protocol — pages are Shared by many readers or Exclusive to
  one writer, with flush/invalidate on transitions;
* :class:`repro.dsm.cluster.DSMBackend` plugs into the apointer layer
  as a mapping backend, so GPU kernels access the shared region through
  ordinary active pointers and coherence happens inside their page
  faults.

Consistent with the paper's central invariant, the protocol **never
revokes an active page**: invalidating a page that some apointer still
references (refcount > 0) is an error, not a silent data race.
Execution across devices is phased (bulk-synchronous): kernels on
different GPUs run in turns, with coherence actions at fault time — the
model of early software DSMs.
"""

from repro.dsm.directory import Directory, PageState
from repro.dsm.cluster import (
    DSMBackend,
    DSMCluster,
    DSMFlushTimeoutError,
    DSMStats,
)

__all__ = [
    "Directory",
    "PageState",
    "DSMCluster",
    "DSMBackend",
    "DSMFlushTimeoutError",
    "DSMStats",
]
