"""The DSM cluster: devices, shared region, and the apointer backend.

A :class:`DSMCluster` owns N simulated GPUs, a shared region backed by
host memory (a RAMfs file), one GPUfs page cache per device over that
file, and a :class:`~repro.dsm.directory.Directory`.  Kernels access
the region through ordinary active pointers whose backend is a
:class:`DSMBackend`; coherence happens inside their page faults:

* **read fault** — if another device holds the page exclusively, its
  dirty copy is flushed to the backing store (charged as a host RPC
  plus a device-to-host DMA); then the page faults in locally.
* **write fault** — the dirty owner (if any) is flushed and every other
  cached copy is invalidated; the faulting device becomes the exclusive
  holder.

Invalidation removes the page from the victim device's page table.  If
the victim still holds references (an apointer is linked to it), the
protocol refuses: the paper's fixed-mapping guarantee — an active
page's translation never changes — extends across the cluster.
Execution is phased (kernels on different devices run in turns), so in
correct programs invalidations only ever hit quiescent devices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu import Device
from repro.gpu.kernel import WarpContext
from repro.host import HostFileSystem
from repro.host.ramfs import RamFS
from repro.paging import GPUfs, GPUfsConfig

#: Host-side cost of one directory RPC (lookup + state transition).
DIRECTORY_RPC_S = 2e-6


class ActivePageRevocationError(RuntimeError):
    """A coherence action tried to invalidate a referenced page."""


class DSMFlushTimeoutError(RuntimeError):
    """A flush waited past its cycle budget for an owner's page-in.

    Raised instead of spinning forever: in co-simulation, a page whose
    transfer never completes would otherwise hang every device that
    later faults on it.
    """


@dataclass
class DSMStats:
    read_faults: int = 0
    write_faults: int = 0
    flushes: int = 0
    invalidations: int = 0


class DSMCluster:
    """N GPUs sharing one region through directory-based coherence."""

    #: Spin interval while waiting on an owner's in-flight page-in.
    FLUSH_WAIT_RETRY_CYCLES = 200.0
    #: Give up (:class:`DSMFlushTimeoutError`) after this much waiting —
    #: generous next to a worst-case batched disk-class page-in.
    FLUSH_WAIT_BUDGET_CYCLES = 2_000_000.0

    def __init__(self, num_devices: int, region_bytes: int,
                 page_size: int = 4096, frames_per_device: int = 256,
                 memory_bytes: int = 128 * 1024 * 1024):
        from repro.dsm.directory import Directory

        if region_bytes % page_size:
            raise ValueError("region must be page-aligned")
        self.page_size = page_size
        self.region_bytes = region_bytes
        self.ramfs = RamFS()
        self.ramfs.create("dsm", np.zeros(region_bytes, dtype=np.uint8))
        self.devices: list[Device] = []
        self.gpufs: list[GPUfs] = []
        self.fids: list[int] = []
        for _ in range(num_devices):
            device = Device(memory_bytes=memory_bytes)
            fs = GPUfs(device, HostFileSystem(self.ramfs),
                       GPUfsConfig(page_size=page_size,
                                   num_frames=frames_per_device))
            from repro.host.filesys import O_RDWR
            fid = fs.open("dsm", O_RDWR)
            self.devices.append(device)
            self.gpufs.append(fs)
            self.fids.append(fid)
        self.directory = Directory(num_devices)
        self.stats = DSMStats()

    # ------------------------------------------------------------------
    def backend_for(self, device_index: int) -> "DSMBackend":
        return DSMBackend(self, device_index)

    def region_array(self) -> np.ndarray:
        """The backing store contents (host-side view)."""
        return self.ramfs.open("dsm").data

    # ------------------------------------------------------------------
    # Coherence actions (called from fault paths)
    # ------------------------------------------------------------------
    def flush_page(self, ctx: WarpContext, owner: int, fpn: int):
        """Timed: write the owner's dirty copy back to the backing
        store and downgrade its entry to clean."""
        gpufs = self.gpufs[owner]
        entry = gpufs.cache.table.get(self.fids[owner], fpn)
        if entry is None:
            return
        if not entry.ready:
            # The owner's page-in is still in flight (concurrent
            # co-simulation): wait for it before flushing — but only up
            # to a budget.  An unbounded spin here deadlocks the whole
            # cluster when the owner's page-in is lost (e.g. its warp
            # died mid-fault), so give up loudly instead.
            waited = 0.0
            while not entry.ready:
                if waited >= self.FLUSH_WAIT_BUDGET_CYCLES:
                    raise DSMFlushTimeoutError(
                        f"device {owner} page {fpn}: page-in still not "
                        f"ready after {waited:.0f} cycles of flush "
                        "wait; the owner's transfer appears lost "
                        "(co-simulation deadlock)")
                yield from ctx.sleep(self.FLUSH_WAIT_RETRY_CYCLES,
                                     io_wait=True)
                waited += self.FLUSH_WAIT_RETRY_CYCLES
        self.stats.flushes += 1
        frame_addr = gpufs.cache.frame_addr(entry.frame)
        data = gpufs.device.memory.read(
            frame_addr, self.page_size).copy()
        self.ramfs.open("dsm").pwrite(fpn * self.page_size, data)
        entry.dirty = False
        # Charged to the faulting warp: directory RPC + the owner's
        # device-to-host DMA on the shared interconnect.
        yield from ctx.host_compute(DIRECTORY_RPC_S)
        yield from ctx.pcie(self.page_size, to_device=False)

    def invalidate_page(self, ctx: WarpContext, victim: int, fpn: int):
        """Timed: drop ``victim``'s cached copy of ``fpn``."""
        gpufs = self.gpufs[victim]
        entry = gpufs.cache.table.get(self.fids[victim], fpn)
        if entry is None:
            self.directory.release(fpn, victim, flushed=False)
            return
        if entry.refcount > 0:
            raise ActivePageRevocationError(
                f"device {victim} holds {entry.refcount} references to "
                f"page {fpn}; active pages cannot be revoked "
                "(fixed-mapping guarantee)")
        self.stats.invalidations += 1
        removed = yield from gpufs.cache.table.remove_if_unreferenced(
            ctx, entry)
        if removed:
            gpufs.cache._owner[entry.frame] = None
            gpufs.cache._free.append(entry.frame)
        self.directory.release(fpn, victim, flushed=False)

    # ------------------------------------------------------------------
    def check_coherent(self) -> bool:
        """Host-side invariant check: clean cached copies match the
        backing store; at most one exclusive holder per page."""
        store = self.region_array()
        for dev, gpufs in enumerate(self.gpufs):
            for entry in gpufs.cache.table.entries():
                if entry.dirty:
                    continue
                frame_addr = gpufs.cache.frame_addr(entry.frame)
                cached = gpufs.device.memory.read(frame_addr,
                                                  self.page_size)
                ref = store[entry.fpn * self.page_size:
                            (entry.fpn + 1) * self.page_size]
                if not np.array_equal(cached, ref):
                    return False
        return True


class DSMBackend:
    """Apointer mapping backend over a DSM cluster, for one device."""

    def __init__(self, cluster: DSMCluster, device_index: int):
        self.cluster = cluster
        self.device_index = device_index
        self.page_size = cluster.page_size
        self.file_id = cluster.fids[device_index]
        self.paged = True
        self.gpufs = cluster.gpufs[device_index]

    @property
    def device(self) -> Device:
        return self.cluster.devices[self.device_index]

    def fault(self, ctx: WarpContext, xpage: int, refs: int, write: bool):
        """Timed: coherence transition, then the local page fault."""
        cluster = self.cluster
        directory = cluster.directory
        me = self.device_index
        yield from ctx.host_compute(DIRECTORY_RPC_S)
        if write:
            cluster.stats.write_faults += 1
            actions = directory.acquire_write(xpage, me)
            if "flush" in actions:
                yield from cluster.flush_page(ctx, actions["flush"],
                                              xpage)
            for victim in actions["invalidate"]:
                yield from cluster.invalidate_page(ctx, victim, xpage)
        else:
            cluster.stats.read_faults += 1
            actions = directory.acquire_read(xpage, me)
            if "flush" in actions:
                yield from cluster.flush_page(ctx, actions["flush"],
                                              xpage)
        # A stale local copy (invalidated by a writer elsewhere between
        # our kernels) was already removed by invalidate_page; whatever
        # is resident now is current, so the normal fault path applies.
        frame = yield from self.gpufs.handle_fault(
            ctx, self.file_id, xpage, refs=refs, write=write)
        return frame

    def release(self, ctx: WarpContext, xpage: int, refs: int):
        yield from self.gpufs.release_page(ctx, self.file_id, xpage,
                                           refs=refs)
