"""The DSM directory: per-page MSI coherence state.

A host-resident service (one per shared region) tracking, for every
page, which devices hold it and in what mode:

* ``IDLE`` — no device caches the page; the backing store is current.
* ``SHARED`` — one or more devices hold read-only copies; the backing
  store is current.
* ``EXCLUSIVE`` — exactly one device holds a writable copy which may be
  dirty; the backing store may be stale.

The directory is pure bookkeeping — flushes and invalidations are
carried out (and charged for) by :class:`repro.dsm.cluster.DSMBackend`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class PageState(enum.Enum):
    IDLE = "idle"
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class _PageInfo:
    state: PageState = PageState.IDLE
    holders: set = field(default_factory=set)

    def owner(self) -> int:
        assert self.state is PageState.EXCLUSIVE
        (dev,) = self.holders
        return dev


class Directory:
    """MSI state machine for one shared region."""

    def __init__(self, num_devices: int):
        if num_devices <= 0:
            raise ValueError("need at least one device")
        self.num_devices = num_devices
        self._pages: dict[int, _PageInfo] = {}
        # Metrics.
        self.read_misses = 0
        self.write_misses = 0
        self.downgrades = 0
        self.invalidations = 0

    def _info(self, fpn: int) -> _PageInfo:
        return self._pages.setdefault(fpn, _PageInfo())

    def state_of(self, fpn: int) -> PageState:
        return self._info(fpn).state

    def holders_of(self, fpn: int) -> frozenset:
        return frozenset(self._info(fpn).holders)

    # ------------------------------------------------------------------
    def acquire_read(self, fpn: int, device: int) -> dict:
        """Device wants a read-only copy.

        Returns the actions the caller must perform *before* reading the
        backing store: ``{"flush": owner}`` if an exclusive holder must
        write its dirty copy back first.
        """
        self._check(device)
        info = self._info(fpn)
        actions: dict = {}
        self.read_misses += 1
        if info.state is PageState.EXCLUSIVE:
            owner = info.owner()
            if owner != device:
                actions["flush"] = owner
                self.downgrades += 1
                info.state = PageState.SHARED
                info.holders.add(device)
            # Owner re-reading keeps exclusivity.
        else:
            info.state = PageState.SHARED
            info.holders.add(device)
        return actions

    def acquire_write(self, fpn: int, device: int) -> dict:
        """Device wants a writable copy.

        Returns ``{"flush": owner, "invalidate": [devices...]}``: the
        dirty owner (if another device) must be flushed, and every other
        holder's cached copy must be invalidated before the caller may
        write.
        """
        self._check(device)
        info = self._info(fpn)
        actions: dict = {"invalidate": []}
        self.write_misses += 1
        if info.state is PageState.EXCLUSIVE and info.owner() != device:
            actions["flush"] = info.owner()
            actions["invalidate"].append(info.owner())
        elif info.state is PageState.SHARED:
            actions["invalidate"] = [d for d in info.holders
                                     if d != device]
        self.invalidations += len(actions["invalidate"])
        info.state = PageState.EXCLUSIVE
        info.holders = {device}
        return actions

    def release(self, fpn: int, device: int, flushed: bool) -> None:
        """Device dropped its cached copy (evicted or invalidated).

        A release from a device that is no longer a holder (its copy
        was already claimed away by a concurrent ``acquire_write``) is
        a no-op — otherwise it would wrongly downgrade the new owner.
        """
        info = self._info(fpn)
        if device not in info.holders:
            return
        info.holders.discard(device)
        if not info.holders:
            info.state = PageState.IDLE
        elif info.state is PageState.EXCLUSIVE:
            # The exclusive holder left; remaining holders are readers.
            info.state = PageState.SHARED

    # ------------------------------------------------------------------
    def _check(self, device: int) -> None:
        if not 0 <= device < self.num_devices:
            raise ValueError(f"unknown device {device}")

    def pages_in_state(self, state: PageState) -> list[int]:
        return sorted(f for f, i in self._pages.items()
                      if i.state is state)
