"""GPU hardware simulator substrate.

This package models a commodity discrete GPU (parameterised as an NVIDIA
Tesla K80 / GK210, the machine used in the paper) at *warp granularity*:

* Kernels are Python coroutines executed in SIMT lockstep; each warp holds
  32 lanes whose per-lane values are numpy vectors.
* An event-driven scheduler (:mod:`repro.gpu.engine`) models per-SM
  instruction issue bandwidth, a shared DRAM bandwidth server, memory
  access latency, barriers, locks and PCIe transfers.  The GPU's natural
  latency hiding — the "free-computation bubble" of the paper's §VI-A —
  emerges from this scheduler.
* CUDA warp intrinsics (``__all``/``__ballot``/``__shfl``/``__ffs``/
  ``__popc``) are provided with identical semantics.

The substrate knows nothing about ActivePointers: it executes whatever
kernels it is given and charges time for what they do.
"""

from repro.gpu.device import Device, KernelLaunch, LaunchResult
from repro.gpu.specs import GPUSpec, K80_SPEC
from repro.gpu.kernel import WarpContext
from repro.gpu.memory import GlobalMemory, Scratchpad
from repro.gpu.occupancy import OccupancyLimits, occupancy_limits
from repro.gpu.trace import Tracer, render_timeline

__all__ = [
    "Device",
    "KernelLaunch",
    "LaunchResult",
    "GPUSpec",
    "K80_SPEC",
    "WarpContext",
    "GlobalMemory",
    "Scratchpad",
    "OccupancyLimits",
    "occupancy_limits",
    "Tracer",
    "render_timeline",
]
