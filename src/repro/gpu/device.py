"""The simulated GPU device: memory plus kernel launch.

:class:`Device` owns global memory and launches kernels on the engine.
A :class:`KernelLaunch` describes grid geometry and per-thread resource
usage (registers, scratchpad), from which the occupancy calculator
derives how many threadblocks are resident per SM — the knob Figure 6 of
the paper sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.gpu.engine import Engine, EngineProfile, EngineStats
from repro.gpu.kernel import BlockContext, KernelFn, WarpContext
from repro.gpu.launch import EngineHooks, LaunchPlan
from repro.gpu.memory import GlobalMemory, Scratchpad
from repro.gpu.occupancy import OccupancyLimits, occupancy_limits
from repro.gpu.specs import GPUSpec, K80_SPEC
from repro.telemetry import hooks as telemetry_hooks


@dataclass
class KernelLaunch:
    """Launch configuration, mirroring ``kernel<<<grid, block>>>``."""

    kernel: KernelFn
    grid: int
    block_threads: int
    args: tuple = ()
    regs_per_thread: int = 64
    scratchpad_bytes: int = 0
    block_init: Optional[Callable[[BlockContext], None]] = None

    def __post_init__(self):
        if self.grid <= 0:
            raise ValueError("grid must contain at least one block")
        if self.block_threads <= 0:
            raise ValueError("block must contain at least one thread")


@dataclass
class LaunchResult:
    """Outcome of one kernel launch."""

    cycles: float
    seconds: float
    stats: EngineStats
    occupancy: OccupancyLimits
    #: Populated when a profiler observed the launch (explicitly passed
    #: or ambient via ``repro.telemetry.capture``).
    profile: Optional[Any] = None
    #: Merged execution trace of a sharded cluster launch
    #: (:func:`repro.gpu.sharded.launch_cluster_sharded` with tracing
    #: on); ``None`` elsewhere — single-device launches hand the tracer
    #: back to its owner instead.
    tracer: Optional[Any] = None
    #: Merged ``components.timeseries`` section of a sharded cluster
    #: launch with sampling on; ``None`` elsewhere.
    series: Optional[dict] = None

    def dram_bandwidth(self, spec: GPUSpec) -> float:
        return self.stats.dram_bandwidth(spec)


class Device:
    """One simulated discrete GPU."""

    def __init__(self, spec: GPUSpec = K80_SPEC,
                 memory_bytes: int = 64 * 1024 * 1024):
        self.spec = spec
        self.memory = GlobalMemory(memory_bytes,
                                   spec.dram_transaction_bytes)
        self.total_cycles = 0.0
        self.launches = 0
        #: Installed by ``GPUfs(config=GPUfsConfig(sanitize=True))``;
        #: when set, launches run under the runtime sanitizer.
        self.sanitizer = None

    # ------------------------------------------------------------------
    def alloc(self, nbytes: int, align: int = 256) -> int:
        return self.memory.alloc(nbytes, align)

    # ------------------------------------------------------------------
    def launch(self, kernel: KernelFn, grid: int, block_threads: int,
               args: tuple = (), regs_per_thread: int = 64,
               scratchpad_bytes: int = 0,
               block_init: Optional[Callable[[BlockContext], None]] = None,
               tracer=None, profiler=None,
               hooks: Optional[EngineHooks] = None) -> LaunchResult:
        """Run ``kernel`` over ``grid`` threadblocks and return timing."""
        cfg = KernelLaunch(kernel, grid, block_threads, args,
                           regs_per_thread, scratchpad_bytes, block_init)
        return self.launch_cfg(cfg, tracer=tracer, profiler=profiler,
                               hooks=hooks)

    def launch_cfg(self, cfg: KernelLaunch, tracer=None,
                   profiler=None,
                   hooks: Optional[EngineHooks] = None) -> LaunchResult:
        spec = self.spec
        occ = occupancy_limits(spec, cfg.block_threads,
                               cfg.regs_per_thread, cfg.scratchpad_bytes)
        if not occ.is_schedulable:
            raise ValueError(
                f"kernel cannot be scheduled: {occ.limiting_factor}")
        warps_per_block = -(-cfg.block_threads // spec.warp_size)

        if hooks is not None:
            # Caller supplied a pre-assembled instrumentation bundle.
            tracer = hooks.tracer
            sampler = hooks.sampler
        else:
            # Ambient profiling (repro.telemetry.capture): one pointer
            # test per launch when off, a full profile per launch on.
            if profiler is None:
                profiler = telemetry_hooks.current()
            engine_profile = None
            sampler = None
            if profiler is not None:
                if tracer is None:
                    tracer = profiler.begin_launch()
                engine_profile = EngineProfile.for_sms(spec.num_sms)
                # Cycle-window sampling (None unless the profiler
                # enables it) — live series stream out as the launch
                # runs.
                begin_sampling = getattr(profiler, "begin_sampling", None)
                if begin_sampling is not None:
                    sampler = begin_sampling(spec, tracer=tracer)
            hooks = EngineHooks(tracer=tracer, profile=engine_profile,
                                sampler=sampler)
        san = (hooks.sanitizer if hooks.sanitizer is not None
               else self.sanitizer)

        def make_block(block_id: int):
            def factory():
                block = BlockContext(
                    block_id=block_id,
                    threads=cfg.block_threads,
                    warps=warps_per_block,
                    scratchpad=Scratchpad(max(cfg.scratchpad_bytes, 1)),
                )
                if cfg.block_init is not None:
                    cfg.block_init(block)
                gens = []
                for w in range(warps_per_block):
                    if san is None:
                        ctx = WarpContext(spec, self.memory, block, w,
                                          tracer=tracer)
                        gens.append(cfg.kernel(ctx, *cfg.args))
                    else:
                        ctx = san.make_context(spec, self.memory,
                                               block, w, tracer=tracer)
                        gens.append(san.watch(
                            cfg.kernel(ctx, *cfg.args), ctx))
                return block, gens
            return factory

        if san is not None:
            san.begin_launch()
        engine = Engine(spec, occ.blocks_per_sm, hooks=hooks)
        cycles = engine.launch(LaunchPlan.single(
            [make_block(b) for b in range(cfg.grid)]))
        self.total_cycles += cycles
        self.launches += 1
        launch_profile = None
        if profiler is not None:
            if sampler is not None:
                sampler.finish(cycles)
            launch_profile = profiler.record_launch(
                device=self, cfg=cfg, occ=occ, engine=engine,
                tracer=tracer, sampler=sampler)
        return LaunchResult(
            cycles=cycles,
            seconds=spec.cycles_to_seconds(cycles),
            stats=engine.stats,
            occupancy=occ,
            profile=launch_profile,
        )
