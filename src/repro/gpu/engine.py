"""Event-driven warp scheduler.

The engine advances one warp coroutine per event.  Each yielded request
reserves the resources it needs:

* **Issue server** (one per SM): ``count / effective_ipc`` cycles of the
  SM's instruction issue bandwidth, shared with every warp resident on
  that SM.
* **DRAM server** (one per GPU): ``transactions * 128`` bytes against the
  achievable memory bandwidth, plus a fixed access latency visible only
  to the issuing warp.
* **PCIe server** (one per GPU): fixed per-transaction cost plus bytes at
  link bandwidth — which is why the paging layer batches 4 KB pages.
* **Host server**: serialises host-side work, modelling the CPU-centric
  bottleneck the paper argues against (Figure 1 vs. Figure 2).

Latency hiding is emergent: a warp stalled on memory does not occupy the
issue server, so other resident warps run in the meantime.  With one warp
the latency chain dominates (the paper's Table I regime); with many the
servers saturate and only issue- or bandwidth-bound costs remain (the
Table II / Figure 6 regime).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.gpu.instructions import (
    AcquireLock,
    AtomicOp,
    Barrier,
    Compute,
    HostCompute,
    LoadFence,
    MemAccess,
    PcieTransfer,
    ReleaseLock,
    ScratchAccess,
    Sleep,
)
from repro.gpu.kernel import BlockContext
from repro.gpu.specs import GPUSpec


@dataclass
class EngineStats:
    """Aggregate counters for one kernel launch."""

    cycles: float = 0.0
    instructions: float = 0.0
    dram_bytes: int = 0
    dram_transactions: int = 0
    loads: int = 0
    stores: int = 0
    atomics: int = 0
    scratch_accesses: float = 0.0
    barriers: int = 0
    lock_acquisitions: int = 0
    lock_contentions: int = 0
    pcie_bytes: int = 0
    pcie_transactions: int = 0
    host_seconds: float = 0.0
    preemptions: int = 0
    # Resource busy time (cycles), for bottleneck analysis.
    issue_busy: float = 0.0
    dram_busy: float = 0.0
    pcie_busy: float = 0.0
    sleep_cycles: float = 0.0

    def dram_bandwidth(self, spec: GPUSpec) -> float:
        """Achieved DRAM bandwidth in bytes/second."""
        if self.cycles <= 0:
            return 0.0
        return self.dram_bytes / spec.cycles_to_seconds(self.cycles)


@dataclass
class EngineProfile:
    """Deep per-launch counters, collected only when profiling is on.

    The engine takes an optional :class:`EngineProfile` and updates it
    behind ``is not None`` guards, so an unprofiled launch pays one
    pointer test per dispatched request and nothing else.

    * ``sm_busy`` — issue-server busy cycles per SM; idle is the launch
      span minus busy (the per-SM utilisation of the paper's Figure 6
      occupancy sweeps).
    * ``stalls`` — cycles warps spent not issuing, keyed by reason
      (``memory``, ``barrier``, ``lock``, ``atomic``, ``io``, ``spin``,
      ``issue_queue``, ``exec_dependency``, ``scratch``).
    * ``dram_queue_cycles`` — time memory accesses waited for the DRAM
      bandwidth server beyond their own issue/dependency chain, i.e.
      pure bandwidth contention.
    """

    sm_busy: list[float] = field(default_factory=list)
    stalls: dict[str, float] = field(default_factory=dict)
    dram_queue_cycles: float = 0.0
    dram_queued_accesses: int = 0

    @classmethod
    def for_sms(cls, total_sms: int) -> "EngineProfile":
        return cls(sm_busy=[0.0] * total_sms)

    def stall(self, reason: str, cycles: float) -> None:
        if cycles > 0:
            self.stalls[reason] = self.stalls.get(reason, 0.0) + cycles


class _WarpRunner:
    """Engine-side handle for one executing warp coroutine."""

    __slots__ = ("gen", "block", "started", "outstanding", "warp_index",
                 "io_stalled", "pending_req")

    def __init__(self, gen, block: BlockContext, warp_index: int = 0):
        self.gen = gen
        self.block = block
        self.started = False
        self.outstanding = 0.0   # completion time of in-flight async loads
        self.warp_index = warp_index
        self.io_stalled = False  # currently waiting on a host transfer
        self.pending_req = None  # sliced request awaiting re-dispatch


class Engine:
    """Executes a grid of threadblocks on the simulated GPU."""

    def __init__(self, spec: GPUSpec, blocks_per_sm: int, tracer=None,
                 num_devices: int = 1,
                 profile: EngineProfile | None = None,
                 sampler=None):
        self.spec = spec
        self.blocks_per_sm = max(1, blocks_per_sm)
        self.tracer = tracer
        self.profile = profile
        # Cycle-window time-series sampler
        # (repro.telemetry.timeseries).  Guarded like ``profile``: an
        # unsampled launch pays one pointer test per event.  The
        # sampler only reads simulator state — it must never change
        # simulated cycles (asserted by the telemetry tests).
        self.sampler = sampler
        self.num_devices = num_devices
        self.stats = EngineStats()
        total_sms = spec.num_sms * num_devices
        self._issue_avail = [0.0] * total_sms
        self._dram_avail = [0.0] * num_devices
        self._pcie_avail = [0.0] * num_devices
        self._host_avail = 0.0           # one host serves all devices
        self._atomic_avail: dict[tuple, float] = {}
        self._heap: list = []
        self._seq = itertools.count()
        self._pending_groups: list = [[] for _ in range(num_devices)]
        self._resident = [0] * total_sms
        self._eff_ipc = spec.effective_issue_rate()
        self._extra_blocks = [0] * total_sms   # preemption slots used
        self._dram_bpc = spec.dram_bytes_per_cycle()
        self._pcie_bpc = spec.pcie_bytes_per_cycle()
        self._end_time = 0.0

    # ------------------------------------------------------------------
    def run(self, block_factories: list) -> float:
        """Run all blocks; each factory returns (BlockContext, [warp gens]).

        Returns total elapsed cycles.
        """
        return self.run_groups([list(block_factories)])

    def run_groups(self, groups: list) -> float:
        """Run one list of block factories per device, concurrently.

        Device *d*'s blocks execute on its own SMs and DRAM; the host
        CPU and atomic namespaces are shared.  Returns elapsed cycles.
        """
        if len(groups) > self.num_devices:
            raise ValueError("more groups than devices")
        self._pending_groups = [list(g) for g in groups]
        while len(self._pending_groups) < self.num_devices:
            self._pending_groups.append([])
        # Breadth-first initial wave per device: one block per SM, then
        # a second round, as the hardware block scheduler does.
        for dev in range(self.num_devices):
            base = dev * self.spec.num_sms
            for _ in range(self.blocks_per_sm):
                for sm in range(base, base + self.spec.num_sms):
                    if not self._pending_groups[dev]:
                        break
                    self._start_next_block(sm, 0.0)
        while self._heap:
            time, _, runner = heapq.heappop(self._heap)
            self._step(runner, time)
        self.stats.cycles = self._end_time
        return self._end_time

    # ------------------------------------------------------------------
    def _start_next_block(self, sm: int, time: float) -> bool:
        dev = sm // self.spec.num_sms
        pending = self._pending_groups[dev]
        if not pending:
            return False
        factory = pending.pop(0)
        block, gens = factory()
        block.device_index = dev
        block.sm_index = sm
        block.live_warps = len(gens)
        block.done_warps = 0
        self._resident[sm] += 1
        for w, gen in enumerate(gens):
            self._schedule(_WarpRunner(gen, block, w), time)
        return True

    def _schedule(self, runner: _WarpRunner, time: float) -> None:
        heapq.heappush(self._heap, (time, next(self._seq), runner))
        self._end_time = max(self._end_time, time)

    def _finish_warp(self, runner: _WarpRunner, time: float) -> None:
        block = runner.block
        block.done_warps += 1
        self._end_time = max(self._end_time, time)
        self._release_barrier_if_complete(block, time)
        if block.done_warps == block.live_warps:
            sm = block.sm_index
            self._resident[sm] -= 1
            self._start_next_block(sm, time)

    # ------------------------------------------------------------------
    #: Issue-slice size (warp-instructions).  Large instruction blocks
    #: are fed to the issue pipeline in slices so warps interleave
    #: fairly, as the hardware's round-robin scheduler does — a single
    #: FIFO reservation per macro-op would let one warp's long compute
    #: serialise every other warp's small ops behind it.  The slice is
    #: deliberately coarse: fault-path instruction charges (~150-250)
    #: must stay atomic or their requeueing inflates lock hold times.
    ISSUE_SLICE = 512.0

    def _step(self, runner: _WarpRunner, now: float) -> None:
        if self.sampler is not None:
            # Heap pops are monotonic and every interval recorded below
            # starts at or after ``now``, so windows ending before it
            # are complete and can stream out.
            self.sampler.advance(now)
        if runner.io_stalled:
            runner.io_stalled = False
            runner.block.io_stalled -= 1
        if runner.pending_req is not None:
            req = runner.pending_req
            runner.pending_req = None
            self._dispatch(req, runner, now)
            return
        try:
            if runner.started:
                req = runner.gen.send(now)
            else:
                runner.started = True
                req = next(runner.gen)
        except StopIteration:
            self._finish_warp(runner, now)
            return
        self._dispatch(req, runner, now)

    def _warp_id(self, runner: _WarpRunner) -> int:
        block = runner.block
        return (block.block_id * max(block.live_warps, 1)
                + runner.warp_index)

    def _trace(self, runner: _WarpRunner, req, start: float,
               end: float) -> None:
        if self.tracer is not None:
            block = runner.block
            self.tracer.record(self._warp_id(runner), block.block_id,
                               type(req).__name__.lower(), start, end,
                               sm=block.sm_index)

    # -- attribution events (callers guard on ``self.tracer``) ---------
    def _stall(self, runner: _WarpRunner, req, default: str,
               start: float, end: float) -> None:
        """Record one non-issuing interval, tagged with its reason: the
        request's activity tag when set ("translation", "tlb_miss",
        "fault_wait", ...), else the mechanical ``default``."""
        if end <= start:
            return
        block = runner.block
        reason = default if req is None else (req.tag or default)
        self.tracer.record(self._warp_id(runner), block.block_id,
                           "stall", start, end, reason,
                           sm=block.sm_index)

    def _issue_ev(self, runner: _WarpRunner, start: float,
                  end: float) -> None:
        """Record one issue-server occupancy interval of this warp."""
        if end <= start:
            return
        block = runner.block
        self.tracer.record(self._warp_id(runner), block.block_id,
                           "issue", start, end, sm=block.sm_index)

    def _translation_ev(self, runner: _WarpRunner, start: float,
                        end: float, iss: float, lat: float,
                        hid: float) -> None:
        """Record the translation-cycle decomposition of one request:
        ``iss`` issue slots consumed, ``lat`` warp-visible latency the
        translation chains added (exposed at warp level), ``hid`` chain
        cycles absorbed by the memory bubble or bandwidth queue (hidden
        even at warp level).  The analyzer reclassifies ``iss``/``lat``
        at launch level using concurrent-warp overlap."""
        if iss <= 0 and lat <= 0 and hid <= 0:
            return
        block = runner.block
        self.tracer.record(
            self._warp_id(runner), block.block_id, "translation",
            start, max(end, start),
            f"iss={iss:.6g};lat={lat:.6g};hid={hid:.6g}",
            sm=block.sm_index)

    def _slice_issue(self, req, runner: _WarpRunner, now: float,
                     sm: int) -> bool:
        """Issue one slice of an oversized instruction block; returns
        True if the request was sliced (and re-queued)."""
        if req.count <= self.ISSUE_SLICE:
            return False
        spec = self.spec
        start = max(now, self._issue_avail[sm])
        issue_time = self.ISSUE_SLICE / self._eff_ipc
        self._issue_avail[sm] = start + issue_time
        self.stats.issue_busy += issue_time
        self.stats.instructions += self.ISSUE_SLICE
        if self.profile is not None:
            self.profile.sm_busy[sm] += issue_time
            self.profile.stall("issue_queue", start - now)
        if self.sampler is not None:
            self.sampler.issue(sm, start, issue_time, self.ISSUE_SLICE)
            self.sampler.stall("issue_queue", start, start - now)
        req.count -= self.ISSUE_SLICE
        chain = (req.chain_length() if isinstance(req, Compute)
                 else req.chain)
        used = min(chain, self.ISSUE_SLICE)
        if isinstance(req, Compute):
            req.chain = chain - used
        else:
            req.chain = chain - used
        latency = used * spec.dependent_issue_cycles
        if self.tracer is not None:
            wake = start + max(issue_time, latency)
            self._stall(runner, None, "issue_queue", now, start)
            self._issue_ev(runner, start, start + issue_time)
            self._stall(runner, req, "exec_dependency",
                        start + issue_time, wake)
        runner.pending_req = req
        self._schedule(runner, start + max(issue_time, latency))
        return True

    def _dispatch(self, req, runner: _WarpRunner, now: float) -> None:
        spec = self.spec
        sm = runner.block.sm_index
        if (isinstance(req, (Compute, MemAccess))
                and self._slice_issue(req, runner, now, sm)):
            return
        if isinstance(req, Compute):
            start = max(now, self._issue_avail[sm])
            issue_time = req.count / self._eff_ipc
            self._issue_avail[sm] = start + issue_time
            self.stats.issue_busy += issue_time
            latency = (spec.macro_op_overhead_cycles
                       + req.chain_length() * spec.dependent_issue_cycles)
            self.stats.instructions += req.count
            done = start + max(issue_time, latency)
            if self.profile is not None:
                self.profile.sm_busy[sm] += issue_time
                self.profile.stall("issue_queue", start - now)
                self.profile.stall("exec_dependency",
                                   latency - issue_time)
            if self.sampler is not None:
                self.sampler.issue(sm, start, issue_time, req.count)
                self.sampler.stall("issue_queue", start, start - now)
                self.sampler.stall("exec_dependency", done,
                                   latency - issue_time)
            self._trace(runner, req, start, done)
            if self.tracer is not None:
                self._stall(runner, None, "issue_queue", now, start)
                self._issue_ev(runner, start, start + issue_time)
                self._stall(runner, req, "exec_dependency",
                            start + issue_time, done)
                tr = (req.tags.get("translation")
                      if req.tags is not None else None)
                if tr is not None:
                    dep = spec.dependent_issue_cycles
                    pre = min(tr[1], req.chain_length()) * dep
                    done0 = start + max(issue_time, latency - pre)
                    pre_x = done - done0
                    self._translation_ev(runner, start, done,
                                         tr[0] / self._eff_ipc,
                                         pre_x, pre - pre_x)
            self._schedule(runner, done)
        elif isinstance(req, MemAccess):
            self._dispatch_mem(req, runner, now, sm)
        elif isinstance(req, ScratchAccess):
            start = max(now, self._issue_avail[sm])
            issue_time = req.count / self._eff_ipc
            self._issue_avail[sm] = start + issue_time
            self.stats.instructions += req.count
            self.stats.scratch_accesses += req.count
            done = start + max(issue_time, spec.scratchpad_latency_cycles)
            if self.profile is not None:
                self.profile.sm_busy[sm] += issue_time
                self.profile.stall("issue_queue", start - now)
                self.profile.stall("scratch", done - start - issue_time)
            if self.sampler is not None:
                self.sampler.issue(sm, start, issue_time, req.count)
                self.sampler.stall("issue_queue", start, start - now)
                self.sampler.stall("scratch", done,
                                   done - start - issue_time)
            self._trace(runner, req, start, done)
            if self.tracer is not None:
                self._stall(runner, None, "issue_queue", now, start)
                self._issue_ev(runner, start, start + issue_time)
                self._stall(runner, req, "scratch",
                            start + issue_time, done)
            self._schedule(runner, done)
        elif isinstance(req, AtomicOp):
            key = (runner.block.device_index, req.address)
            avail = self._atomic_avail.get(key, 0.0)
            start = max(now, avail)
            # Pipelined: the address accepts another atomic after the
            # issue interval; the issuing warp sees the full latency.
            self._atomic_avail[key] = (
                start + spec.atomic_interval_cycles)
            self.stats.atomics += 1
            done = start + spec.atomic_latency_cycles
            if self.profile is not None:
                self.profile.stall("atomic", done - now)
            if self.sampler is not None:
                self.sampler.stall("atomic", done, done - now)
            self._trace(runner, req, start, done)
            if self.tracer is not None:
                self._stall(runner, req, "atomic", now, done)
            self._schedule(runner, done)
        elif isinstance(req, LoadFence):
            if self.profile is not None:
                self.profile.stall("memory", runner.outstanding - now)
            if self.sampler is not None:
                self.sampler.stall("memory", max(runner.outstanding,
                                                 now),
                                   runner.outstanding - now)
            if self.tracer is not None:
                self._stall(runner, req, "memory", now,
                            runner.outstanding)
            self._schedule(runner, max(now, runner.outstanding))
        elif isinstance(req, Barrier):
            self._dispatch_barrier(runner, now)
        elif isinstance(req, AcquireLock):
            lock = req.lock
            lock.acquisitions += 1
            cost = (spec.atomic_latency_cycles if lock.latency is None
                    else lock.latency)
            if lock.holder is None:
                lock.holder = runner
                self.stats.lock_acquisitions += 1
                if self.tracer is not None:
                    self._stall(runner, req, "lock", now, now + cost)
                self._schedule(runner, now + cost)
            else:
                lock.contended += 1
                self.stats.lock_contentions += 1
                lock.waiters.append((runner, now, req.tag))
        elif isinstance(req, ReleaseLock):
            lock = req.lock
            lock.holder = None
            if lock.waiters:
                waiter, enqueued, wtag = lock.waiters.pop(0)
                lock.holder = waiter
                self.stats.lock_acquisitions += 1
                cost = (spec.atomic_latency_cycles if lock.latency is None
                        else lock.latency)
                if self.profile is not None:
                    self.profile.stall("lock", now - enqueued)
                if self.sampler is not None:
                    self.sampler.stall("lock", now, now - enqueued)
                if self.tracer is not None:
                    block = waiter.block
                    self.tracer.record(self._warp_id(waiter),
                                       block.block_id, "stall",
                                       enqueued, now + cost,
                                       wtag or "lock",
                                       sm=block.sm_index)
                self._schedule(waiter, now + cost)
            self._schedule(runner, now)
        elif isinstance(req, PcieTransfer):
            # The link is busy only while bytes move (DMA engines
            # pipeline); the fixed latency is visible to the requesting
            # warp but does not serialise the link.  Host-side per-batch
            # setup costs go through HostCompute instead — that is the
            # CPU-centric bottleneck of the paper's Figure 1.
            dev = runner.block.device_index
            start = max(now, self._pcie_avail[dev])
            xfer = req.nbytes / self._pcie_bpc
            self._pcie_avail[dev] = start + xfer
            self.stats.pcie_busy += xfer
            self.stats.pcie_bytes += req.nbytes
            self.stats.pcie_transactions += 1
            fixed = 0.0 if req.latency_free else spec.pcie_latency_cycles()
            done = start + xfer + fixed
            if self.profile is not None:
                self.profile.stall("io", done - now)
            if self.sampler is not None:
                self.sampler.pcie(start, req.nbytes, xfer)
                self.sampler.stall("io", done, done - now)
            self._trace(runner, req, start, done)
            if self.tracer is not None:
                self._stall(runner, req, "io", now, done)
            self._maybe_preempt(runner, now, done)
            self._schedule(runner, done)
        elif isinstance(req, HostCompute):
            start = max(now, self._host_avail)
            done = start + req.seconds * spec.clock_hz
            self._host_avail = done
            self.stats.host_seconds += req.seconds
            if self.profile is not None:
                self.profile.stall("io", done - now)
            if self.sampler is not None:
                self.sampler.stall("io", done, done - now)
            self._trace(runner, req, start, done)
            if self.tracer is not None:
                self._stall(runner, req, "io", now, done)
            self._maybe_preempt(runner, now, done)
            self._schedule(runner, done)
        elif isinstance(req, Sleep):
            self.stats.sleep_cycles += req.cycles
            if req.cycles:
                self._trace(runner, req, now, now + req.cycles)
                if self.tracer is not None:
                    self._stall(runner, req,
                                "spin" if req.io_wait else "sleep",
                                now, now + req.cycles)
            if self.profile is not None:
                self.profile.stall("spin" if req.io_wait else "sleep",
                                   req.cycles)
            if self.sampler is not None:
                self.sampler.stall("spin" if req.io_wait else "sleep",
                                   now + req.cycles, req.cycles)
            if req.io_wait:
                self._maybe_preempt(runner, now, now + req.cycles)
            self._schedule(runner, now + req.cycles)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown request {req!r}")

    def _dispatch_mem(self, req: MemAccess, runner: _WarpRunner,
                      now: float, sm: int) -> None:
        spec = self.spec
        start = max(now, self._issue_avail[sm])
        issue_time = (req.count + 1) / self._eff_ipc
        self._issue_avail[sm] = start + issue_time
        self.stats.issue_busy += issue_time
        self.stats.instructions += req.count + 1
        nbytes = req.transactions * spec.dram_transaction_bytes
        self.stats.dram_bytes += nbytes
        self.stats.dram_transactions += req.transactions
        # Serial chain before the access can be issued.
        pre_done = (start + spec.macro_op_overhead_cycles
                    + req.chain * spec.dependent_issue_cycles)
        dev = runner.block.device_index
        dram_avail = self._dram_avail[dev]
        dram_start = max(pre_done, dram_avail)
        self._dram_avail[dev] = dram_start + nbytes / self._dram_bpc
        self.stats.dram_busy += nbytes / self._dram_bpc
        if self.profile is not None:
            self.profile.sm_busy[sm] += issue_time
            self.profile.stall("issue_queue", start - now)
            self.profile.dram_queue_cycles += dram_start - pre_done
            self.profile.dram_queued_accesses += 1
        if self.sampler is not None:
            self.sampler.issue(sm, start, issue_time, req.count + 1)
            self.sampler.stall("issue_queue", start, start - now)
            self.sampler.dram(dram_start, nbytes, req.transactions,
                              nbytes / self._dram_bpc,
                              dram_start - pre_done)
        dep = spec.dependent_issue_cycles
        tr_attr = False
        tr_cnt = tr_chain = pre = 0.0
        if self.tracer is not None:
            self._stall(runner, None, "issue_queue", now, start)
            self._issue_ev(runner, start, start + issue_time)
            tr = (req.tags.get("translation")
                  if req.tags is not None else None)
            tr_attr = tr is not None or req.chain_tag == "translation"
            if tr is not None:
                tr_cnt, tr_chain = tr
                tr_chain = min(tr_chain, req.chain)
            pre = tr_chain * dep
        if req.is_store:
            self.stats.stores += 1
            resume = max(pre_done, start + issue_time)
            if self.tracer is not None:
                self._stall(runner, req, "exec_dependency",
                            start + issue_time, resume)
                if tr_attr:
                    # Counterfactual: where the warp would resume with
                    # the translation pre-chain removed.
                    resume0 = max(pre_done - pre, start + issue_time)
                    pre_x = resume - resume0
                    self._translation_ev(runner, start, resume,
                                         tr_cnt / self._eff_ipc,
                                         pre_x, pre - pre_x)
            self._schedule(runner, resume)
            return
        self.stats.loads += 1
        data_ready = dram_start + spec.dram_latency_cycles
        self._trace(runner, req, start, data_ready)
        if req.nonblocking:
            # Memory-level parallelism: the warp keeps issuing; a
            # LoadFence later waits for the slowest outstanding load.
            runner.outstanding = max(runner.outstanding, data_ready)
            resume = max(pre_done, start + issue_time)
            if self.tracer is not None:
                self._stall(runner, req, "exec_dependency",
                            start + issue_time, resume)
                if tr_attr:
                    resume0 = max(pre_done - pre, start + issue_time)
                    pre_x = resume - resume0
                    self._translation_ev(runner, start, resume,
                                         tr_cnt / self._eff_ipc,
                                         pre_x, pre - pre_x)
            self._schedule(runner, resume)
            return
        overlap_done = (pre_done
                        + req.overlap_chain * spec.dependent_issue_cycles)
        ready = max(data_ready, overlap_done)
        ready += req.post_chain * spec.dependent_issue_cycles
        final = max(ready, start + issue_time)
        if self.profile is not None:
            self.profile.stall("memory", ready - (start + issue_time))
        if self.sampler is not None:
            self.sampler.stall("memory", final,
                               ready - (start + issue_time))
        if self.tracer is not None:
            self._stall(runner, req, "memory", start + issue_time, final)
            if tr_attr:
                # Exposed pre-chain: extra delay the translation chain
                # added to the DRAM access start (counterfactual start
                # with the chain removed, still bounded by queueing).
                pre_x = dram_start - max(pre_done - pre, dram_avail)
                if req.chain_tag == "translation":
                    ov = req.overlap_chain * dep
                    ov_x = min(ov, max(0.0, overlap_done - data_ready))
                    post_x = req.post_chain * dep
                else:
                    ov = ov_x = post_x = 0.0
                self._translation_ev(runner, start, final,
                                     tr_cnt / self._eff_ipc,
                                     pre_x + ov_x + post_x,
                                     (pre - pre_x) + (ov - ov_x))
        self._schedule(runner, final)

    # ------------------------------------------------------------------
    def _maybe_preempt(self, runner: _WarpRunner, now: float,
                       resume: float) -> None:
        """§VII I/O preemption: if every live warp of this block is now
        stalled on a host transfer and work is queued, swap in a pending
        block on this SM (the stalled block keeps its state and resumes
        when its transfers land)."""
        spec = self.spec
        block = runner.block
        if not runner.io_stalled:
            runner.io_stalled = True
            block.io_stalled += 1
        if not spec.io_preemption:
            return
        if not self._pending_groups[block.device_index]:
            return
        running = block.live_warps - block.done_warps
        sm = block.sm_index
        # Most of the block is off-chip: save its context and bring in
        # queued work.  Oversubscription is bounded per SM (the saved
        # contexts live in spill memory, as GPUpIO proposes).
        threshold = max(1, (3 * running) // 4)
        if block.io_stalled >= threshold and self._extra_blocks[sm] < 4:
            self._extra_blocks[sm] += 1
            self.stats.preemptions += 1
            start_at = now + spec.preemption_cost_cycles
            self._start_next_block(sm, start_at)

    # ------------------------------------------------------------------
    def _dispatch_barrier(self, runner: _WarpRunner, now: float) -> None:
        block = runner.block
        block.barrier_waiting.append((runner, now))
        self.stats.barriers += 1
        self._release_barrier_if_complete(block, now)

    def _release_barrier_if_complete(self, block: BlockContext,
                                     now: float) -> None:
        waiting = block.barrier_waiting
        running = block.live_warps - block.done_warps
        if waiting and len(waiting) == running:
            release = max(t for _, t in waiting)
            block.barrier_waiting = []
            for waiter, arrived in waiting:
                if self.profile is not None:
                    self.profile.stall("barrier", release - arrived)
                if self.sampler is not None:
                    self.sampler.stall("barrier", release,
                                       release - arrived)
                if self.tracer is not None:
                    self._stall(waiter, None, "barrier", arrived, release)
                self._schedule(waiter, release)
