"""Event-driven warp scheduler with a vectorized per-SM hot loop.

The engine advances one warp coroutine per event.  Each yielded request
reserves the resources it needs:

* **Issue server** (one per SM): ``count / effective_ipc`` cycles of the
  SM's instruction issue bandwidth, shared with every warp resident on
  that SM.
* **DRAM server** (one per GPU): ``transactions * 128`` bytes against the
  achievable memory bandwidth, plus a fixed access latency visible only
  to the issuing warp.
* **PCIe server** (one per GPU): fixed per-transaction cost plus bytes at
  link bandwidth — which is why the paging layer batches 4 KB pages.
* **Host server**: serialises host-side work, modelling the CPU-centric
  bottleneck the paper argues against (Figure 1 vs. Figure 2).

Latency hiding is emergent: a warp stalled on memory does not occupy the
issue server, so other resident warps run in the meantime.  With one warp
the latency chain dominates (the paper's Table I regime); with many the
servers saturate and only issue- or bandwidth-bound costs remain (the
Table II / Figure 6 regime).

Engine modes
------------

Two interchangeable event queues drive the loop, selected by
``Engine(mode=...)``, :func:`set_engine_mode`, or the
``REPRO_ENGINE_MODE`` environment variable:

* ``"vector"`` (default) — warps resident on one SM share a numpy
  structured array (:data:`EVENT_DTYPE`) of next-event times, stall
  reasons, and outstanding-request state.  The inner loop takes the
  minimum over a cached per-SM minima array and pops the whole
  ready-set (every entry at the global minimum time) per SM as an
  index array, then steps the set in sequence order.
* ``"event"`` — the original scalar ``heapq`` of ``(time, seq, runner)``
  entries, kept as the reference implementation.

Both modes process events in identical ``(time, seq)`` order — sequence
numbers are globally monotonic, so entries popped at one timestamp
always precede anything scheduled while stepping them — and share every
dispatch handler, so simulated cycles are bit-identical (asserted over
the whole workload registry by ``tests/gpu/test_vector_equivalence.py``).

The dispatch handlers are looked up by request type in a handler table
(:attr:`Engine._handlers`) instead of an ``isinstance`` chain, and the
tracer / profile / sampler instrumentation arrives bundled in one
:class:`~repro.gpu.launch.EngineHooks` object, guarded by ``is not
None`` tests so instrumented runs stay cycle-bit-identical to
uninstrumented ones.  :meth:`Engine.launch` takes a
:class:`~repro.gpu.launch.LaunchPlan`; the pre-PR-9 entry points
(``Engine.run``/``Engine.run_groups``) and per-hook keyword arguments
survive as deprecated shims that warn once.

For sharded epoch execution (:mod:`repro.gpu.sharded`) the loop is also
exposed incrementally: :meth:`Engine.begin` seeds the launch wave,
:meth:`Engine.advance` drains events up to an epoch horizon, and
host-compute requests can be *parked* (:meth:`Engine.gate_host`) so a
parent process can serialise the shared host server deterministically.
"""

from __future__ import annotations

import heapq
import itertools
import math
import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field, fields

import numpy as np

from repro.gpu.instructions import (
    AcquireLock,
    AtomicOp,
    Barrier,
    Compute,
    HostCompute,
    LoadFence,
    MemAccess,
    PcieTransfer,
    ReleaseLock,
    ScratchAccess,
    Sleep,
)
from repro.gpu.kernel import BlockContext
from repro.gpu.launch import EngineHooks, LaunchPlan
from repro.gpu.specs import GPUSpec

_INF = math.inf

# ---------------------------------------------------------------------------
# Engine-mode selection.

ENGINE_MODES = ("vector", "event")
ENGINE_MODE_ENV = "REPRO_ENGINE_MODE"
_mode_default = "vector"

#: Deprecation warnings already emitted this process (one per key).
_WARNED: set[str] = set()


def _warn_once(key: str, message: str) -> None:
    if key not in _WARNED:
        _WARNED.add(key)
        warnings.warn(message, DeprecationWarning, stacklevel=3)


def _check_mode(mode: str) -> str:
    if mode not in ENGINE_MODES:
        raise ValueError(
            f"unknown engine mode {mode!r}; expected one of {ENGINE_MODES}")
    return mode


def default_engine_mode() -> str:
    """Resolve the process-wide engine mode.

    ``REPRO_ENGINE_MODE`` (exported to sharded workers) wins over the
    module default set by :func:`set_engine_mode`.
    """
    env = os.environ.get(ENGINE_MODE_ENV)
    if env:
        return _check_mode(env)
    return _mode_default


def set_engine_mode(mode: str) -> str:
    """Set the module-default engine mode; returns the previous one."""
    global _mode_default
    old = _mode_default
    _mode_default = _check_mode(mode)
    return old


@contextmanager
def engine_mode(mode: str):
    """Temporarily run engines in ``mode`` (``"vector"``/``"event"``)."""
    old = set_engine_mode(mode)
    try:
        yield
    finally:
        set_engine_mode(old)


# ---------------------------------------------------------------------------
# Stall-reason codes stored in the per-SM event tables (vector mode).
# The code records why the queued warp is waiting for its next event.

STALL_READY = 0      # runnable, waiting only for its turn
STALL_EXEC = 1       # issue/execution dependency chain
STALL_MEM = 2        # blocking DRAM access or load fence
STALL_SCRATCH = 3    # scratchpad latency
STALL_ATOMIC = 4     # atomic address serialisation
STALL_BARRIER = 5    # released from a block barrier
STALL_LOCK = 6       # lock acquire/handoff latency
STALL_IO = 7         # PCIe transfer or host compute
STALL_SLEEP = 8      # explicit sleep / spin-wait

STALL_NAMES = {
    STALL_READY: "ready",
    STALL_EXEC: "exec",
    STALL_MEM: "memory",
    STALL_SCRATCH: "scratch",
    STALL_ATOMIC: "atomic",
    STALL_BARRIER: "barrier",
    STALL_LOCK: "lock",
    STALL_IO: "io",
    STALL_SLEEP: "sleep",
}

#: Row layout of the per-SM event table: next-event time, global
#: sequence number (the deterministic tie-break), stall-reason code,
#: and the completion time of the warp's outstanding async loads.
EVENT_DTYPE = np.dtype([
    ("time", "f8"),
    ("seq", "i8"),
    ("stall", "i1"),
    ("outstanding", "f8"),
])


@dataclass
class EngineStats:
    """Aggregate counters for one kernel launch."""

    cycles: float = 0.0
    instructions: float = 0.0
    dram_bytes: int = 0
    dram_transactions: int = 0
    loads: int = 0
    stores: int = 0
    atomics: int = 0
    scratch_accesses: float = 0.0
    barriers: int = 0
    lock_acquisitions: int = 0
    lock_contentions: int = 0
    pcie_bytes: int = 0
    pcie_transactions: int = 0
    host_seconds: float = 0.0
    preemptions: int = 0
    # Resource busy time (cycles), for bottleneck analysis.
    issue_busy: float = 0.0
    dram_busy: float = 0.0
    pcie_busy: float = 0.0
    sleep_cycles: float = 0.0

    def dram_bandwidth(self, spec: GPUSpec) -> float:
        """Achieved DRAM bandwidth in bytes/second."""
        if self.cycles <= 0:
            return 0.0
        return self.dram_bytes / spec.cycles_to_seconds(self.cycles)

    @classmethod
    def merged(cls, parts: list["EngineStats"]) -> "EngineStats":
        """Merge per-shard stats: counters sum, cycles is the makespan."""
        out = cls()
        for part in parts:
            for f in fields(cls):
                setattr(out, f.name,
                        getattr(out, f.name) + getattr(part, f.name))
        out.cycles = max((p.cycles for p in parts), default=0.0)
        return out


@dataclass
class EngineProfile:
    """Deep per-launch counters, collected only when profiling is on.

    The engine takes an optional :class:`EngineProfile` and updates it
    behind ``is not None`` guards, so an unprofiled launch pays one
    pointer test per dispatched request and nothing else.

    * ``sm_busy`` — issue-server busy cycles per SM; idle is the launch
      span minus busy (the per-SM utilisation of the paper's Figure 6
      occupancy sweeps).
    * ``stalls`` — cycles warps spent not issuing, keyed by reason
      (``memory``, ``barrier``, ``lock``, ``atomic``, ``io``, ``spin``,
      ``issue_queue``, ``exec_dependency``, ``scratch``).
    * ``dram_queue_cycles`` — time memory accesses waited for the DRAM
      bandwidth server beyond their own issue/dependency chain, i.e.
      pure bandwidth contention.
    """

    sm_busy: list[float] = field(default_factory=list)
    stalls: dict[str, float] = field(default_factory=dict)
    dram_queue_cycles: float = 0.0
    dram_queued_accesses: int = 0

    @classmethod
    def for_sms(cls, total_sms: int) -> "EngineProfile":
        return cls(sm_busy=[0.0] * total_sms)

    def stall(self, reason: str, cycles: float) -> None:
        if cycles > 0:
            self.stalls[reason] = self.stalls.get(reason, 0.0) + cycles

    @classmethod
    def merged(cls, parts: list["EngineProfile"]) -> "EngineProfile":
        """Merge per-shard profiles: ``sm_busy`` concatenates in shard
        order (shard *i* owns device *i*'s SMs), stall buckets and DRAM
        queue counters sum."""
        out = cls()
        for part in parts:
            out.sm_busy.extend(part.sm_busy)
            for reason, cycles in part.stalls.items():
                out.stalls[reason] = out.stalls.get(reason, 0.0) + cycles
            out.dram_queue_cycles += part.dram_queue_cycles
            out.dram_queued_accesses += part.dram_queued_accesses
        return out


class _WarpRunner:
    """Engine-side handle for one executing warp coroutine."""

    __slots__ = ("gen", "block", "started", "outstanding", "warp_index",
                 "io_stalled", "pending_req")

    def __init__(self, gen, block: BlockContext, warp_index: int = 0):
        self.gen = gen
        self.block = block
        self.started = False
        self.outstanding = 0.0   # completion time of in-flight async loads
        self.warp_index = warp_index
        self.io_stalled = False  # currently waiting on a host transfer
        self.pending_req = None  # sliced request awaiting re-dispatch


class _SMEventTable:
    """Vectorized event queue shared by all warps resident on one SM.

    Rows follow :data:`EVENT_DTYPE` and hold the shared warp state the
    batch handlers and the stall census read — next-event time, stall
    reason, outstanding-request completion; a free row holds ``time =
    inf`` so vectorized scans need no occupancy mask.  Runner handles
    live in a parallel Python list (coroutines cannot go in the array).

    *Ordering* is kept separately in a per-SM binary heap of ``(time,
    seq, slot)`` triples: finding the SM's next event time and popping
    its whole ready-set are then O(log n) C-level heap operations
    instead of per-event numpy reductions, whose call overhead
    dominates when latency staggering makes ready-sets singletons.
    Capacity grows geometrically and never shrinks — a launch reaches
    its resident-warp high-water mark early and stays there.
    """

    __slots__ = ("data", "time", "seq", "stall", "outstanding",
                 "runners", "free", "heap")

    def __init__(self, capacity: int = 32):
        self.runners: list = [None] * capacity
        self.free = list(range(capacity - 1, -1, -1))
        self.heap: list = []
        self._alloc(capacity)

    def _alloc(self, capacity: int) -> None:
        data = np.zeros(capacity, dtype=EVENT_DTYPE)
        data["time"] = _INF
        self.data = data
        # Cached column views: field access on a structured array
        # builds a new view object each time, too slow for the hot loop.
        self.time = data["time"]
        self.seq = data["seq"]
        self.stall = data["stall"]
        self.outstanding = data["outstanding"]

    def _grow(self) -> None:
        old = self.data
        cap = len(old)
        self._alloc(cap * 2)
        self.data[:cap] = old
        self.runners.extend([None] * cap)
        self.free.extend(range(cap * 2 - 1, cap - 1, -1))

    def push(self, runner, time: float, seq: int, stall: int,
             outstanding: float) -> None:
        if not self.free:
            self._grow()
        slot = self.free.pop()
        self.data[slot] = (time, seq, stall, outstanding)
        self.runners[slot] = runner
        heapq.heappush(self.heap, (time, seq, slot))

    def min_time(self) -> float:
        return self.heap[0][0] if self.heap else _INF

    def pop_at(self, t: float) -> list:
        """Pop every entry whose time equals ``t`` (the ready-set).

        Returns ``(seq, runner)`` pairs in seq order; the engine merges
        ready-sets across SMs and sorts once by sequence number.
        """
        heap = self.heap
        runners = self.runners
        time = self.time
        free = self.free
        out = []
        while heap and heap[0][0] == t:
            _, seq, slot = heapq.heappop(heap)
            out.append((seq, runners[slot]))
            runners[slot] = None
            time[slot] = _INF
            free.append(slot)
        return out


class Engine:
    """Executes a grid of threadblocks on the simulated GPU."""

    def __init__(self, spec: GPUSpec, blocks_per_sm: int,
                 hooks: EngineHooks | None = None,
                 num_devices: int = 1,
                 mode: str | None = None,
                 **legacy):
        if legacy:
            hooks = self._fold_legacy_hooks(hooks, legacy)
        self.spec = spec
        self.blocks_per_sm = max(1, blocks_per_sm)
        self._set_hooks(hooks if hooks is not None else EngineHooks())
        self.num_devices = num_devices
        self.mode = _check_mode(mode) if mode else default_engine_mode()
        self._vector = self.mode == "vector"
        self.stats = EngineStats()
        total_sms = spec.num_sms * num_devices
        self._issue_avail = [0.0] * total_sms
        self._dram_avail = [0.0] * num_devices
        self._pcie_avail = [0.0] * num_devices
        self._host_avail = 0.0           # one host serves all devices
        self._atomic_avail: dict[tuple, float] = {}
        self._heap: list = []
        self._seq = itertools.count()
        if self._vector:
            self._tables = [_SMEventTable() for _ in range(total_sms)]
            # Per-SM minima as a plain Python list: the outer loop
            # reads it once per dispatched batch, and min()/compare
            # over a handful of floats beats numpy's call overhead.
            self._sm_min = [_INF] * total_sms
        self._pending_groups: list = [[] for _ in range(num_devices)]
        self._resident = [0] * total_sms
        self._eff_ipc = spec.effective_issue_rate()
        self._extra_blocks = [0] * total_sms   # preemption slots used
        self._dram_bpc = spec.dram_bytes_per_cycle()
        self._pcie_bpc = spec.pcie_bytes_per_cycle()
        self._end_time = 0.0
        self._host_gated = False
        self._parked = None      # (req, runner, arrival) awaiting grant
        self._handlers = {
            Compute: self._h_compute,
            MemAccess: self._h_mem,
            ScratchAccess: self._h_scratch,
            AtomicOp: self._h_atomic,
            LoadFence: self._h_fence,
            Barrier: self._h_barrier,
            AcquireLock: self._h_acquire,
            ReleaseLock: self._h_release,
            PcieTransfer: self._h_pcie,
            HostCompute: self._h_host,
            Sleep: self._h_sleep,
        }

    # -- hooks ---------------------------------------------------------
    @staticmethod
    def _fold_legacy_hooks(hooks: EngineHooks | None,
                           legacy: dict) -> EngineHooks:
        values = {}
        for name in ("tracer", "profile", "sampler"):
            if name in legacy:
                _warn_once(
                    f"Engine({name}=)",
                    f"Engine({name}=...) is deprecated; bundle "
                    f"instrumentation into EngineHooks({name}=...) and "
                    "pass Engine(..., hooks=...) instead")
                values[name] = legacy.pop(name)
        if legacy:
            name = next(iter(legacy))
            raise TypeError(
                f"Engine() got an unexpected keyword argument {name!r}")
        if hooks is None:
            return EngineHooks(**values)
        for name, value in values.items():
            if value is not None and getattr(hooks, name) is not None:
                raise TypeError(
                    f"Engine() got both hooks.{name} and the deprecated "
                    f"{name}= keyword")
            if value is not None:
                setattr(hooks, name, value)
        return hooks

    def _set_hooks(self, hooks: EngineHooks) -> None:
        self.hooks = hooks
        # Mirrors kept as plain attributes: they are read per event in
        # the hot loop and by external consumers (telemetry profiler).
        self.tracer = hooks.tracer
        self.profile = hooks.profile
        self.sampler = hooks.sampler

    # -- entry points --------------------------------------------------
    def launch(self, plan: LaunchPlan) -> float:
        """Run one :class:`~repro.gpu.launch.LaunchPlan` to completion.

        Returns total elapsed cycles.  ``plan.blocks_per_sm`` and
        ``plan.hooks`` override the constructor defaults when set.
        """
        if plan.blocks_per_sm is not None:
            self.blocks_per_sm = max(1, plan.blocks_per_sm)
        if plan.hooks is not None:
            self._set_hooks(plan.hooks)
        self.begin(plan.groups)
        self.advance()
        return self.finish()

    def run(self, block_factories: list) -> float:
        """Deprecated: use ``launch(LaunchPlan.single(factories))``."""
        _warn_once(
            "Engine.run",
            "Engine.run(factories) is deprecated; use "
            "Engine.launch(LaunchPlan.single(factories)) instead")
        return self.launch(LaunchPlan.single(list(block_factories)))

    def run_groups(self, groups: list) -> float:
        """Deprecated: use ``launch(LaunchPlan(groups=...))``."""
        _warn_once(
            "Engine.run_groups",
            "Engine.run_groups(groups) is deprecated; use "
            "Engine.launch(LaunchPlan(groups=groups)) instead")
        return self.launch(LaunchPlan(groups=[list(g) for g in groups]))

    # -- incremental interface (used by launch() and repro.gpu.sharded)
    def begin(self, groups: list) -> None:
        """Seed the launch: one list of block factories per device.

        Device *d*'s blocks execute on its own SMs and DRAM; the host
        CPU is shared.  Breadth-first initial wave per device: one
        block per SM, then a second round, as the hardware block
        scheduler does.
        """
        if len(groups) > self.num_devices:
            raise ValueError("more groups than devices")
        self._pending_groups = [list(g) for g in groups]
        while len(self._pending_groups) < self.num_devices:
            self._pending_groups.append([])
        for dev in range(self.num_devices):
            base = dev * self.spec.num_sms
            for _ in range(self.blocks_per_sm):
                for sm in range(base, base + self.spec.num_sms):
                    if not self._pending_groups[dev]:
                        break
                    self._start_next_block(sm, 0.0)

    def advance(self, horizon: float = _INF) -> float:
        """Drain events with time ≤ ``horizon`` (all of them by default).

        Stops early when a host-compute request parks (see
        :meth:`gate_host`).  Returns the next pending event time, or
        ``inf`` when the launch has fully drained.
        """
        if self._vector:
            self._drain_vector(horizon)
        else:
            self._drain_event(horizon)
        return self.peek()

    def peek(self) -> float:
        """Next pending event time (``inf`` when drained)."""
        if self._vector:
            return min(self._sm_min)
        return self._heap[0][0] if self._heap else _INF

    def finish(self) -> float:
        """Record and return total elapsed cycles."""
        self.stats.cycles = self._end_time
        return self._end_time

    # -- event loops ---------------------------------------------------
    def _drain_event(self, horizon: float) -> None:
        heap = self._heap
        step = self._step
        while heap and heap[0][0] <= horizon:
            time, _, runner = heapq.heappop(heap)
            step(runner, time)
            if self._parked is not None:
                return

    def _drain_vector(self, horizon: float) -> None:
        sm_min = self._sm_min
        tables = self._tables
        step = self._step
        while True:
            tmin = min(sm_min)
            if tmin == _INF or tmin > horizon:
                return
            # Pop the whole ready-set: every queued entry at the global
            # minimum time, across all SMs sitting at that minimum.
            batch = []
            for sm, t in enumerate(sm_min):
                if t != tmin:
                    continue
                tab = tables[sm]
                batch.extend(tab.pop_at(tmin))
                sm_min[sm] = tab.min_time()
            if len(batch) > 1:
                # Sequence numbers are globally monotonic, so sorting
                # the popped set by seq reproduces the heap's pop order
                # exactly: anything scheduled while stepping this batch
                # carries a larger seq and sorts after it in the next
                # outer iteration.
                batch.sort()
            for i, (seq, runner) in enumerate(batch):
                step(runner, tmin)
                if self._parked is not None:
                    # Strict stop for sharded host serialisation: the
                    # unstepped remainder re-queues under its original
                    # sequence numbers so resume order is unchanged.
                    for seq2, runner2 in batch[i + 1:]:
                        self._push_at(runner2, tmin, seq2)
                    return

    # ------------------------------------------------------------------
    def _start_next_block(self, sm: int, time: float) -> bool:
        dev = sm // self.spec.num_sms
        pending = self._pending_groups[dev]
        if not pending:
            return False
        factory = pending.pop(0)
        block, gens = factory()
        block.device_index = dev
        block.sm_index = sm
        block.live_warps = len(gens)
        block.done_warps = 0
        self._resident[sm] += 1
        for w, gen in enumerate(gens):
            self._schedule(_WarpRunner(gen, block, w), time)
        return True

    def _schedule(self, runner: _WarpRunner, time: float,
                  stall: int = STALL_READY) -> None:
        if self._vector:
            sm = runner.block.sm_index
            self._tables[sm].push(runner, time, next(self._seq), stall,
                                  runner.outstanding)
            if time < self._sm_min[sm]:
                self._sm_min[sm] = time
        else:
            heapq.heappush(self._heap, (time, next(self._seq), runner))
        if time > self._end_time:
            self._end_time = time

    def _push_at(self, runner: _WarpRunner, time: float, seq: int) -> None:
        """Re-queue a popped-but-unstepped entry under its original seq."""
        sm = runner.block.sm_index
        self._tables[sm].push(runner, time, seq, STALL_READY,
                              runner.outstanding)
        if time < self._sm_min[sm]:
            self._sm_min[sm] = time

    def _finish_warp(self, runner: _WarpRunner, time: float) -> None:
        block = runner.block
        block.done_warps += 1
        self._end_time = max(self._end_time, time)
        self._release_barrier_if_complete(block, time)
        if block.done_warps == block.live_warps:
            sm = block.sm_index
            self._resident[sm] -= 1
            self._start_next_block(sm, time)

    # -- introspection -------------------------------------------------
    def stall_census(self) -> dict[str, int]:
        """Queued-event counts keyed by stall reason (vector mode).

        Event mode keeps no stall codes and reports the queue depth
        under ``"queued"``.  Used by the sharded heartbeat payload.
        """
        if not self._vector:
            return {"queued": len(self._heap)}
        counts: dict[str, int] = {}
        for tab in self._tables:
            active = tab.time != _INF
            if not active.any():
                continue
            codes, num = np.unique(tab.stall[active], return_counts=True)
            for code, n in zip(codes.tolist(), num.tolist()):
                name = STALL_NAMES.get(code, str(code))
                counts[name] = counts.get(name, 0) + n
        return counts

    # -- sharded host serialisation ------------------------------------
    def gate_host(self) -> None:
        """Park host-compute requests instead of serving them locally.

        In sharded execution the host server is owned by the parent:
        a gated engine stops draining the moment a warp yields
        :class:`HostCompute` (strict stop), exposes the request via
        :meth:`parked_host`, and resumes on :meth:`grant_host`.
        """
        self._host_gated = True

    @property
    def parked(self) -> bool:
        return self._parked is not None

    def parked_host(self) -> tuple[float, float]:
        """(arrival cycle, host seconds) of the parked request."""
        req, _, now = self._parked
        return now, req.seconds

    def grant_host(self, start: float, done: float) -> None:
        """Serve the parked host request with parent-assigned timing."""
        req, runner, now = self._parked
        self._parked = None
        self._host_avail = done
        self._complete_host(req, runner, now, start, done)

    # ------------------------------------------------------------------
    #: Issue-slice size (warp-instructions).  Large instruction blocks
    #: are fed to the issue pipeline in slices so warps interleave
    #: fairly, as the hardware's round-robin scheduler does — a single
    #: FIFO reservation per macro-op would let one warp's long compute
    #: serialise every other warp's small ops behind it.  The slice is
    #: deliberately coarse: fault-path instruction charges (~150-250)
    #: must stay atomic or their requeueing inflates lock hold times.
    ISSUE_SLICE = 512.0

    def _step(self, runner: _WarpRunner, now: float) -> None:
        if self.sampler is not None:
            # Event times are monotonic and every interval recorded
            # below starts at or after ``now``, so windows ending
            # before it are complete and can stream out.
            self.sampler.advance(now)
        if runner.io_stalled:
            runner.io_stalled = False
            runner.block.io_stalled -= 1
        if runner.pending_req is not None:
            req = runner.pending_req
            runner.pending_req = None
            self._dispatch(req, runner, now)
            return
        try:
            if runner.started:
                req = runner.gen.send(now)
            else:
                runner.started = True
                req = next(runner.gen)
        except StopIteration:
            self._finish_warp(runner, now)
            return
        self._dispatch(req, runner, now)

    def _warp_id(self, runner: _WarpRunner) -> int:
        block = runner.block
        return (block.block_id * max(block.live_warps, 1)
                + runner.warp_index)

    def _trace(self, runner: _WarpRunner, req, start: float,
               end: float) -> None:
        if self.tracer is not None:
            block = runner.block
            self.tracer.record(self._warp_id(runner), block.block_id,
                               type(req).__name__.lower(), start, end,
                               sm=block.sm_index)

    # -- attribution events (callers guard on ``self.tracer``) ---------
    def _stall(self, runner: _WarpRunner, req, default: str,
               start: float, end: float) -> None:
        """Record one non-issuing interval, tagged with its reason: the
        request's activity tag when set ("translation", "tlb_miss",
        "fault_wait", ...), else the mechanical ``default``."""
        if end <= start:
            return
        block = runner.block
        reason = default if req is None else (req.tag or default)
        self.tracer.record(self._warp_id(runner), block.block_id,
                           "stall", start, end, reason,
                           sm=block.sm_index)

    def _issue_ev(self, runner: _WarpRunner, start: float,
                  end: float) -> None:
        """Record one issue-server occupancy interval of this warp."""
        if end <= start:
            return
        block = runner.block
        self.tracer.record(self._warp_id(runner), block.block_id,
                           "issue", start, end, sm=block.sm_index)

    def _translation_ev(self, runner: _WarpRunner, start: float,
                        end: float, iss: float, lat: float,
                        hid: float) -> None:
        """Record the translation-cycle decomposition of one request:
        ``iss`` issue slots consumed, ``lat`` warp-visible latency the
        translation chains added (exposed at warp level), ``hid`` chain
        cycles absorbed by the memory bubble or bandwidth queue (hidden
        even at warp level).  The analyzer reclassifies ``iss``/``lat``
        at launch level using concurrent-warp overlap."""
        if iss <= 0 and lat <= 0 and hid <= 0:
            return
        block = runner.block
        self.tracer.record(
            self._warp_id(runner), block.block_id, "translation",
            start, max(end, start),
            f"iss={iss:.6g};lat={lat:.6g};hid={hid:.6g}",
            sm=block.sm_index)

    def _slice_issue(self, req, runner: _WarpRunner, now: float,
                     sm: int) -> bool:
        """Issue one slice of an oversized instruction block; returns
        True if the request was sliced (and re-queued)."""
        if req.count <= self.ISSUE_SLICE:
            return False
        spec = self.spec
        start = max(now, self._issue_avail[sm])
        issue_time = self.ISSUE_SLICE / self._eff_ipc
        self._issue_avail[sm] = start + issue_time
        self.stats.issue_busy += issue_time
        self.stats.instructions += self.ISSUE_SLICE
        if self.profile is not None:
            self.profile.sm_busy[sm] += issue_time
            self.profile.stall("issue_queue", start - now)
        if self.sampler is not None:
            self.sampler.issue(sm, start, issue_time, self.ISSUE_SLICE)
            self.sampler.stall("issue_queue", start, start - now)
        req.count -= self.ISSUE_SLICE
        chain = (req.chain_length() if isinstance(req, Compute)
                 else req.chain)
        used = min(chain, self.ISSUE_SLICE)
        req.chain = chain - used
        latency = used * spec.dependent_issue_cycles
        if self.tracer is not None:
            wake = start + max(issue_time, latency)
            self._stall(runner, None, "issue_queue", now, start)
            self._issue_ev(runner, start, start + issue_time)
            self._stall(runner, req, "exec_dependency",
                        start + issue_time, wake)
        runner.pending_req = req
        self._schedule(runner, start + max(issue_time, latency),
                       STALL_EXEC)
        return True

    # -- dispatch ------------------------------------------------------
    def _dispatch(self, req, runner: _WarpRunner, now: float) -> None:
        handler = self._handlers.get(type(req))
        if handler is None:
            # Subclassed requests fall back to an isinstance scan once,
            # then dispatch via the table like everything else.
            for base, fn in list(self._handlers.items()):
                if isinstance(req, base):
                    self._handlers[type(req)] = handler = fn
                    break
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown request {req!r}")
        handler(req, runner, now)

    def _h_compute(self, req: Compute, runner: _WarpRunner,
                   now: float) -> None:
        spec = self.spec
        sm = runner.block.sm_index
        if self._slice_issue(req, runner, now, sm):
            return
        start = max(now, self._issue_avail[sm])
        issue_time = req.count / self._eff_ipc
        self._issue_avail[sm] = start + issue_time
        self.stats.issue_busy += issue_time
        latency = (spec.macro_op_overhead_cycles
                   + req.chain_length() * spec.dependent_issue_cycles)
        self.stats.instructions += req.count
        done = start + max(issue_time, latency)
        if self.profile is not None:
            self.profile.sm_busy[sm] += issue_time
            self.profile.stall("issue_queue", start - now)
            self.profile.stall("exec_dependency",
                               latency - issue_time)
        if self.sampler is not None:
            self.sampler.issue(sm, start, issue_time, req.count)
            self.sampler.stall("issue_queue", start, start - now)
            self.sampler.stall("exec_dependency", done,
                               latency - issue_time)
        self._trace(runner, req, start, done)
        if self.tracer is not None:
            self._stall(runner, None, "issue_queue", now, start)
            self._issue_ev(runner, start, start + issue_time)
            self._stall(runner, req, "exec_dependency",
                        start + issue_time, done)
            tr = (req.tags.get("translation")
                  if req.tags is not None else None)
            if tr is not None:
                dep = spec.dependent_issue_cycles
                pre = min(tr[1], req.chain_length()) * dep
                done0 = start + max(issue_time, latency - pre)
                pre_x = done - done0
                self._translation_ev(runner, start, done,
                                     tr[0] / self._eff_ipc,
                                     pre_x, pre - pre_x)
        self._schedule(runner, done, STALL_EXEC)

    def _h_scratch(self, req: ScratchAccess, runner: _WarpRunner,
                   now: float) -> None:
        spec = self.spec
        sm = runner.block.sm_index
        start = max(now, self._issue_avail[sm])
        issue_time = req.count / self._eff_ipc
        self._issue_avail[sm] = start + issue_time
        self.stats.instructions += req.count
        self.stats.scratch_accesses += req.count
        done = start + max(issue_time, spec.scratchpad_latency_cycles)
        if self.profile is not None:
            self.profile.sm_busy[sm] += issue_time
            self.profile.stall("issue_queue", start - now)
            self.profile.stall("scratch", done - start - issue_time)
        if self.sampler is not None:
            self.sampler.issue(sm, start, issue_time, req.count)
            self.sampler.stall("issue_queue", start, start - now)
            self.sampler.stall("scratch", done,
                               done - start - issue_time)
        self._trace(runner, req, start, done)
        if self.tracer is not None:
            self._stall(runner, None, "issue_queue", now, start)
            self._issue_ev(runner, start, start + issue_time)
            self._stall(runner, req, "scratch",
                        start + issue_time, done)
        self._schedule(runner, done, STALL_SCRATCH)

    def _h_atomic(self, req: AtomicOp, runner: _WarpRunner,
                  now: float) -> None:
        spec = self.spec
        key = (runner.block.device_index, req.address)
        avail = self._atomic_avail.get(key, 0.0)
        start = max(now, avail)
        # Pipelined: the address accepts another atomic after the
        # issue interval; the issuing warp sees the full latency.
        self._atomic_avail[key] = (
            start + spec.atomic_interval_cycles)
        self.stats.atomics += 1
        done = start + spec.atomic_latency_cycles
        if self.profile is not None:
            self.profile.stall("atomic", done - now)
        if self.sampler is not None:
            self.sampler.stall("atomic", done, done - now)
        self._trace(runner, req, start, done)
        if self.tracer is not None:
            self._stall(runner, req, "atomic", now, done)
        self._schedule(runner, done, STALL_ATOMIC)

    def _h_fence(self, req: LoadFence, runner: _WarpRunner,
                 now: float) -> None:
        if self.profile is not None:
            self.profile.stall("memory", runner.outstanding - now)
        if self.sampler is not None:
            self.sampler.stall("memory", max(runner.outstanding,
                                             now),
                               runner.outstanding - now)
        if self.tracer is not None:
            self._stall(runner, req, "memory", now,
                        runner.outstanding)
        self._schedule(runner, max(now, runner.outstanding), STALL_MEM)

    def _h_barrier(self, req: Barrier, runner: _WarpRunner,
                   now: float) -> None:
        self._dispatch_barrier(runner, now)

    def _h_acquire(self, req: AcquireLock, runner: _WarpRunner,
                   now: float) -> None:
        spec = self.spec
        lock = req.lock
        lock.acquisitions += 1
        cost = (spec.atomic_latency_cycles if lock.latency is None
                else lock.latency)
        if lock.holder is None:
            lock.holder = runner
            self.stats.lock_acquisitions += 1
            if self.tracer is not None:
                self._stall(runner, req, "lock", now, now + cost)
            self._schedule(runner, now + cost, STALL_LOCK)
        else:
            lock.contended += 1
            self.stats.lock_contentions += 1
            lock.waiters.append((runner, now, req.tag))

    def _h_release(self, req: ReleaseLock, runner: _WarpRunner,
                   now: float) -> None:
        spec = self.spec
        lock = req.lock
        lock.holder = None
        if lock.waiters:
            waiter, enqueued, wtag = lock.waiters.pop(0)
            lock.holder = waiter
            self.stats.lock_acquisitions += 1
            cost = (spec.atomic_latency_cycles if lock.latency is None
                    else lock.latency)
            if self.profile is not None:
                self.profile.stall("lock", now - enqueued)
            if self.sampler is not None:
                self.sampler.stall("lock", now, now - enqueued)
            if self.tracer is not None:
                block = waiter.block
                self.tracer.record(self._warp_id(waiter),
                                   block.block_id, "stall",
                                   enqueued, now + cost,
                                   wtag or "lock",
                                   sm=block.sm_index)
            self._schedule(waiter, now + cost, STALL_LOCK)
        self._schedule(runner, now, STALL_READY)

    def _h_pcie(self, req: PcieTransfer, runner: _WarpRunner,
                now: float) -> None:
        # The link is busy only while bytes move (DMA engines
        # pipeline); the fixed latency is visible to the requesting
        # warp but does not serialise the link.  Host-side per-batch
        # setup costs go through HostCompute instead — that is the
        # CPU-centric bottleneck of the paper's Figure 1.
        spec = self.spec
        dev = runner.block.device_index
        start = max(now, self._pcie_avail[dev])
        xfer = req.nbytes / self._pcie_bpc
        self._pcie_avail[dev] = start + xfer
        self.stats.pcie_busy += xfer
        self.stats.pcie_bytes += req.nbytes
        self.stats.pcie_transactions += 1
        fixed = 0.0 if req.latency_free else spec.pcie_latency_cycles()
        done = start + xfer + fixed
        if self.profile is not None:
            self.profile.stall("io", done - now)
        if self.sampler is not None:
            self.sampler.pcie(start, req.nbytes, xfer)
            self.sampler.stall("io", done, done - now)
        self._trace(runner, req, start, done)
        if self.tracer is not None:
            self._stall(runner, req, "io", now, done)
        self._maybe_preempt(runner, now, done)
        self._schedule(runner, done, STALL_IO)

    def _h_host(self, req: HostCompute, runner: _WarpRunner,
                now: float) -> None:
        if self._host_gated:
            # Sharded execution: the parent owns the host server.
            # Park and strict-stop; grant_host() replays completion
            # with the parent's serialised timing.
            self._parked = (req, runner, now)
            return
        start = max(now, self._host_avail)
        done = start + req.seconds * self.spec.clock_hz
        self._host_avail = done
        self._complete_host(req, runner, now, start, done)

    def _complete_host(self, req: HostCompute, runner: _WarpRunner,
                       now: float, start: float, done: float) -> None:
        self.stats.host_seconds += req.seconds
        if self.profile is not None:
            self.profile.stall("io", done - now)
        if self.sampler is not None:
            self.sampler.stall("io", done, done - now)
        self._trace(runner, req, start, done)
        if self.tracer is not None:
            self._stall(runner, req, "io", now, done)
        self._maybe_preempt(runner, now, done)
        self._schedule(runner, done, STALL_IO)

    def _h_sleep(self, req: Sleep, runner: _WarpRunner,
                 now: float) -> None:
        self.stats.sleep_cycles += req.cycles
        if req.cycles:
            self._trace(runner, req, now, now + req.cycles)
            if self.tracer is not None:
                self._stall(runner, req,
                            "spin" if req.io_wait else "sleep",
                            now, now + req.cycles)
        if self.profile is not None:
            self.profile.stall("spin" if req.io_wait else "sleep",
                               req.cycles)
        if self.sampler is not None:
            self.sampler.stall("spin" if req.io_wait else "sleep",
                               now + req.cycles, req.cycles)
        if req.io_wait:
            self._maybe_preempt(runner, now, now + req.cycles)
        self._schedule(runner, now + req.cycles, STALL_SLEEP)

    def _h_mem(self, req: MemAccess, runner: _WarpRunner,
               now: float) -> None:
        sm = runner.block.sm_index
        if self._slice_issue(req, runner, now, sm):
            return
        self._dispatch_mem(req, runner, now, sm)

    def _dispatch_mem(self, req: MemAccess, runner: _WarpRunner,
                      now: float, sm: int) -> None:
        spec = self.spec
        start = max(now, self._issue_avail[sm])
        issue_time = (req.count + 1) / self._eff_ipc
        self._issue_avail[sm] = start + issue_time
        self.stats.issue_busy += issue_time
        self.stats.instructions += req.count + 1
        nbytes = req.transactions * spec.dram_transaction_bytes
        self.stats.dram_bytes += nbytes
        self.stats.dram_transactions += req.transactions
        # Serial chain before the access can be issued.
        pre_done = (start + spec.macro_op_overhead_cycles
                    + req.chain * spec.dependent_issue_cycles)
        dev = runner.block.device_index
        dram_avail = self._dram_avail[dev]
        dram_start = max(pre_done, dram_avail)
        self._dram_avail[dev] = dram_start + nbytes / self._dram_bpc
        self.stats.dram_busy += nbytes / self._dram_bpc
        if self.profile is not None:
            self.profile.sm_busy[sm] += issue_time
            self.profile.stall("issue_queue", start - now)
            self.profile.dram_queue_cycles += dram_start - pre_done
            self.profile.dram_queued_accesses += 1
        if self.sampler is not None:
            self.sampler.issue(sm, start, issue_time, req.count + 1)
            self.sampler.stall("issue_queue", start, start - now)
            self.sampler.dram(dram_start, nbytes, req.transactions,
                              nbytes / self._dram_bpc,
                              dram_start - pre_done)
        dep = spec.dependent_issue_cycles
        tr_attr = False
        tr_cnt = tr_chain = pre = 0.0
        if self.tracer is not None:
            self._stall(runner, None, "issue_queue", now, start)
            self._issue_ev(runner, start, start + issue_time)
            tr = (req.tags.get("translation")
                  if req.tags is not None else None)
            tr_attr = tr is not None or req.chain_tag == "translation"
            if tr is not None:
                tr_cnt, tr_chain = tr
                tr_chain = min(tr_chain, req.chain)
            pre = tr_chain * dep
        if req.is_store:
            self.stats.stores += 1
            resume = max(pre_done, start + issue_time)
            if self.tracer is not None:
                self._stall(runner, req, "exec_dependency",
                            start + issue_time, resume)
                if tr_attr:
                    # Counterfactual: where the warp would resume with
                    # the translation pre-chain removed.
                    resume0 = max(pre_done - pre, start + issue_time)
                    pre_x = resume - resume0
                    self._translation_ev(runner, start, resume,
                                         tr_cnt / self._eff_ipc,
                                         pre_x, pre - pre_x)
            self._schedule(runner, resume, STALL_EXEC)
            return
        self.stats.loads += 1
        data_ready = dram_start + spec.dram_latency_cycles
        self._trace(runner, req, start, data_ready)
        if req.nonblocking:
            # Memory-level parallelism: the warp keeps issuing; a
            # LoadFence later waits for the slowest outstanding load.
            runner.outstanding = max(runner.outstanding, data_ready)
            resume = max(pre_done, start + issue_time)
            if self.tracer is not None:
                self._stall(runner, req, "exec_dependency",
                            start + issue_time, resume)
                if tr_attr:
                    resume0 = max(pre_done - pre, start + issue_time)
                    pre_x = resume - resume0
                    self._translation_ev(runner, start, resume,
                                         tr_cnt / self._eff_ipc,
                                         pre_x, pre - pre_x)
            self._schedule(runner, resume, STALL_EXEC)
            return
        overlap_done = (pre_done
                        + req.overlap_chain * spec.dependent_issue_cycles)
        ready = max(data_ready, overlap_done)
        ready += req.post_chain * spec.dependent_issue_cycles
        final = max(ready, start + issue_time)
        if self.profile is not None:
            self.profile.stall("memory", ready - (start + issue_time))
        if self.sampler is not None:
            self.sampler.stall("memory", final,
                               ready - (start + issue_time))
        if self.tracer is not None:
            self._stall(runner, req, "memory", start + issue_time, final)
            if tr_attr:
                # Exposed pre-chain: extra delay the translation chain
                # added to the DRAM access start (counterfactual start
                # with the chain removed, still bounded by queueing).
                pre_x = dram_start - max(pre_done - pre, dram_avail)
                if req.chain_tag == "translation":
                    ov = req.overlap_chain * dep
                    ov_x = min(ov, max(0.0, overlap_done - data_ready))
                    post_x = req.post_chain * dep
                else:
                    ov = ov_x = post_x = 0.0
                self._translation_ev(runner, start, final,
                                     tr_cnt / self._eff_ipc,
                                     pre_x + ov_x + post_x,
                                     (pre - pre_x) + (ov - ov_x))
        self._schedule(runner, final, STALL_MEM)

    # ------------------------------------------------------------------
    def _maybe_preempt(self, runner: _WarpRunner, now: float,
                       resume: float) -> None:
        """§VII I/O preemption: if every live warp of this block is now
        stalled on a host transfer and work is queued, swap in a pending
        block on this SM (the stalled block keeps its state and resumes
        when its transfers land)."""
        spec = self.spec
        block = runner.block
        if not runner.io_stalled:
            runner.io_stalled = True
            block.io_stalled += 1
        if not spec.io_preemption:
            return
        if not self._pending_groups[block.device_index]:
            return
        running = block.live_warps - block.done_warps
        sm = block.sm_index
        # Most of the block is off-chip: save its context and bring in
        # queued work.  Oversubscription is bounded per SM (the saved
        # contexts live in spill memory, as GPUpIO proposes).
        threshold = max(1, (3 * running) // 4)
        if block.io_stalled >= threshold and self._extra_blocks[sm] < 4:
            self._extra_blocks[sm] += 1
            self.stats.preemptions += 1
            start_at = now + spec.preemption_cost_cycles
            self._start_next_block(sm, start_at)

    # ------------------------------------------------------------------
    def _dispatch_barrier(self, runner: _WarpRunner, now: float) -> None:
        block = runner.block
        block.barrier_waiting.append((runner, now))
        self.stats.barriers += 1
        self._release_barrier_if_complete(block, now)

    def _release_barrier_if_complete(self, block: BlockContext,
                                     now: float) -> None:
        waiting = block.barrier_waiting
        running = block.live_warps - block.done_warps
        if waiting and len(waiting) == running:
            release = max(t for _, t in waiting)
            block.barrier_waiting = []
            for waiter, arrived in waiting:
                if self.profile is not None:
                    self.profile.stall("barrier", release - arrived)
                if self.sampler is not None:
                    self.sampler.stall("barrier", release,
                                       release - arrived)
                if self.tracer is not None:
                    self._stall(waiter, None, "barrier", arrived, release)
                self._schedule(waiter, release, STALL_BARRIER)
