"""Timed request types yielded by warp coroutines to the engine.

A kernel never constructs these directly; :class:`repro.gpu.kernel.
WarpContext` builds them.  Each request describes one *macro-op* — a unit
of work whose resource usage and warp-visible latency the engine models.

Two costs are distinguished throughout:

``count``
    how many warp-instructions the macro-op *issues* (occupying SM issue
    bandwidth shared by all resident warps), and

``chain``
    the length of the dependent-instruction chain, which determines the
    latency the *issuing warp itself* observes.  The gap between the two
    is exactly the paper's free-computation bubble: instructions cost
    issue slots but their latency can be hidden by other warps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class Request:
    """Base class for timed requests."""

    # Attribution metadata, set by :class:`~repro.gpu.kernel.WarpContext`
    # only while a tracer is recording stall intervals.  Plain class
    # attributes (not dataclass fields) so subclass constructors keep
    # their positional signatures and an untagged request costs nothing.
    #
    # ``tag`` names the activity the request belongs to ("translation",
    # "tlb_miss", "fault_wait", ...) and refines the recorded stall
    # reason; ``tags`` maps tag -> [count, chain] for charged work that
    # was folded into this request; ``chain_tag`` marks a MemAccess's
    # overlap/post chains as belonging to that activity.
    tag = ""
    tags = None
    chain_tag = ""


@dataclass
class Compute(Request):
    """Execute ``count`` warp-instructions with a dependent chain."""

    count: float
    chain: Optional[float] = None

    def chain_length(self) -> float:
        return self.count if self.chain is None else self.chain


@dataclass
class MemAccess(Request):
    """A global-memory access by the whole warp.

    ``transactions`` 128-byte DRAM transactions are charged against the
    shared bandwidth server.  ``is_store`` accesses do not stall the warp
    (write-back semantics); loads stall it for the DRAM latency.
    ``overlap_chain`` models speculative prefetch: a dependent instruction
    chain executed *in parallel* with the memory access (the warp resumes
    at ``max(mem_latency, overlap_chain)``).
    """

    transactions: int
    is_store: bool = False
    count: float = 0.0            # extra instructions issued with the access
    chain: float = 0.0            # serialized chain before the access
    overlap_chain: float = 0.0    # chain overlapped with the access
    post_chain: float = 0.0       # chain after the data arrives
    nonblocking: bool = False     # issue and continue (MLP); see LoadFence


@dataclass
class LoadFence(Request):
    """Wait until every outstanding non-blocking load has arrived."""


@dataclass
class ScratchAccess(Request):
    """Per-threadblock scratchpad access (fixed small latency)."""

    count: float = 1.0


@dataclass
class AtomicOp(Request):
    """Global-memory atomic; serializes on its target address."""

    address: int


@dataclass
class Barrier(Request):
    """``__syncthreads()`` — wait for every warp in the threadblock."""


@dataclass
class AcquireLock(Request):
    """Block until the given :class:`TimedLock` is free, then hold it."""

    lock: "TimedLock"


@dataclass
class ReleaseLock(Request):
    lock: "TimedLock"


@dataclass
class PcieTransfer(Request):
    """A DMA transfer over the PCIe link (either direction).

    ``latency_free`` transfers ride an already-issued DMA batch: they
    consume link bandwidth but pay no per-transaction fixed cost.
    """

    nbytes: int
    to_device: bool = True
    latency_free: bool = False


@dataclass
class HostCompute(Request):
    """Time spent on the host CPU (e.g. servicing an RPC), in seconds."""

    seconds: float


@dataclass
class Sleep(Request):
    """Stall the warp for a fixed number of cycles.

    ``io_wait`` marks the sleep as waiting on off-chip I/O (page-ready
    spins, riding a DMA batch) so the §VII preemption heuristic can see
    the warp as stalled.
    """

    cycles: float
    io_wait: bool = False


class TimedLock:
    """A mutex whose contention is simulated by the engine.

    The engine parks warps that try to acquire a held lock and wakes one
    of them (FIFO) when the holder releases.  Locks are the mechanism
    behind the paper's deadlock discussion: naive per-thread fault
    handling would have threads of one warp block each other here, which
    the warp-level translation aggregation avoids by construction.
    """

    __slots__ = ("name", "holder", "waiters", "acquisitions", "contended",
                 "latency")

    def __init__(self, name: str = "lock", latency: float | None = None):
        self.name = name
        self.holder = None
        self.waiters: list = []
        self.acquisitions = 0
        self.contended = 0
        # Acquire cost in cycles; None means the device atomic latency
        # (global-memory lock).  Scratchpad locks set a smaller value.
        self.latency = latency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "held" if self.holder is not None else "free"
        return f"<TimedLock {self.name} {state} waiters={len(self.waiters)}>"
