"""Kernel authoring interface: warp and threadblock contexts.

A *kernel* is a Python generator function ``kernel(ctx, *args)`` that the
engine instantiates **once per warp**.  Inside, the 32 lanes are
represented by numpy vectors (``ctx.lane``, ``ctx.global_tid`` ...), and
every timed operation is invoked with ``yield from``:

    def copy_kernel(ctx, src, dst, n):
        idx = ctx.global_tid
        vals = yield from ctx.load(src + idx * 4, "f4")
        yield from ctx.store(dst + idx * 4, vals, "f4")

Pure per-lane arithmetic does not need to yield; its cost is recorded via
:meth:`WarpContext.charge` and folded into the next timed operation, the
same way real instructions fill issue slots between memory accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

import numpy as np

from repro.gpu import warp_primitives as wp
from repro.gpu.instructions import (
    AcquireLock,
    AtomicOp,
    Barrier,
    Compute,
    HostCompute,
    LoadFence,
    MemAccess,
    PcieTransfer,
    ReleaseLock,
    Request,
    ScratchAccess,
    Sleep,
    TimedLock,
)
from repro.gpu.memory import GlobalMemory, Scratchpad
from repro.gpu.specs import GPUSpec


@dataclass
class BlockContext:
    """State shared by all warps of one threadblock."""

    block_id: int
    threads: int
    warps: int
    scratchpad: Scratchpad
    shared: dict = field(default_factory=dict)

    # Engine-internal barrier bookkeeping.
    barrier_waiting: list = field(default_factory=list)
    live_warps: int = 0
    done_warps: int = 0
    sm_index: int = -1
    # I/O preemption bookkeeping (§VII what-if).
    io_stalled: int = 0
    preempted: bool = False
    # Which device this block runs on (multi-GPU co-simulation).
    device_index: int = 0


class WarpContext:
    """Per-warp execution context handed to kernels.

    Exposes lane identity, global memory access, scratchpad access, warp
    intrinsics, locks, barriers, and the raw ``charge``/``compute`` cost
    hooks used by the ActivePointers layer.
    """

    #: Runtime sanitizer (``repro.analysis.sanitizer``) observing this
    #: warp, or ``None``.  A class attribute so instrumentation sites
    #: (``APtr.__init__``, ``GPUfs.gmmap``) pay one attribute test when
    #: sanitization is off, mirroring the ``tracer is None`` guard.
    sanitizer = None

    def __init__(self, spec: GPUSpec, memory: GlobalMemory,
                 block: BlockContext, warp_in_block: int, tracer=None):
        self.spec = spec
        self.memory = memory
        self.block = block
        self.tracer = tracer
        self.warp_in_block = warp_in_block
        self.warp_size = spec.warp_size
        self.lane = wp.lane_ids(spec.warp_size)
        self.active = np.ones(spec.warp_size, dtype=bool)
        tid0 = block.block_id * block.threads + warp_in_block * spec.warp_size
        self.global_tid = tid0 + self.lane
        self.block_tid = warp_in_block * spec.warp_size + self.lane
        self._pending_count = 0.0
        self._pending_chain = 0.0
        # Attribution state, only maintained while a tracer is attached
        # (the stall-interval recording of ``repro.telemetry.attribution``):
        # ``_activity`` is a stack of activity tags ("translation",
        # "fault_wait", ...) and ``_pending_tags`` splits the pending
        # charge per tag so the engine can decompose it later.
        self._activity: list[str] = []
        self._pending_tags: dict[str, list] = {}
        # Causal request spans: ``begin_request`` mints a deterministic
        # id at warp fault / syscall entry; every span recorded until
        # the matching ``end_request`` carries it, linking translation,
        # fault handling, readahead and staging for one logical request.
        self._request_depth = 0
        self._request_seq = 0
        self._request_id = ""
        self.now = 0.0

    # ------------------------------------------------------------------
    # Identity helpers
    # ------------------------------------------------------------------
    @property
    def block_id(self) -> int:
        return self.block.block_id

    @property
    def warp_id(self) -> int:
        return self.block.block_id * self.block.warps + self.warp_in_block

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def trace_span(self, kind: str, start: float, end: float,
                   detail: str = "") -> None:
        """Record a layer-level span (fault handling, page-in, ...).

        No-op without an attached tracer; call sites on hot paths should
        still guard with ``if ctx.tracer is not None`` so they do not
        pay for building ``detail`` strings when tracing is off.
        """
        if self.tracer is None:
            return
        self.tracer.record(self.warp_id, self.block_id, kind, start, end,
                           detail, sm=self.block.sm_index,
                           req=self._request_id)

    def begin_request(self) -> None:
        """Open a causal request scope (pair with :meth:`end_request`,
        ideally via ``try/finally``).

        At the outermost entry a request id ``"<device>:<warp>:<seq>"``
        is minted from simulated state only — deterministic across
        reruns and across ``jobs=1``/``jobs=N`` sharding.  Nested
        begins (a syscall whose page loop faults, a fault whose
        handler issues readahead) reuse the outer id, so every span a
        warp records until the matching end shares one request.  No-op
        without a tracer — zero-cost when tracing is off.
        """
        if self.tracer is None:
            return
        if self._request_depth == 0:
            self._request_id = (f"{self.block.device_index}:"
                                f"{self.warp_id}:{self._request_seq}")
            self._request_seq += 1
        self._request_depth += 1

    def end_request(self) -> None:
        """Close the innermost causal request scope."""
        if self.tracer is None:
            return
        if self._request_depth > 0:
            self._request_depth -= 1
            if self._request_depth == 0:
                self._request_id = ""

    def push_activity(self, tag: str) -> None:
        """Enter an attribution activity (pair with :meth:`pop_activity`,
        ideally via ``try/finally``).  While active, charged work and
        yielded requests are tagged ``tag`` so the stall-interval
        recorder can name the reason a warp was not issuing.  No-op
        without a tracer — attribution is zero-cost when off."""
        if self.tracer is not None:
            self._activity.append(tag)

    def pop_activity(self) -> None:
        if self.tracer is not None and self._activity:
            self._activity.pop()

    @property
    def activity(self) -> str:
        """The innermost active attribution tag ('' when none)."""
        return self._activity[-1] if self._activity else ""

    # ------------------------------------------------------------------
    # Instruction cost accounting
    # ------------------------------------------------------------------
    def charge(self, count: float, chain: Optional[float] = None,
               tag: str = "") -> None:
        """Record ``count`` warp-instructions of un-yielded work.

        The cost is folded into the next timed request the warp issues,
        exactly as real ALU instructions occupy issue slots between
        memory operations.  ``tag`` attributes the work to an activity
        ("translation", ...) for the stall recorder; it defaults to the
        innermost :meth:`push_activity` tag and is only tracked while a
        tracer is attached — timing is identical either way.
        """
        chain = count if chain is None else chain
        self._pending_count += count
        self._pending_chain += chain
        if self.tracer is not None:
            tag = tag or self.activity
            if tag:
                slot = self._pending_tags.get(tag)
                if slot is None:
                    self._pending_tags[tag] = [count, chain]
                else:
                    slot[0] += count
                    slot[1] += chain

    def _take_pending(self) -> tuple[float, float, Optional[dict]]:
        count, chain = self._pending_count, self._pending_chain
        self._pending_count = 0.0
        self._pending_chain = 0.0
        tags = self._pending_tags or None
        if tags is not None:
            self._pending_tags = {}
        return count, chain, tags

    def _tagged(self, req: Request, tags: Optional[dict],
                tag: str = "") -> Request:
        """Attach attribution metadata to an outgoing request (only when
        a tracer is attached; otherwise the class defaults stay)."""
        if self.tracer is not None:
            tag = tag or self.activity
            if tag:
                req.tag = tag
            if tags:
                req.tags = tags
        return req

    def compute(self, count: float, chain: Optional[float] = None
                ) -> Iterator[Request]:
        """Explicitly execute a block of ALU work now."""
        pc, pch, tags = self._take_pending()
        chain = count if chain is None else chain
        self.now = yield self._tagged(
            Compute(count=count + pc, chain=chain + pch), tags)

    def flush(self) -> Iterator[Request]:
        """Flush any pending charged instructions as a compute op."""
        pc, pch, tags = self._take_pending()
        if pc or pch:
            self.now = yield self._tagged(Compute(count=pc, chain=pch),
                                          tags)

    # ------------------------------------------------------------------
    # Global memory
    # ------------------------------------------------------------------
    def load(self, addrs, dtype: str = "f4", mask=None,
             overlap_chain: float = 0.0, post_chain: float = 0.0,
             chain_tag: str = "") -> Iterator[Request]:
        """Warp-wide gather from global memory.

        ``overlap_chain`` and ``post_chain`` support the speculative
        prefetch optimisation (§IV-B): the overlap chain runs while the
        data is in flight; the post chain runs after it arrives.
        ``chain_tag`` attributes those chains to an activity for the
        stall recorder (the translation layer passes ``"translation"``).
        """
        addrs = self._addr_vec(addrs)
        width = int(np.dtype(dtype).itemsize)
        tx = self.memory.transactions_for(addrs, width, mask=mask)
        pc, pch, tags = self._take_pending()
        req = MemAccess(transactions=tx, is_store=False, count=pc,
                        chain=pch, overlap_chain=overlap_chain,
                        post_chain=post_chain)
        if chain_tag and self.tracer is not None:
            req.chain_tag = chain_tag
        self.now = yield self._tagged(req, tags)
        return self.memory.load_vector(addrs, dtype, mask=mask)

    def store(self, addrs, values, dtype: str = "f4", mask=None
              ) -> Iterator[Request]:
        """Warp-wide scatter to global memory (write-back, non-stalling)."""
        addrs = self._addr_vec(addrs)
        width = int(np.dtype(dtype).itemsize)
        tx = self.memory.transactions_for(addrs, width, mask=mask)
        self.memory.store_vector(addrs, values, dtype, mask=mask)
        pc, pch, tags = self._take_pending()
        self.now = yield self._tagged(
            MemAccess(transactions=tx, is_store=True, count=pc,
                      chain=pch), tags)

    def load_wide(self, addrs, dtype: str = "f4", elems: int = 4,
                  mask=None, overlap_chain: float = 0.0,
                  post_chain: float = 0.0,
                  nonblocking: bool = False,
                  chain_tag: str = "") -> Iterator[Request]:
        """Vector load: ``elems`` consecutive elements per lane in one
        memory transaction group (the 8/16-byte loads of §VI-A/B).

        ``nonblocking`` issues the load without waiting for the data
        (memory-level parallelism); call :meth:`fence` before using the
        values' timing-wise.
        """
        addrs = self._addr_vec(addrs)
        width = int(np.dtype(dtype).itemsize) * elems
        tx = self.memory.transactions_for(addrs, width, mask=mask)
        pc, pch, tags = self._take_pending()
        req = MemAccess(transactions=tx, is_store=False, count=pc,
                        chain=pch, overlap_chain=overlap_chain,
                        post_chain=post_chain,
                        nonblocking=nonblocking)
        if chain_tag and self.tracer is not None:
            req.chain_tag = chain_tag
        self.now = yield self._tagged(req, tags)
        return self.memory.load_vector_wide(addrs, dtype, elems, mask=mask)

    def fence(self) -> Iterator[Request]:
        """Wait for all outstanding non-blocking loads to arrive."""
        yield from self.flush()
        self.now = yield LoadFence()

    def store_wide(self, addrs, values, dtype: str = "f4",
                   mask=None) -> Iterator[Request]:
        """Vector store: ``values`` of shape (lanes, elems) written as one
        wide access per lane."""
        addrs = self._addr_vec(addrs)
        values = np.asarray(values)
        elems = values.shape[1]
        width = int(np.dtype(dtype).itemsize)
        tx = self.memory.transactions_for(addrs, width * elems, mask=mask)
        for j in range(elems):
            self.memory.store_vector(addrs + j * width, values[:, j],
                                     dtype, mask=mask)
        pc, pch, tags = self._take_pending()
        self.now = yield self._tagged(
            MemAccess(transactions=tx, is_store=True, count=pc,
                      chain=pch), tags)

    def load_scalar(self, addr: int, dtype: str = "u8") -> Iterator[Request]:
        """Single-address load performed by the warp leader."""
        vals = yield from self.load(np.full(1, int(addr), np.int64), dtype)
        return vals[0]

    def store_scalar(self, addr: int, value, dtype: str = "u8"
                     ) -> Iterator[Request]:
        """Single-address store performed by the warp leader."""
        yield from self.store(np.full(1, int(addr), np.int64),
                              np.array([value], dtype=np.dtype(dtype)),
                              dtype)

    def atomic_add(self, addr: int, value: int = 1,
                   dtype: str = "i8") -> Iterator[Request]:
        """Scalar atomic add at a global address; returns the old value."""
        old = int(self.memory.load_vector(
            np.array([addr]), dtype)[0])
        self.memory.store_vector(np.array([addr]),
                                 np.array([old + value]), dtype)
        self.now = yield self._tagged(AtomicOp(address=int(addr)), None)
        return old

    # ------------------------------------------------------------------
    # Scratchpad
    # ------------------------------------------------------------------
    def scratch(self, count: float = 1.0) -> Iterator[Request]:
        """Charge a scratchpad access (data lives in ``block.scratchpad``)."""
        pc, pch, tags = self._take_pending()
        if pc or pch:
            self.now = yield self._tagged(Compute(count=pc, chain=pch),
                                          tags)
        self.now = yield self._tagged(ScratchAccess(count=count), None)

    # ------------------------------------------------------------------
    # Warp intrinsics (single-instruction cost, charged lazily)
    # ------------------------------------------------------------------
    def ballot(self, pred) -> int:
        self.charge(1)
        return wp.ballot(pred, self.active)

    def all(self, pred) -> bool:
        self.charge(1)
        return wp.all_sync(pred, self.active)

    def any(self, pred) -> bool:
        self.charge(1)
        return wp.any_sync(pred, self.active)

    def shfl(self, values, src_lane: int) -> np.ndarray:
        self.charge(1)
        return wp.shfl(values, src_lane)

    def shfl_xor(self, values, lane_mask: int) -> np.ndarray:
        self.charge(1)
        return wp.shfl_xor(values, lane_mask)

    def shfl_down(self, values, delta: int) -> np.ndarray:
        self.charge(1)
        return wp.shfl_down(values, delta)

    @staticmethod
    def ffs(mask: int) -> int:
        return wp.ffs(mask)

    @staticmethod
    def popc(mask: int) -> int:
        return wp.popc(mask)

    # ------------------------------------------------------------------
    # Synchronisation
    # ------------------------------------------------------------------
    def syncthreads(self) -> Iterator[Request]:
        yield from self.flush()
        self.now = yield Barrier()

    def lock(self, lock: TimedLock) -> Iterator[Request]:
        yield from self.flush()
        self.now = yield self._tagged(AcquireLock(lock), None)

    def unlock(self, lock: TimedLock) -> Iterator[Request]:
        self.now = yield ReleaseLock(lock)

    # ------------------------------------------------------------------
    # Host interaction (used by the paging layer)
    # ------------------------------------------------------------------
    def pcie(self, nbytes: int, to_device: bool = True,
             latency_free: bool = False) -> Iterator[Request]:
        yield from self.flush()
        self.now = yield self._tagged(
            PcieTransfer(nbytes=int(nbytes), to_device=to_device,
                         latency_free=latency_free), None)

    def host_compute(self, seconds: float) -> Iterator[Request]:
        self.now = yield self._tagged(
            HostCompute(seconds=float(seconds)), None)

    def sleep(self, cycles: float,
              io_wait: bool = False) -> Iterator[Request]:
        self.now = yield self._tagged(
            Sleep(cycles=float(cycles), io_wait=io_wait), None)

    def clock(self) -> Iterator[Request]:
        """Return the current simulated cycle count (GPU ``clock()``).

        Flushes charged-but-pending instructions first, so a timed
        region includes the cost of the arithmetic inside it.
        """
        yield from self.flush()
        self.now = yield Sleep(cycles=0.0)
        return self.now

    # ------------------------------------------------------------------
    def _addr_vec(self, addrs) -> np.ndarray:
        addrs = np.asarray(addrs, dtype=np.int64)
        if addrs.ndim == 0:
            addrs = np.full(self.warp_size, int(addrs), dtype=np.int64)
        return addrs


KernelFn = Callable[..., Iterator[Request]]
