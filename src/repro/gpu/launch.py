"""Consolidated engine launch API: :class:`LaunchPlan` + :class:`EngineHooks`.

These two small value objects replace the keyword-argument sprawl that
the engine's constructor and entry points accumulated PR over PR:

* :class:`EngineHooks` bundles every instrumentation hook a launch can
  carry — Chrome-trace tracer, :class:`~repro.gpu.engine.EngineProfile`
  deep counters, the cycle-window time-series sampler, and the runtime
  sanitizer — into one object passed as ``Engine(..., hooks=...)`` (or
  ``Device.launch(..., hooks=...)``).  Instrumented and uninstrumented
  launches are cycle-bit-identical; the engine only ever tests each
  hook against ``None``.
* :class:`LaunchPlan` describes *what* to run: one list of block
  factories per device, the resident-blocks-per-SM occupancy, and the
  hooks.  ``Engine.launch(plan)`` is the single entry point; the old
  ``Engine.run(...)`` / ``Engine.run_groups(...)`` names survive as
  deprecated shims for one release.

Neither class imports the engine, so they are cheap to construct and
safe to build in caller modules without circular imports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence


@dataclass
class EngineHooks:
    """Every instrumentation hook one launch can carry, in one bundle.

    All fields default to ``None`` (= off); a launch with the null
    bundle pays one pointer test per hook per event and nothing else.

    * ``tracer`` — Chrome-trace event recorder
      (:class:`repro.gpu.trace.Tracer`); also drives the attribution
      overlay of :mod:`repro.telemetry.attribution`.
    * ``profile`` — :class:`repro.gpu.engine.EngineProfile` deep
      per-launch counters (per-SM busy, stall mix, DRAM queueing).
    * ``sampler`` — cycle-window time-series sampler
      (:mod:`repro.telemetry.timeseries`).
    * ``sanitizer`` — runtime sanitizer
      (:mod:`repro.analysis.sanitizer`); consumed by
      :meth:`Device.launch_cfg` when building warp contexts (the
      engine itself never calls it).
    """

    tracer: Any = None
    profile: Any = None
    sampler: Any = None
    sanitizer: Any = None

    @property
    def null(self) -> bool:
        """True when no hook is attached (the zero-cost fast path)."""
        return (self.tracer is None and self.profile is None
                and self.sampler is None and self.sanitizer is None)


#: Shared immutable-by-convention null bundle for uninstrumented runs.
NULL_HOOKS = EngineHooks()


@dataclass
class LaunchPlan:
    """What one engine launch executes.

    ``groups`` holds one list of block factories per device (device *d*
    runs ``groups[d]`` on its own SMs and DRAM); a single-device launch
    uses :meth:`LaunchPlan.single`.  Each factory is a zero-argument
    callable returning ``(BlockContext, [warp generators])``.

    ``blocks_per_sm`` (the occupancy-derived resident-block limit) and
    ``hooks`` override the engine's constructor defaults when set.
    """

    groups: Sequence[Sequence[Callable]]
    blocks_per_sm: Optional[int] = None
    hooks: Optional[EngineHooks] = field(default=None, repr=False)

    def __post_init__(self):
        if callable(self.groups):
            raise TypeError(
                "LaunchPlan.groups must be a per-device list of block "
                "factory lists, not a callable")
        for group in self.groups:
            if callable(group):
                raise TypeError(
                    "LaunchPlan.groups is nested — one factory list "
                    "per device; for a single device use "
                    "LaunchPlan.single(factories)")

    @classmethod
    def single(cls, factories: Sequence[Callable],
               blocks_per_sm: Optional[int] = None,
               hooks: Optional[EngineHooks] = None) -> "LaunchPlan":
        """Plan a one-device launch from a flat factory list."""
        return cls(groups=[list(factories)], blocks_per_sm=blocks_per_sm,
                   hooks=hooks)

    @property
    def num_groups(self) -> int:
        return len(self.groups)


__all__ = ["EngineHooks", "LaunchPlan", "NULL_HOOKS"]
