"""GPU memory state: global memory and per-threadblock scratchpad.

Global memory is a single byte array.  Warp accesses are vectorised: a
load takes 32 lane byte-addresses and returns 32 values.  The number of
DRAM transactions is computed from the addresses exactly the way the
hardware coalescer does — distinct 128-byte segments touched by the
active lanes — so fully coalesced 4-byte accesses cost one transaction
and scattered accesses cost up to 32.
"""

from __future__ import annotations

import numpy as np

DTYPE_WIDTHS = {
    "u1": 1, "i1": 1,
    "u2": 2, "i2": 2,
    "u4": 4, "i4": 4, "f4": 4,
    "u8": 8, "i8": 8, "f8": 8,
}


class MemoryError_(Exception):
    """Raised on out-of-bounds simulated memory access."""


class GlobalMemory:
    """The GPU's global (device) memory.

    A bump allocator hands out regions; :meth:`load_vector` and
    :meth:`store_vector` perform the actual data movement for a warp.
    """

    def __init__(self, size: int, transaction_bytes: int = 128):
        self.size = int(size)
        self.transaction_bytes = int(transaction_bytes)
        self.data = np.zeros(self.size, dtype=np.uint8)
        self._next_free = 0

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(self, nbytes: int, align: int = 256) -> int:
        """Allocate ``nbytes`` and return the base address."""
        base = -(-self._next_free // align) * align
        if base + nbytes > self.size:
            raise MemoryError_(
                f"out of device memory: need {nbytes} at {base}, "
                f"capacity {self.size}"
            )
        self._next_free = base + nbytes
        return base

    def reset_allocator(self) -> None:
        self._next_free = 0

    @property
    def bytes_allocated(self) -> int:
        return self._next_free

    # ------------------------------------------------------------------
    # Scalar and bulk accessors (used by host-side code / DMA)
    # ------------------------------------------------------------------
    def read(self, addr: int, nbytes: int) -> np.ndarray:
        self._check(addr, nbytes)
        return self.data[addr:addr + nbytes]

    def write(self, addr: int, values: np.ndarray) -> None:
        raw = np.asarray(values).view(np.uint8).ravel()
        self._check(addr, raw.size)
        self.data[addr:addr + raw.size] = raw

    # ------------------------------------------------------------------
    # Warp-vector accessors
    # ------------------------------------------------------------------
    def load_vector(self, addrs: np.ndarray, dtype: str,
                    mask: np.ndarray | None = None) -> np.ndarray:
        """Gather one element of ``dtype`` per active lane."""
        width = DTYPE_WIDTHS[dtype]
        addrs = np.asarray(addrs, dtype=np.int64)
        out = np.zeros(addrs.shape, dtype=np.dtype(dtype))
        active = np.ones(addrs.shape, dtype=bool) if mask is None else mask
        if not active.any():
            return out
        sel = addrs[active]
        self._check_vec(sel, width)
        gathered = np.stack(
            [self.data[sel + i] for i in range(width)], axis=-1
        )
        out[active] = gathered.reshape(-1, width).copy().view(
            np.dtype(dtype)).ravel()
        return out

    def load_vector_wide(self, addrs: np.ndarray, dtype: str, elems: int,
                         mask: np.ndarray | None = None) -> np.ndarray:
        """Gather ``elems`` consecutive elements of ``dtype`` per lane
        (vectorised 8/16-byte loads).  Returns shape ``(lanes, elems)``."""
        width = DTYPE_WIDTHS[dtype]
        addrs = np.asarray(addrs, dtype=np.int64)
        cols = [self.load_vector(addrs + i * width, dtype, mask=mask)
                for i in range(elems)]
        return np.stack(cols, axis=1)

    def store_vector(self, addrs: np.ndarray, values: np.ndarray,
                     dtype: str, mask: np.ndarray | None = None) -> None:
        """Scatter one element of ``dtype`` per active lane."""
        width = DTYPE_WIDTHS[dtype]
        addrs = np.asarray(addrs, dtype=np.int64)
        values = np.asarray(values, dtype=np.dtype(dtype))
        active = np.ones(addrs.shape, dtype=bool) if mask is None else mask
        if not active.any():
            return
        sel = addrs[active]
        self._check_vec(sel, width)
        raw = values[active].copy().view(np.uint8).reshape(-1, width)
        for i in range(width):
            self.data[sel + i] = raw[:, i]

    def transactions_for(self, addrs: np.ndarray, width: int,
                         mask: np.ndarray | None = None) -> int:
        """DRAM transactions for a warp access (coalescer model)."""
        addrs = np.asarray(addrs, dtype=np.int64)
        if mask is not None:
            addrs = addrs[mask]
        if addrs.size == 0:
            return 0
        first = addrs // self.transaction_bytes
        last = (addrs + width - 1) // self.transaction_bytes
        segments = np.union1d(first, last)
        return int(segments.size)

    # ------------------------------------------------------------------
    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 0 or addr + nbytes > self.size:
            raise MemoryError_(
                f"device access [{addr}, {addr + nbytes}) out of bounds "
                f"(size {self.size})"
            )

    def _check_vec(self, addrs: np.ndarray, width: int) -> None:
        if addrs.size and (addrs.min() < 0 or addrs.max() + width > self.size):
            raise MemoryError_(
                f"device vector access out of bounds: "
                f"[{addrs.min()}, {addrs.max() + width}) size {self.size}"
            )


class Scratchpad:
    """Per-threadblock on-die scratchpad ("shared memory").

    Unlike global memory it is private to a threadblock, so it is handed
    to the block at launch.  It stores Python/numpy objects directly: the
    software TLB keeps its entries here.
    """

    def __init__(self, nbytes: int):
        self.nbytes = int(nbytes)
        self._used = 0
        self._arrays: dict[str, np.ndarray] = {}

    def alloc_array(self, name: str, count: int, dtype: str) -> np.ndarray:
        """Allocate a named typed array; raises if over capacity."""
        width = DTYPE_WIDTHS[dtype]
        need = count * width
        if self._used + need > self.nbytes:
            raise MemoryError_(
                f"scratchpad overflow: {self._used} + {need} > {self.nbytes}"
            )
        self._used += need
        arr = np.zeros(count, dtype=np.dtype(dtype))
        self._arrays[name] = arr
        return arr

    @property
    def bytes_used(self) -> int:
        return self._used
