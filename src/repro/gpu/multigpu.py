"""Multi-GPU co-simulation: run kernels on several devices at once.

Each device owns its SMs, DRAM bandwidth, and PCIe link; the host CPU
(RPC service) and simulated time are shared.  This is the substrate the
DSM layer (:mod:`repro.dsm`) uses for genuinely concurrent cluster
execution, and it models the multi-GPU node the paper's introduction
envisions.

Usage::

    results = launch_cluster([
        ClusterLaunch(device0, kernel_a, grid=4, block_threads=256),
        ClusterLaunch(device1, kernel_b, grid=4, block_threads=256),
    ])

Passing ``jobs=N`` shards the cluster one-device-per-engine with a
deterministic epoch barrier (see :mod:`repro.gpu.sharded`): ``jobs=1``
runs the shards in-process, ``jobs>1`` spreads them over a spawn-safe
process pool, and both produce identical merged results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import Device, LaunchResult
from repro.gpu.engine import Engine
from repro.gpu.kernel import BlockContext, KernelFn, WarpContext
from repro.gpu.launch import EngineHooks, LaunchPlan
from repro.gpu.memory import Scratchpad
from repro.gpu.occupancy import occupancy_limits


@dataclass
class ClusterLaunch:
    """One device's kernel in a concurrent multi-GPU launch."""

    device: Device
    kernel: KernelFn
    grid: int
    block_threads: int
    args: tuple = ()
    regs_per_thread: int = 64
    scratchpad_bytes: int = 0

    def __post_init__(self):
        if self.grid <= 0 or self.block_threads <= 0:
            raise ValueError("grid and block must be positive")


def _validate_cluster(launches: list[ClusterLaunch]):
    if not launches:
        raise ValueError("no launches")
    spec = launches[0].device.spec
    for launch in launches:
        if launch.device.spec is not spec:
            raise ValueError("all devices must share one GPUSpec")
    seen = set()
    for launch in launches:
        if id(launch.device) in seen:
            raise ValueError("one launch per device")
        seen.add(id(launch.device))
    return spec


def _plan_cluster(launches: list[ClusterLaunch], spec, tracer=None):
    """Occupancy-check every launch and build per-device factory lists.

    ``tracer`` threads into every :class:`WarpContext`, so layer-level
    spans (translation faults, page-ins, syscalls) land in cluster
    traces just as they do for single-device launches.
    """
    occupancies = []
    groups = []
    for launch in launches:
        occ = occupancy_limits(spec, launch.block_threads,
                               launch.regs_per_thread,
                               launch.scratchpad_bytes)
        if not occ.is_schedulable:
            raise ValueError(
                f"unschedulable kernel: {occ.limiting_factor}")
        occupancies.append(occ)
        warps_per_block = -(-launch.block_threads // spec.warp_size)

        def make_block(block_id: int, launch=launch,
                       warps_per_block=warps_per_block):
            def factory():
                block = BlockContext(
                    block_id=block_id,
                    threads=launch.block_threads,
                    warps=warps_per_block,
                    scratchpad=Scratchpad(
                        max(launch.scratchpad_bytes, 1)),
                )
                gens = []
                for w in range(warps_per_block):
                    ctx = WarpContext(spec, launch.device.memory,
                                      block, w, tracer=tracer)
                    gens.append(launch.kernel(ctx, *launch.args))
                return block, gens
            return factory

        groups.append([make_block(b) for b in range(launch.grid)])
    return occupancies, groups


def launch_cluster(launches: list[ClusterLaunch],
                   tracer=None,
                   jobs: int | None = None,
                   epoch_cycles: float | None = None) -> LaunchResult:
    """Run all launches concurrently; returns combined timing.

    Every device must share one :class:`GPUSpec` (a homogeneous
    cluster).  The returned result's ``cycles`` is the makespan across
    devices; ``stats`` aggregates all of them.

    ``jobs=None`` (default) runs every device inside one engine.
    ``jobs=N`` shards the cluster one engine per device with a
    deterministic epoch barrier — ``epoch_cycles`` bounds how far a
    shard runs ahead between barriers (defaults to the minimum
    cross-device interaction latency, the PCIe round-trip).  Sharded
    runs trace through per-shard spill files merged back into
    ``tracer`` (see :mod:`repro.gpu.sharded`); they are deterministic
    in ``jobs``.
    """
    spec = _validate_cluster(launches)
    if jobs is not None:
        from repro.gpu.sharded import launch_cluster_sharded
        return launch_cluster_sharded(launches, jobs=jobs,
                                      epoch_cycles=epoch_cycles,
                                      tracer=tracer)
    occupancies, groups = _plan_cluster(launches, spec, tracer=tracer)
    engine = Engine(spec, min(o.blocks_per_sm for o in occupancies),
                    hooks=EngineHooks(tracer=tracer),
                    num_devices=len(launches))
    cycles = engine.launch(LaunchPlan(groups=groups))
    for launch in launches:
        launch.device.total_cycles += cycles
        launch.device.launches += 1
    return LaunchResult(
        cycles=cycles,
        seconds=spec.cycles_to_seconds(cycles),
        stats=engine.stats,
        occupancy=occupancies[0],
    )
