"""Occupancy calculator.

Determines how many threadblocks of a kernel can be resident on one SM
simultaneously, which is what controls the GPU's latency hiding ability.
The paper pins every apointer kernel at 64 registers/thread precisely so
that full occupancy (2048 threads/SM on GK210) is retained; this module
reproduces that arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.specs import GPUSpec


@dataclass(frozen=True)
class OccupancyLimits:
    """Resident-block limits for one kernel on one SM."""

    blocks_per_sm: int
    limiting_factor: str

    @property
    def is_schedulable(self) -> bool:
        return self.blocks_per_sm > 0


def occupancy_limits(spec: GPUSpec, threads_per_block: int,
                     regs_per_thread: int = 64,
                     scratchpad_bytes: int = 0) -> OccupancyLimits:
    """Compute resident blocks/SM and which resource limits it."""
    if threads_per_block <= 0:
        raise ValueError("threads_per_block must be positive")
    if threads_per_block > spec.max_threads_per_sm:
        return OccupancyLimits(0, "threads_per_block exceeds SM capacity")

    candidates = {
        "max_blocks": spec.max_blocks_per_sm,
        "threads": spec.max_threads_per_sm // threads_per_block,
        "warps": spec.max_warps_per_sm
        // max(1, -(-threads_per_block // spec.warp_size)),
    }
    if regs_per_thread > 0:
        candidates["registers"] = spec.registers_per_sm // (
            regs_per_thread * threads_per_block)
    if scratchpad_bytes > 0:
        candidates["scratchpad"] = (
            spec.scratchpad_bytes_per_sm // scratchpad_bytes)

    limiting = min(candidates, key=lambda k: candidates[k])
    return OccupancyLimits(candidates[limiting], limiting)
