"""Deterministic sharded epoch execution for multi-GPU launches.

:func:`launch_cluster_sharded` runs each device of a
:func:`repro.gpu.multigpu.launch_cluster` on its **own engine** — in
process for ``jobs=1``, one spawn worker per device otherwise — and
recombines the results so that the merged stats, profiles, and memory
contents are identical regardless of the job count.

Synchronisation model
---------------------

Inside one device every resource (SMs, DRAM, PCIe, atomics) is private,
so shards never need to coordinate about them.  The only shared server
is the **host CPU**, which the parent owns:

* Every shard engine is host-gated (:meth:`Engine.gate_host`): the
  moment a warp yields :class:`HostCompute` the shard *parks* — it
  stops draining immediately (strict stop), so no later event consumes
  a sequence number before the host result is known, and resuming
  reproduces the shard-local event order of an unsharded run exactly.
* Shards otherwise advance in **epochs** of ``epoch_cycles`` simulated
  cycles (default: the PCIe round-trip, the minimum latency of any
  cross-device interaction), reporting at each epoch barrier.
* When every shard is parked, at a barrier, or finished, the parent
  serves the globally earliest parked request — ordered by ``(arrival
  cycle, shard index)`` — against the shared ``host_avail`` clock and
  resumes only that shard.  The grant is conservative-safe: unparked
  shards have drained past the barrier horizon, so none can still
  produce an earlier host request.

The decision sequence depends only on simulated time, never on wall
clock or scheduling, which is what makes ``jobs=1`` and ``jobs=N``
bit-identical.  Runs with no host work also match the unsharded
single-engine result exactly; with host work the only permitted
divergence from the unsharded path is the tie-break between host
requests arriving on different devices at the same cycle (global
sequence number there, ``(arrival, shard)`` here).

Tracers and samplers are unsupported (event streams cannot cross
process boundaries); per-shard :class:`EngineProfile` counters merge
via :meth:`EngineProfile.merged`.  Worker RNGs are seeded with the
stable per-shard :func:`repro.harness.runner.point_seed` before block
factories run, and progress heartbeats reuse the rate-limited
:class:`repro.harness.heartbeat.HeartbeatSender`.
"""

from __future__ import annotations

import math
import os
from queue import Empty

from repro.gpu.device import LaunchResult
from repro.gpu.engine import (
    ENGINE_MODE_ENV,
    Engine,
    EngineProfile,
    EngineStats,
    default_engine_mode,
)
from repro.gpu.launch import EngineHooks

#: Seconds without any worker message before the parent checks futures
#: for crashed workers (and ultimately gives up).
WORKER_TIMEOUT = 120.0


def default_epoch_cycles(spec) -> float:
    """Epoch barrier spacing: the minimum cross-device interaction
    latency.  Devices only interact through the host, and nothing
    reaches the host faster than one PCIe round-trip."""
    return max(1.0, spec.pcie_latency_cycles())


# ---------------------------------------------------------------------------
# Shard-side execution (shared by the in-process and worker paths).


def _build_shard(launch, blocks_per_sm: int, profile_on: bool) -> Engine:
    """One single-device engine for one :class:`ClusterLaunch`, gated
    on the host server and seeded with its block factories."""
    from repro.gpu.multigpu import _plan_cluster

    spec = launch.device.spec
    _, groups = _plan_cluster([launch], spec)
    hooks = EngineHooks(
        profile=EngineProfile.for_sms(spec.num_sms) if profile_on
        else None)
    engine = Engine(spec, blocks_per_sm, hooks=hooks, num_devices=1)
    engine.gate_host()
    engine.begin(groups)
    return engine


def _shard_status(engine: Engine, horizon: float) -> tuple:
    """Advance one shard to its next blocking point.

    Returns ``("parked", arrival, seconds)``, ``("waiting",)`` (epoch
    barrier reached), or ``("done",)``.
    """
    nxt = engine.advance(horizon)
    if engine.parked:
        arrival, seconds = engine.parked_host()
        return ("parked", arrival, seconds)
    if nxt == math.inf:
        return ("done",)
    return ("waiting",)


def _pick_grant(status: dict) -> tuple | None:
    """The globally earliest parked request, ordered by
    ``(arrival cycle, shard index)`` — the deterministic stand-in for
    the unsharded engine's global sequence tie-break."""
    parked = [(s[1], idx, s[2]) for idx, s in status.items()
              if s[0] == "parked"]
    if not parked:
        return None
    return min(parked)


def _shard_seed(base_seed: int, index: int) -> int:
    from repro.harness.runner import point_seed
    return point_seed("gpu.sharded", index, {"shard": index},
                      base_seed=base_seed)


# ---------------------------------------------------------------------------
# jobs=1: every shard engine lives in this process; the state machine
# below is the reference implementation the worker protocol mirrors.


def _run_inprocess(launches, blocks_per_sm: int, epoch: float,
                   base_seed: int, profile_on: bool, on_beat=None):
    from repro.harness.runner import _seed_rngs

    spec = launches[0].device.spec
    engines = []
    for index, launch in enumerate(launches):
        _seed_rngs(_shard_seed(base_seed, index))
        engines.append(_build_shard(launch, blocks_per_sm, profile_on))
    horizon = epoch
    host_avail = 0.0
    status = {i: _shard_status(eng, horizon)
              for i, eng in enumerate(engines)}
    while True:
        grant = _pick_grant(status)
        if grant is not None:
            arrival, index, seconds = grant
            start = max(arrival, host_avail)
            done = start + seconds * spec.clock_hz
            host_avail = done
            engines[index].grant_host(start, done)
            status[index] = _shard_status(engines[index], horizon)
            continue
        waiting = [i for i, s in status.items() if s[0] == "waiting"]
        if not waiting:
            break
        horizon += epoch
        if on_beat is not None:
            on_beat({"kind": "window", "horizon": horizon,
                     "shards_waiting": len(waiting)})
        for index in waiting:
            status[index] = _shard_status(engines[index], horizon)
    cycles = [eng.finish() for eng in engines]
    stats = [eng.stats for eng in engines]
    profiles = ([eng.profile for eng in engines] if profile_on else None)
    return cycles, stats, profiles, None


# ---------------------------------------------------------------------------
# jobs>1: one spawn worker per shard, coordinated over Manager queues.


def _shard_worker(index: int, launch, blocks_per_sm: int, epoch: float,
                  seed: int, mode: str, profile_on: bool,
                  cmd_q, rep_q, heartbeat_interval: float):
    """Worker side of the epoch protocol.  Messages to the parent:
    ``("parked", index, arrival, seconds)``, ``("waiting", index)``,
    ``("done", index)``, ``("beat", index, payload)``; commands from
    the parent: ``("grant", start, done)`` and ``("advance", horizon)``.
    """
    from repro.harness.heartbeat import HeartbeatSender
    from repro.harness.runner import _seed_rngs

    os.environ[ENGINE_MODE_ENV] = mode
    _seed_rngs(seed)
    engine = _build_shard(launch, blocks_per_sm, profile_on)
    beats = HeartbeatSender(
        lambda beat: rep_q.put(("beat", index, beat)),
        min_interval=heartbeat_interval)
    horizon = epoch
    while True:
        state = _shard_status(engine, horizon)
        if state[0] == "parked":
            rep_q.put(("parked", index, state[1], state[2]))
            cmd = cmd_q.get()
            engine.grant_host(cmd[1], cmd[2])
            continue
        if state[0] == "done":
            rep_q.put(("done", index))
            break
        beats.send({"kind": "window", "shard": index,
                    "horizon": horizon,
                    "census": engine.stall_census()})
        rep_q.put(("waiting", index))
        cmd = cmd_q.get()
        horizon = cmd[1]
    cycles = engine.finish()
    memory = launch.device.memory.data.tobytes()
    return (index, cycles, engine.stats,
            engine.profile if profile_on else None, memory)


def _run_workers(launches, blocks_per_sm: int, epoch: float,
                 base_seed: int, profile_on: bool, on_beat=None):
    import multiprocessing

    from repro.harness.runner import spawn_executor

    spec = launches[0].device.spec
    mode = default_engine_mode()
    n = len(launches)
    # Every shard must be live for the barrier to close, so the pool
    # holds one worker per shard regardless of the jobs value.
    with multiprocessing.Manager() as manager, \
            spawn_executor(n) as pool:
        rep_q = manager.Queue()
        cmd_qs = [manager.Queue() for _ in range(n)]
        futures = [
            pool.submit(_shard_worker, i, launch, blocks_per_sm, epoch,
                        _shard_seed(base_seed, i), mode, profile_on,
                        cmd_qs[i], rep_q, 2.0)
            for i, launch in enumerate(launches)]
        status: dict[int, tuple] = {}
        horizon = epoch
        host_avail = 0.0
        pending = set(range(n))     # shards we await a message from

        def collect():
            while pending:
                try:
                    msg = rep_q.get(timeout=WORKER_TIMEOUT)
                except Empty:
                    for fut in futures:
                        if fut.done():
                            fut.result()  # surfaces worker tracebacks
                    raise TimeoutError(
                        "sharded workers made no progress for "
                        f"{WORKER_TIMEOUT}s")
                if msg[0] == "beat":
                    if on_beat is not None:
                        on_beat(msg[2])
                    continue
                index = msg[1]
                pending.discard(index)
                if msg[0] == "parked":
                    status[index] = ("parked", msg[2], msg[3])
                elif msg[0] == "waiting":
                    status[index] = ("waiting",)
                else:
                    status[index] = ("done",)

        while True:
            collect()
            grant = _pick_grant(status)
            if grant is not None:
                arrival, index, seconds = grant
                start = max(arrival, host_avail)
                done = start + seconds * spec.clock_hz
                host_avail = done
                cmd_qs[index].put(("grant", start, done))
                pending.add(index)
                continue
            waiting = [i for i, s in status.items()
                       if s[0] == "waiting"]
            if not waiting:
                break
            horizon += epoch
            for index in waiting:
                cmd_qs[index].put(("advance", horizon))
                pending.add(index)

        results = [fut.result() for fut in futures]
    results.sort()
    cycles = [r[1] for r in results]
    stats = [r[2] for r in results]
    profiles = [r[3] for r in results] if profile_on else None
    memories = [r[4] for r in results]
    return cycles, stats, profiles, memories


# ---------------------------------------------------------------------------


def launch_cluster_sharded(launches, jobs: int = 1,
                           epoch_cycles: float | None = None,
                           base_seed: int = 0,
                           profile: bool = False,
                           on_beat=None) -> LaunchResult:
    """Run one engine per device with the deterministic epoch barrier.

    ``jobs=1`` drives every shard in this process; any larger value
    spawns one worker per device (the protocol needs every shard live
    to close its barrier, so the pool is sized by the cluster, not by
    ``jobs``).  Results are bit-identical across job counts.
    """
    from repro.gpu.multigpu import _validate_cluster
    from repro.gpu.occupancy import occupancy_limits

    spec = _validate_cluster(launches)
    occupancies = [
        occupancy_limits(spec, launch.block_threads,
                         launch.regs_per_thread,
                         launch.scratchpad_bytes)
        for launch in launches]
    for occ in occupancies:
        if not occ.is_schedulable:
            raise ValueError(
                f"unschedulable kernel: {occ.limiting_factor}")
    blocks_per_sm = min(o.blocks_per_sm for o in occupancies)
    epoch = (default_epoch_cycles(spec) if epoch_cycles is None
             else float(epoch_cycles))
    if epoch <= 0:
        raise ValueError("epoch_cycles must be positive")

    if jobs <= 1 or len(launches) == 1:
        cycles, stats, profiles, memories = _run_inprocess(
            launches, blocks_per_sm, epoch, base_seed, profile, on_beat)
    else:
        cycles, stats, profiles, memories = _run_workers(
            launches, blocks_per_sm, epoch, base_seed, profile, on_beat)

    if memories is not None:
        # Worker shards mutated their own copy of device memory; fold
        # the bytes back into the parent's devices.
        import numpy as np
        for launch, memory in zip(launches, memories):
            data = launch.device.memory.data
            data[:] = np.frombuffer(memory, dtype=np.uint8)

    makespan = max(cycles)
    for launch in launches:
        launch.device.total_cycles += makespan
        launch.device.launches += 1
    result = LaunchResult(
        cycles=makespan,
        seconds=spec.cycles_to_seconds(makespan),
        stats=EngineStats.merged(stats),
        occupancy=occupancies[0],
    )
    if profile:
        result.profile = EngineProfile.merged(profiles)
    return result
