"""Deterministic sharded epoch execution for multi-GPU launches.

:func:`launch_cluster_sharded` runs each device of a
:func:`repro.gpu.multigpu.launch_cluster` on its **own engine** — in
process for ``jobs=1``, one spawn worker per device otherwise — and
recombines the results so that the merged stats, profiles, traces,
time series, and memory contents are identical regardless of the job
count.

Synchronisation model
---------------------

Inside one device every resource (SMs, DRAM, PCIe, atomics) is private,
so shards never need to coordinate about them.  The only shared server
is the **host CPU**, which the parent owns:

* Every shard engine is host-gated (:meth:`Engine.gate_host`): the
  moment a warp yields :class:`HostCompute` the shard *parks* — it
  stops draining immediately (strict stop), so no later event consumes
  a sequence number before the host result is known, and resuming
  reproduces the shard-local event order of an unsharded run exactly.
* Shards otherwise advance in **epochs** of ``epoch_cycles`` simulated
  cycles (default: the PCIe round-trip, the minimum latency of any
  cross-device interaction), reporting at each epoch barrier.
* When every shard is parked, at a barrier, or finished, the parent
  serves the globally earliest parked request — ordered by ``(arrival
  cycle, shard index)`` — against the shared ``host_avail`` clock and
  resumes only that shard.  The grant is conservative-safe: unparked
  shards have drained past the barrier horizon, so none can still
  produce an earlier host request.

The decision sequence depends only on simulated time, never on wall
clock or scheduling, which is what makes ``jobs=1`` and ``jobs=N``
bit-identical.  Runs with no host work also match the unsharded
single-engine result exactly; with host work the only permitted
divergence from the unsharded path is the tie-break between host
requests arriving on different devices at the same cycle (global
sequence number there, ``(arrival, shard)`` here).

Cross-process observability
---------------------------

Tracers and samplers cannot cross process boundaries as live objects,
so each shard runs its *own* :class:`~repro.gpu.trace.Tracer` /
:class:`~repro.telemetry.timeseries.TimeseriesSampler` and spills the
results to per-shard JSONL files (``trace-shardNNN.jsonl`` /
``series-shardNNN.jsonl``), every record stamped with ``(shard,
device, epoch)``.  The parent merges them deterministically in shard
order: SM ids rebase to the global range (shard *i* owns SMs ``[i *
num_sms, (i+1) * num_sms)``, matching :meth:`EngineProfile.merged`),
and causal request ids rebase their device prefix to the shard index.
``jobs=1`` runs the *same* spill-and-merge pipeline, so traces and
series are bit-identical across job counts exactly as stats already
are.  Component counter sections of an ambient profiler reflect
parent-process stats objects only (spawn workers mutate their own
copies), so they are meaningful under ``jobs=1`` and zero under
``jobs>1`` — engine stats, traces, series, and attribution merge
either way.

Worker RNGs are seeded with the stable per-shard
:func:`repro.harness.runner.point_seed` before block factories run,
and progress heartbeats reuse the rate-limited
:class:`repro.harness.heartbeat.HeartbeatSender`.
"""

from __future__ import annotations

import json
import math
import os
import shutil
import tempfile
from dataclasses import dataclass
from queue import Empty

from repro.gpu.device import LaunchResult
from repro.gpu.engine import (
    ENGINE_MODE_ENV,
    Engine,
    EngineProfile,
    EngineStats,
    default_engine_mode,
)
from repro.gpu.launch import EngineHooks
from repro.gpu.trace import Tracer

#: Seconds without any worker message before the parent checks futures
#: for crashed workers (and ultimately gives up).  Overridable through
#: the environment (:data:`WORKER_TIMEOUT_ENV`) for slow CI machines.
WORKER_TIMEOUT = 120.0

#: Environment variable overriding :data:`WORKER_TIMEOUT` (seconds,
#: positive number); validated by :func:`worker_timeout`.
WORKER_TIMEOUT_ENV = "REPRO_WORKER_TIMEOUT"


def worker_timeout() -> float:
    """The effective worker timeout: :data:`WORKER_TIMEOUT_ENV` when
    set (validated — a number of seconds > 0), else the
    :data:`WORKER_TIMEOUT` default."""
    raw = os.environ.get(WORKER_TIMEOUT_ENV)
    if raw is None:
        return WORKER_TIMEOUT
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"{WORKER_TIMEOUT_ENV} must be a number of seconds, "
            f"got {raw!r}") from None
    if math.isnan(value) or value <= 0:
        raise ValueError(
            f"{WORKER_TIMEOUT_ENV} must be positive, got {raw!r}")
    return value


def default_epoch_cycles(spec) -> float:
    """Epoch barrier spacing: the minimum cross-device interaction
    latency.  Devices only interact through the host, and nothing
    reaches the host faster than one PCIe round-trip."""
    return max(1.0, spec.pcie_latency_cycles())


@dataclass(frozen=True)
class _ShardInstrument:
    """Picklable per-shard instrumentation request.

    Travels to spawn workers in place of live tracer/sampler objects;
    each shard constructs its own instruments from it and spills their
    output to ``spill_dir`` (see module docstring).
    """

    profile: bool = False
    trace: bool = False
    max_trace_events: int = 200_000
    timeseries: bool = False
    window_cycles: float = 0.0
    epoch_cycles: float = 1.0
    spill_dir: str = ""

    @property
    def spills(self) -> bool:
        return self.trace or self.timeseries


# ---------------------------------------------------------------------------
# Shard-side execution (shared by the in-process and worker paths).


def _build_shard(launch, blocks_per_sm: int, inst: _ShardInstrument):
    """One single-device engine for one :class:`ClusterLaunch`, gated
    on the host server and seeded with its block factories.  Returns
    ``(engine, tracer, sampler)`` — the shard-local instruments."""
    from repro.gpu.multigpu import _plan_cluster

    spec = launch.device.spec
    tracer = (Tracer(max_events=inst.max_trace_events)
              if inst.trace else None)
    _, groups = _plan_cluster([launch], spec, tracer=tracer)
    sampler = None
    if inst.timeseries:
        from repro.telemetry.timeseries import TimeseriesSampler
        sampler = TimeseriesSampler(num_sms=spec.num_sms,
                                    window_cycles=inst.window_cycles,
                                    tracer=tracer)
    hooks = EngineHooks(
        tracer=tracer,
        profile=EngineProfile.for_sms(spec.num_sms) if inst.profile
        else None,
        sampler=sampler)
    engine = Engine(spec, blocks_per_sm, hooks=hooks, num_devices=1)
    engine.gate_host()
    engine.begin(groups)
    return engine, tracer, sampler


def _shard_status(engine: Engine, horizon: float) -> tuple:
    """Advance one shard to its next blocking point.

    Returns ``("parked", arrival, seconds)``, ``("waiting",)`` (epoch
    barrier reached), or ``("done",)``.
    """
    nxt = engine.advance(horizon)
    if engine.parked:
        arrival, seconds = engine.parked_host()
        return ("parked", arrival, seconds)
    if nxt == math.inf:
        return ("done",)
    return ("waiting",)


def _pick_grant(status: dict) -> tuple | None:
    """The globally earliest parked request, ordered by
    ``(arrival cycle, shard index)`` — the deterministic stand-in for
    the unsharded engine's global sequence tie-break."""
    parked = [(s[1], idx, s[2]) for idx, s in status.items()
              if s[0] == "parked"]
    if not parked:
        return None
    return min(parked)


def _shard_seed(base_seed: int, index: int) -> int:
    from repro.harness.runner import point_seed
    return point_seed("gpu.sharded", index, {"shard": index},
                      base_seed=base_seed)


# ---------------------------------------------------------------------------
# Per-shard event spill files and their deterministic merge.


def _trace_spill_path(spill_dir: str, index: int) -> str:
    return os.path.join(spill_dir, f"trace-shard{index:03d}.jsonl")


def _series_spill_path(spill_dir: str, index: int) -> str:
    return os.path.join(spill_dir, f"series-shard{index:03d}.jsonl")


def _finish_shard(index: int, engine: Engine, inst: _ShardInstrument,
                  tracer, sampler) -> float:
    """Drain the shard and spill its event streams: ``engine.finish()``
    first (so late counter-mirror windows still land in the tracer),
    then one JSONL file per stream, every record stamped ``(shard,
    device, epoch)``."""
    cycles = engine.finish()
    if sampler is not None:
        sampler.finish(cycles)
    if not inst.spills:
        return cycles
    epoch = inst.epoch_cycles
    if tracer is not None:
        with open(_trace_spill_path(inst.spill_dir, index), "w") as f:
            f.write(json.dumps({
                "shard": index, "device": index,
                "epoch_cycles": epoch,
                "events": len(tracer.events),
                "dropped": tracer.dropped,
            }) + "\n")
            for e in tracer.events:
                f.write(json.dumps({
                    "warp": e.warp, "block": e.block, "kind": e.kind,
                    "start": e.start, "end": e.end,
                    "detail": e.detail, "sm": e.sm, "req": e.req,
                    "shard": index, "device": index,
                    "epoch": int(e.start // epoch),
                }) + "\n")
    if sampler is not None:
        with open(_series_spill_path(inst.spill_dir, index), "w") as f:
            f.write(json.dumps({
                "shard": index, "device": index,
                "epoch_cycles": epoch,
                "window_cycles": sampler.window_cycles,
                "windows": (len(sampler.windows)
                            + sampler.dropped_windows),
                "dropped_windows": sampler.dropped_windows,
            }) + "\n")
            for record in sampler.windows:
                out = dict(record)
                out["shard"] = index
                out["device"] = index
                out["epoch"] = int(record["t0"] // epoch)
                f.write(json.dumps(out) + "\n")
    return cycles


def _merge_spills(inst: _ShardInstrument, n: int, num_sms: int,
                  tracer) -> dict | None:
    """Deterministically merge the per-shard spill files, shard order.

    Trace events replay into ``tracer`` (when tracing was on) with SM
    ids rebased to shard *i*'s global range and causal request ids
    rebased to the shard's device prefix; counter mirrors (``sm ==
    -1``) stay unrebased.  Returns the merged
    ``components.timeseries`` section, or ``None`` when sampling was
    off.
    """
    series: list[dict] = []
    enabled = 0
    windows = 0
    dropped_windows = 0
    window_cycles = 0.0
    for index in range(n):
        base = index * num_sms
        tpath = _trace_spill_path(inst.spill_dir, index)
        if tracer is not None and os.path.exists(tpath):
            with open(tpath) as f:
                meta = json.loads(f.readline())
                tracer.dropped += int(meta.get("dropped", 0))
                for line in f:
                    rec = json.loads(line)
                    sm = rec["sm"]
                    if sm >= 0:
                        sm += base
                    req = rec["req"]
                    if req:
                        req = f"{index}{req[req.index(':'):]}"
                    tracer.record(rec["warp"], rec["block"],
                                  rec["kind"], rec["start"],
                                  rec["end"], rec["detail"], sm=sm,
                                  req=req)
        spath = _series_spill_path(inst.spill_dir, index)
        if inst.timeseries and os.path.exists(spath):
            with open(spath) as f:
                meta = json.loads(f.readline())
                enabled = 1
                windows += int(meta.get("windows", 0))
                dropped_windows += int(meta.get("dropped_windows", 0))
                window_cycles = max(window_cycles,
                                    float(meta.get("window_cycles",
                                                   0.0)))
                for line in f:
                    series.append(json.loads(line))
    if not inst.timeseries:
        return None
    return {
        "enabled": enabled,
        "window_cycles": window_cycles,
        "windows": windows,
        "dropped_windows": dropped_windows,
        "series": series,
    }


# ---------------------------------------------------------------------------
# jobs=1: every shard engine lives in this process; the state machine
# below is the reference implementation the worker protocol mirrors.


def _run_inprocess(launches, blocks_per_sm: int, epoch: float,
                   base_seed: int, inst: _ShardInstrument,
                   on_beat=None):
    from repro.harness.runner import _seed_rngs

    spec = launches[0].device.spec
    engines = []
    instruments = []
    for index, launch in enumerate(launches):
        _seed_rngs(_shard_seed(base_seed, index))
        engine, tracer, sampler = _build_shard(launch, blocks_per_sm,
                                               inst)
        engines.append(engine)
        instruments.append((tracer, sampler))
    horizon = epoch
    host_avail = 0.0
    status = {i: _shard_status(eng, horizon)
              for i, eng in enumerate(engines)}
    while True:
        grant = _pick_grant(status)
        if grant is not None:
            arrival, index, seconds = grant
            start = max(arrival, host_avail)
            done = start + seconds * spec.clock_hz
            host_avail = done
            engines[index].grant_host(start, done)
            status[index] = _shard_status(engines[index], horizon)
            continue
        waiting = [i for i, s in status.items() if s[0] == "waiting"]
        if not waiting:
            break
        horizon += epoch
        if on_beat is not None:
            on_beat({"kind": "window", "horizon": horizon,
                     "shards_waiting": len(waiting)})
        for index in waiting:
            status[index] = _shard_status(engines[index], horizon)
    cycles = [_finish_shard(i, eng, inst, *instruments[i])
              for i, eng in enumerate(engines)]
    stats = [eng.stats for eng in engines]
    profiles = ([eng.profile for eng in engines] if inst.profile
                else None)
    return cycles, stats, profiles, None


# ---------------------------------------------------------------------------
# jobs>1: one spawn worker per shard, coordinated over Manager queues.


def _shard_worker(index: int, launch, blocks_per_sm: int, epoch: float,
                  seed: int, mode: str, inst: _ShardInstrument,
                  cmd_q, rep_q, heartbeat_interval: float):
    """Worker side of the epoch protocol.  Messages to the parent:
    ``("parked", index, arrival, seconds)``, ``("waiting", index)``,
    ``("done", index)``, ``("beat", index, payload)``; commands from
    the parent: ``("grant", start, done)`` and ``("advance", horizon)``.
    Event streams never ride the queues — shards spill them to
    ``inst.spill_dir`` (see :func:`_finish_shard`).
    """
    from repro.harness.heartbeat import HeartbeatSender
    from repro.harness.runner import _seed_rngs

    os.environ[ENGINE_MODE_ENV] = mode
    _seed_rngs(seed)
    engine, tracer, sampler = _build_shard(launch, blocks_per_sm, inst)
    beats = HeartbeatSender(
        lambda beat: rep_q.put(("beat", index, beat)),
        min_interval=heartbeat_interval)
    horizon = epoch
    while True:
        state = _shard_status(engine, horizon)
        if state[0] == "parked":
            rep_q.put(("parked", index, state[1], state[2]))
            cmd = cmd_q.get()
            engine.grant_host(cmd[1], cmd[2])
            continue
        if state[0] == "done":
            rep_q.put(("done", index))
            break
        beats.send({"kind": "window", "shard": index,
                    "horizon": horizon,
                    "census": engine.stall_census()})
        rep_q.put(("waiting", index))
        cmd = cmd_q.get()
        horizon = cmd[1]
    cycles = _finish_shard(index, engine, inst, tracer, sampler)
    memory = launch.device.memory.data.tobytes()
    return (index, cycles, engine.stats,
            engine.profile if inst.profile else None, memory)


def _run_workers(launches, blocks_per_sm: int, epoch: float,
                 base_seed: int, inst: _ShardInstrument, on_beat=None):
    import multiprocessing

    from repro.harness.runner import spawn_executor

    spec = launches[0].device.spec
    mode = default_engine_mode()
    timeout = worker_timeout()
    n = len(launches)
    # Every shard must be live for the barrier to close, so the pool
    # holds one worker per shard regardless of the jobs value.
    with multiprocessing.Manager() as manager, \
            spawn_executor(n) as pool:
        rep_q = manager.Queue()
        cmd_qs = [manager.Queue() for _ in range(n)]
        futures = [
            pool.submit(_shard_worker, i, launch, blocks_per_sm, epoch,
                        _shard_seed(base_seed, i), mode, inst,
                        cmd_qs[i], rep_q, 2.0)
            for i, launch in enumerate(launches)]
        status: dict[int, tuple] = {}
        horizon = epoch
        host_avail = 0.0
        pending = set(range(n))     # shards we await a message from

        def collect():
            while pending:
                try:
                    msg = rep_q.get(timeout=timeout)
                except Empty:
                    for fut in futures:
                        if fut.done():
                            fut.result()  # surfaces worker tracebacks
                    raise TimeoutError(
                        "sharded workers made no progress for "
                        f"{timeout}s")
                if msg[0] == "beat":
                    if on_beat is not None:
                        on_beat(msg[2])
                    continue
                index = msg[1]
                pending.discard(index)
                if msg[0] == "parked":
                    status[index] = ("parked", msg[2], msg[3])
                elif msg[0] == "waiting":
                    status[index] = ("waiting",)
                else:
                    status[index] = ("done",)

        while True:
            collect()
            grant = _pick_grant(status)
            if grant is not None:
                arrival, index, seconds = grant
                start = max(arrival, host_avail)
                done = start + seconds * spec.clock_hz
                host_avail = done
                cmd_qs[index].put(("grant", start, done))
                pending.add(index)
                continue
            waiting = [i for i, s in status.items()
                       if s[0] == "waiting"]
            if not waiting:
                break
            horizon += epoch
            for index in waiting:
                cmd_qs[index].put(("advance", horizon))
                pending.add(index)

        results = [fut.result() for fut in futures]
    results.sort()
    cycles = [r[1] for r in results]
    stats = [r[2] for r in results]
    profiles = [r[3] for r in results] if inst.profile else None
    memories = [r[4] for r in results]
    return cycles, stats, profiles, memories


# ---------------------------------------------------------------------------


def launch_cluster_sharded(launches, jobs: int = 1,
                           epoch_cycles: float | None = None,
                           base_seed: int = 0,
                           profile: bool = False,
                           trace: bool = False,
                           tracer=None,
                           timeseries: bool = False,
                           window_cycles: float | None = None,
                           spill_dir: str | None = None,
                           on_beat=None) -> LaunchResult:
    """Run one engine per device with the deterministic epoch barrier.

    ``jobs=1`` drives every shard in this process; any larger value
    spawns one worker per device (the protocol needs every shard live
    to close its barrier, so the pool is sized by the cluster, not by
    ``jobs``).  Results are bit-identical across job counts.

    ``trace=True`` (or a supplied ``tracer``) merges per-shard traces
    into ``result.tracer``; ``timeseries=True`` merges per-shard
    cycle-window series into ``result.series`` (the
    ``components.timeseries`` shape).  ``spill_dir`` keeps the
    per-shard JSONL spill files for inspection; by default they live
    in a temporary directory removed after the merge.  Under an
    ambient profiler (:func:`repro.telemetry.capture`) tracing,
    sampling, and profiling follow the profiler's configuration and
    the merged launch lands in ``profiler.profiles``.
    """
    from repro.gpu.multigpu import _validate_cluster
    from repro.gpu.occupancy import occupancy_limits
    from repro.telemetry import hooks as telemetry_hooks

    spec = _validate_cluster(launches)
    occupancies = [
        occupancy_limits(spec, launch.block_threads,
                         launch.regs_per_thread,
                         launch.scratchpad_bytes)
        for launch in launches]
    for occ in occupancies:
        if not occ.is_schedulable:
            raise ValueError(
                f"unschedulable kernel: {occ.limiting_factor}")
    blocks_per_sm = min(o.blocks_per_sm for o in occupancies)
    epoch = (default_epoch_cycles(spec) if epoch_cycles is None
             else float(epoch_cycles))
    if epoch <= 0:
        raise ValueError("epoch_cycles must be positive")

    max_trace_events = 200_000
    profiler = telemetry_hooks.current()
    if profiler is not None:
        profile = True
        if tracer is None and profiler.trace \
                and len(profiler.traces) < profiler.max_traces:
            trace = True
            max_trace_events = profiler.max_trace_events
        if profiler.timeseries:
            timeseries = True
            if window_cycles is None:
                window_cycles = profiler.window_cycles
    if tracer is not None:
        trace = True
        max_trace_events = tracer.max_events

    from repro.telemetry.timeseries import DEFAULT_WINDOW_CYCLES
    tmp_dir = None
    if (trace or timeseries) and spill_dir is None:
        tmp_dir = tempfile.mkdtemp(prefix="repro-shards-")
        spill_dir = tmp_dir
    elif spill_dir is not None:
        os.makedirs(spill_dir, exist_ok=True)
    inst = _ShardInstrument(
        profile=profile,
        trace=trace,
        max_trace_events=max_trace_events,
        timeseries=timeseries,
        window_cycles=(float(window_cycles) if window_cycles
                       else DEFAULT_WINDOW_CYCLES),
        epoch_cycles=epoch,
        spill_dir=spill_dir or "")

    try:
        if jobs <= 1 or len(launches) == 1:
            cycles, stats, profiles, memories = _run_inprocess(
                launches, blocks_per_sm, epoch, base_seed, inst,
                on_beat)
        else:
            cycles, stats, profiles, memories = _run_workers(
                launches, blocks_per_sm, epoch, base_seed, inst,
                on_beat)

        merged_tracer = None
        series = None
        if inst.spills:
            if trace:
                merged_tracer = tracer if tracer is not None else \
                    Tracer(max_events=max_trace_events * len(launches))
            series = _merge_spills(inst, len(launches), spec.num_sms,
                                   merged_tracer)
    finally:
        if tmp_dir is not None:
            shutil.rmtree(tmp_dir, ignore_errors=True)

    if memories is not None:
        # Worker shards mutated their own copy of device memory; fold
        # the bytes back into the parent's devices.
        import numpy as np
        for launch, memory in zip(launches, memories):
            data = launch.device.memory.data
            data[:] = np.frombuffer(memory, dtype=np.uint8)

    makespan = max(cycles)
    for launch in launches:
        launch.device.total_cycles += makespan
        launch.device.launches += 1
    result = LaunchResult(
        cycles=makespan,
        seconds=spec.cycles_to_seconds(makespan),
        stats=EngineStats.merged(stats),
        occupancy=occupancies[0],
        tracer=merged_tracer,
        series=series,
    )
    if profile:
        result.profile = EngineProfile.merged(profiles)
    if profiler is not None:
        profiler.record_cluster(
            spec=spec, launches=launches, occ=occupancies[0],
            cycles=makespan, stats=result.stats,
            engine_profile=result.profile, tracer=merged_tracer,
            series=series)
    return result
