"""Hardware parameters of the simulated GPU.

The defaults model one GPU of the dual NVIDIA Tesla K80 (GK210) used in
the paper's evaluation (§VI).  The headline numbers come straight from the
paper's "latency hiding discussion":

* ``2056e9`` instructions/second issued per GPU,
* ``240e9`` bytes/second of theoretical memory bandwidth,
* ``152e9`` bytes/second achieved by ``cudaMemcpyDeviceToDevice``.

The remaining microarchitectural constants (SM count, clock, resident
thread and register limits) are public GK210 figures.  ``issue_efficiency``
and the latency constants are calibration knobs: the paper notes that the
theoretical issue rate "assumes single cycle execution latency for every
instruction, which is not the case in practice", so the effective issue
rate for the integer-heavy apointer instruction mix is lower.  The values
here are calibrated once against Table I / Table II of the paper and then
reused unchanged by every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class GPUSpec:
    """Immutable description of a simulated GPU."""

    name: str = "Tesla K80 (one GK210 GPU)"
    num_sms: int = 13
    clock_hz: float = 875e6
    warp_size: int = 32

    # Occupancy limits (per SM).
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 16
    max_warps_per_sm: int = 64
    registers_per_sm: int = 128 * 1024          # GK210 doubled the K40's file
    scratchpad_bytes_per_sm: int = 112 * 1024   # configurable shared memory

    # Instruction issue.
    issued_instructions_per_s: float = 2056e9   # thread-instructions, per GPU
    issue_efficiency: float = 0.63              # effective fraction (see above)

    # Global memory (DRAM).
    dram_bandwidth_theoretical: float = 240e9   # bytes/s
    dram_bandwidth_achievable: float = 152e9    # bytes/s (measured memcpy)
    dram_latency_cycles: float = 195.0
    dram_transaction_bytes: int = 128

    # Pipeline / latency calibration (Table I).
    dependent_issue_cycles: float = 7.6   # latency of a dependent instruction
    macro_op_overhead_cycles: float = 14.0  # fixed pipeline cost per macro-op
    scratchpad_latency_cycles: float = 30.0
    atomic_latency_cycles: float = 120.0
    # Same-address atomics are pipelined in the L2: a new one can issue
    # every few cycles even though each takes ~120 cycles to complete.
    atomic_interval_cycles: float = 8.0

    # PCIe link to the host (gen3 x16-ish, as on the paper's test machine).
    pcie_bandwidth: float = 12e9               # bytes/s, effective
    pcie_latency_s: float = 8e-6               # request-visible DMA latency
    # Host-side cost to service one GPU->host RPC (request handling +
    # cudaMemcpy setup); serialises on the host CPU, which is why GPUfs
    # batches transfers (§V) and why the paper argues for GPU-centric
    # paging (Figure 1 vs Figure 2).
    host_rpc_s: float = 3e-6

    # §VII what-if: I/O-driven threadblock preemption.  When every warp
    # of a resident block is stalled on a host transfer, the SM may
    # swap in a pending block (paying a context save/restore cost)
    # instead of idling — the GPUpIO idea the paper cites.
    io_preemption: bool = False
    preemption_cost_cycles: float = 1500.0

    def warp_issue_rate(self) -> float:
        """Peak warp-instructions issued per cycle per SM."""
        per_gpu = self.issued_instructions_per_s / self.clock_hz
        return per_gpu / self.num_sms / self.warp_size

    def effective_issue_rate(self) -> float:
        """Calibrated warp-instructions per cycle per SM."""
        return self.warp_issue_rate() * self.issue_efficiency

    def dram_bytes_per_cycle(self) -> float:
        """Achievable DRAM bytes per cycle, whole GPU."""
        return self.dram_bandwidth_achievable / self.clock_hz

    def pcie_bytes_per_cycle(self) -> float:
        return self.pcie_bandwidth / self.clock_hz

    def pcie_latency_cycles(self) -> float:
        return self.pcie_latency_s * self.clock_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    def with_overrides(self, **kwargs) -> "GPUSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: The spec used by all experiments unless overridden.
K80_SPEC = GPUSpec()
