"""Execution tracing for the simulated GPU.

A :class:`Tracer` attached to a launch records one record per completed
macro-op — which warp, what kind of request, when it started and
finished, and what resource it used.  Useful for debugging timing
anomalies ("why is this kernel latency-bound?") and for asserting
scheduling properties in tests.

Beyond the engine's macro-ops, the paging and translation layers record
*spans* through :meth:`repro.gpu.kernel.WarpContext.trace_span` — page
fetches, fault-filter transforms, warp-level fault handling — so a
timeline shows faults, not just loads.

Usage::

    tracer = Tracer()
    device.launch(kernel, grid=1, block_threads=64, tracer=tracer)
    print(render_timeline(tracer, width=72))
    tracer.summary()
    json.dump(tracer.to_chrome_trace(device.spec), open("t.json", "w"))

The Chrome-trace export loads in ``chrome://tracing`` and in Perfetto
(https://ui.perfetto.dev): one process per SM, one thread track per
warp.  Tracing costs Python time, so it is off unless a tracer is
passed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One completed macro-op or layer-level span."""

    warp: int              # global warp id (block * warps + warp)
    block: int
    kind: str              # request class name, lowercased, or span name
    start: float
    end: float
    detail: str = ""
    sm: int = -1           # SM the warp was resident on (-1 = unknown)
    #: Causal request id ('' = none): minted at warp fault / syscall
    #: entry (:meth:`repro.gpu.kernel.WarpContext.begin_request`) and
    #: stamped on every span recorded while the request is open, so the
    #: translation loop, GPUfs fault handling, readahead, and the
    #: PCIe/staging transfer of one logical request share one id.
    #: Format ``"<device>:<warp>:<seq>"`` — deterministic, never wall
    #: clock.  ``repro-spans`` reconstructs request trees from it.
    req: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


#: Span kinds emitted by the paging / translation layers (as opposed to
#: the engine's macro-op kinds).  Used to categorise Chrome-trace events.
PAGING_SPAN_KINDS = frozenset({
    "minor_fault", "major_fault", "page_in", "page_out",
    "filter_in", "filter_out", "translation_fault", "pcie_staging",
})

#: Event kinds recorded for the cycle-attribution analyzer
#: (:mod:`repro.telemetry.attribution`): per-warp non-issuing intervals
#: ("stall", reason in detail), issue-server occupancy ("issue"), and
#: per-request translation decompositions ("translation").  They overlap
#: the macro-op events, so timeline rendering skips them.
ATTRIBUTION_KINDS = frozenset({"stall", "issue", "translation"})

#: Event kind recorded by the time-series sampler
#: (:mod:`repro.telemetry.timeseries`): one named sample per window,
#: exported as a Chrome ``"C"`` (counter) event so Perfetto renders a
#: counter track next to the span timeline.
COUNTER_KIND = "counter"


class Tracer:
    """Collects :class:`TraceEvent` records during a launch."""

    def __init__(self, max_events: int = 200_000):
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.dropped = 0

    def record(self, warp: int, block: int, kind: str, start: float,
               end: float, detail: str = "", sm: int = -1,
               req: str = "") -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(warp, block, kind, start, end,
                                      detail, sm, req))

    def record_counter(self, name: str, t: float, value: float) -> None:
        """Record one named counter sample at time ``t`` (a point, not
        a span) — the time-series sampler mirrors each closed window
        onto these.  Exported as Chrome ``"C"`` events."""
        self.record(0, -1, COUNTER_KIND, t, t,
                    f"{name}={value:.12g}")

    # ------------------------------------------------------------------
    def by_kind(self) -> dict:
        """Total busy time and count per event kind."""
        totals: dict[str, list] = {}
        for e in self.events:
            slot = totals.setdefault(e.kind, [0, 0.0])
            slot[0] += 1
            slot[1] += e.duration
        return {k: {"count": c, "cycles": t}
                for k, (c, t) in sorted(totals.items())}

    def warps(self) -> list[int]:
        return sorted({e.warp for e in self.events})

    def for_warp(self, warp: int) -> list[TraceEvent]:
        return [e for e in self.events if e.warp == warp]

    def span(self) -> tuple[float, float]:
        if not self.events:
            return (0.0, 0.0)
        return (min(e.start for e in self.events),
                max(e.end for e in self.events))

    def summary(self) -> str:
        lines = [f"{len(self.events)} events"
                 + (f" ({self.dropped} dropped)" if self.dropped else "")]
        for kind, agg in self.by_kind().items():
            lines.append(f"  {kind:12s} x{agg['count']:<6d} "
                         f"{agg['cycles']:12.0f} cycles")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_chrome_trace(self, spec=None) -> dict:
        """Export as a Chrome ``trace_event`` JSON object.

        One process per SM, one thread track per warp; paging spans are
        categorised ``paging`` so Perfetto can colour them separately.
        With a :class:`~repro.gpu.specs.GPUSpec`, timestamps convert to
        microseconds of simulated time; without one they stay in cycles
        (still loadable — the units are just unlabelled).
        """
        scale = 1e6 / spec.clock_hz if spec is not None else 1.0
        pids = sorted({e.sm for e in self.events})
        meta: list[dict] = []
        for sm in pids:
            pid = sm + 1
            name = f"SM {sm}" if sm >= 0 else "GPU"
            meta.append({"ph": "M", "name": "process_name", "pid": pid,
                         "tid": 0, "args": {"name": name}})
        seen_tracks = set()
        for e in self.events:
            if e.kind == COUNTER_KIND:
                continue           # counter tracks are named, not warps
            key = (e.sm + 1, e.warp)
            if key not in seen_tracks:
                seen_tracks.add(key)
                meta.append({"ph": "M", "name": "thread_name",
                             "pid": key[0], "tid": e.warp,
                             "args": {"name": f"warp {e.warp}"}})
        spans = []
        for e in sorted(self.events, key=lambda e: (e.start, e.end)):
            if e.kind == COUNTER_KIND:
                name, _, value = e.detail.partition("=")
                spans.append({
                    "name": name,
                    "cat": "timeseries",
                    "ph": "C",
                    "ts": e.start * scale,
                    "pid": e.sm + 1,
                    "tid": 0,
                    "args": {"value": float(value or 0.0)},
                })
                continue
            args: dict = {"block": e.block}
            if e.detail:
                args["detail"] = e.detail
            if e.req:
                args["req"] = e.req
            if e.kind in PAGING_SPAN_KINDS:
                cat = "paging"
            elif e.kind in ATTRIBUTION_KINDS:
                cat = "attribution"
            else:
                cat = "engine"
            spans.append({
                "name": e.kind,
                "cat": cat,
                "ph": "X",
                "ts": e.start * scale,
                "dur": e.duration * scale,
                "pid": e.sm + 1,
                "tid": e.warp,
                "args": args,
            })
        trace = {
            "traceEvents": meta + spans,
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.telemetry",
                "events": len(self.events),
                "dropped": self.dropped,
                "time_unit": "us" if spec is not None else "cycles",
                "clock_hz": spec.clock_hz if spec is not None else None,
            },
        }
        return trace


def events_from_chrome_trace(trace: dict) -> tuple[list[TraceEvent], int]:
    """Invert :meth:`Tracer.to_chrome_trace`: rebuild the event list (in
    cycles) from an exported Chrome-trace dict.

    Returns ``(events, dropped)`` where ``dropped`` is the recorded
    overflow count.  Raises :class:`ValueError` if the dict was exported
    in microseconds but carries no ``clock_hz`` to convert back.
    """
    other = trace.get("otherData", {})
    unit = other.get("time_unit", "cycles")
    if unit == "cycles":
        scale = 1.0
    else:
        clock_hz = other.get("clock_hz")
        if not clock_hz:
            raise ValueError(
                "trace exported in microseconds without clock_hz; "
                "cannot convert timestamps back to cycles")
        scale = 1e6 / clock_hz
    events = []
    for rec in trace.get("traceEvents", []):
        if rec.get("ph") == "C":
            t = rec["ts"] / scale
            value = rec.get("args", {}).get("value", 0.0)
            events.append(TraceEvent(
                warp=0, block=-1, kind=COUNTER_KIND, start=t, end=t,
                detail=f"{rec.get('name', '')}={value:.12g}",
                sm=int(rec.get("pid", 0)) - 1,
            ))
            continue
        if rec.get("ph") != "X":
            continue
        args = rec.get("args", {})
        events.append(TraceEvent(
            warp=int(rec.get("tid", 0)),
            block=int(args.get("block", -1)),
            kind=str(rec.get("name", "")),
            start=rec["ts"] / scale,
            end=(rec["ts"] + rec.get("dur", 0.0)) / scale,
            detail=str(args.get("detail", "")),
            sm=int(rec.get("pid", 0)) - 1,
            req=str(args.get("req", "")),
        ))
    return events, int(other.get("dropped", 0))


_GLYPHS = {
    "compute": "#",
    "memaccess": "m",
    "scratchaccess": "s",
    "atomicop": "a",
    "acquirelock": "L",
    "pcietransfer": "P",
    "hostcompute": "H",
    "sleep": ".",
    "barrier": "|",
    "loadfence": "f",
}


def render_timeline(tracer: Tracer, width: int = 72,
                    warps: Optional[Iterable[int]] = None,
                    max_warps: int = 16) -> str:
    """ASCII timeline: one row per warp, one glyph per busy bucket.

    Each column is a time bucket; the glyph shows the kind of event
    that dominated the warp's busy time in that bucket (blank = idle).
    Without an explicit ``warps`` selection, at most ``max_warps`` rows
    render and a ``(+N more warps)`` footer reports the rest.
    """
    t0, t1 = tracer.span()
    if t1 <= t0:
        return "(empty trace)"
    bucket = (t1 - t0) / width
    all_warps = tracer.warps()
    if warps is not None:
        chosen = list(warps)
        hidden = 0
    else:
        chosen = all_warps[:max_warps]
        hidden = len(all_warps) - len(chosen)
    rows = [f"bucket_cycles={bucket:g} span=[{t0:g}, {t1:g}] "
            f"warps={len(all_warps)}"]
    for warp in chosen:
        busy: list[Counter] = [Counter() for _ in range(width)]
        for e in tracer.for_warp(warp):
            if e.kind in ATTRIBUTION_KINDS or e.kind == COUNTER_KIND:
                continue
            # An event ending exactly at the span end belongs to the
            # last bucket, not a phantom bucket `width`.
            lo = min(max(int((e.start - t0) / bucket), 0), width - 1)
            hi = min(int((e.end - t0) / bucket), width - 1)
            for b in range(lo, hi + 1):
                b_start = t0 + b * bucket
                b_end = b_start + bucket
                overlap = min(e.end, b_end) - max(e.start, b_start)
                if overlap > 0:
                    busy[b][e.kind] += overlap
        line = "".join(
            _GLYPHS.get(c.most_common(1)[0][0], "?") if c else " "
            for c in busy)
        rows.append(f"w{warp:<4d} {line}")
    legend = " ".join(f"{g}={k}" for k, g in _GLYPHS.items())
    rows.append(f"[{legend}]")
    if hidden > 0:
        rows.append(f"(+{hidden} more warps)")
    return "\n".join(rows)
