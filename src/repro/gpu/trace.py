"""Execution tracing for the simulated GPU.

A :class:`Tracer` attached to a launch records one record per completed
macro-op — which warp, what kind of request, when it started and
finished, and what resource it used.  Useful for debugging timing
anomalies ("why is this kernel latency-bound?") and for asserting
scheduling properties in tests.

Usage::

    tracer = Tracer()
    device.launch(kernel, grid=1, block_threads=64, tracer=tracer)
    print(render_timeline(tracer, width=72))
    tracer.summary()

Tracing costs Python time, so it is off unless a tracer is passed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One completed macro-op."""

    warp: int              # global warp id (block * warps + warp)
    block: int
    kind: str              # request class name, lowercased
    start: float
    end: float
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Collects :class:`TraceEvent` records during a launch."""

    def __init__(self, max_events: int = 200_000):
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.dropped = 0

    def record(self, warp: int, block: int, kind: str, start: float,
               end: float, detail: str = "") -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(warp, block, kind, start, end,
                                      detail))

    # ------------------------------------------------------------------
    def by_kind(self) -> dict:
        """Total busy time and count per event kind."""
        totals: dict[str, list] = {}
        for e in self.events:
            slot = totals.setdefault(e.kind, [0, 0.0])
            slot[0] += 1
            slot[1] += e.duration
        return {k: {"count": c, "cycles": t}
                for k, (c, t) in sorted(totals.items())}

    def warps(self) -> list[int]:
        return sorted({e.warp for e in self.events})

    def for_warp(self, warp: int) -> list[TraceEvent]:
        return [e for e in self.events if e.warp == warp]

    def span(self) -> tuple[float, float]:
        if not self.events:
            return (0.0, 0.0)
        return (min(e.start for e in self.events),
                max(e.end for e in self.events))

    def summary(self) -> str:
        lines = [f"{len(self.events)} events"
                 + (f" ({self.dropped} dropped)" if self.dropped else "")]
        for kind, agg in self.by_kind().items():
            lines.append(f"  {kind:12s} x{agg['count']:<6d} "
                         f"{agg['cycles']:12.0f} cycles")
        return "\n".join(lines)


_GLYPHS = {
    "compute": "#",
    "memaccess": "m",
    "scratchaccess": "s",
    "atomicop": "a",
    "acquirelock": "L",
    "pcietransfer": "P",
    "hostcompute": "H",
    "sleep": ".",
    "barrier": "|",
    "loadfence": "f",
}


def render_timeline(tracer: Tracer, width: int = 72,
                    warps: Optional[Iterable[int]] = None) -> str:
    """ASCII timeline: one row per warp, one glyph per busy bucket.

    Each column is a time bucket; the glyph shows the kind of event
    that dominated the warp's busy time in that bucket (blank = idle).
    """
    t0, t1 = tracer.span()
    if t1 <= t0:
        return "(empty trace)"
    bucket = (t1 - t0) / width
    rows = []
    chosen = list(warps) if warps is not None else tracer.warps()[:16]
    for warp in chosen:
        busy: list[Counter] = [Counter() for _ in range(width)]
        for e in tracer.for_warp(warp):
            lo = int((e.start - t0) / bucket)
            hi = int((e.end - t0) / bucket)
            for b in range(max(lo, 0), min(hi + 1, width)):
                b_start = t0 + b * bucket
                b_end = b_start + bucket
                overlap = min(e.end, b_end) - max(e.start, b_start)
                if overlap > 0:
                    busy[b][e.kind] += overlap
        line = "".join(
            _GLYPHS.get(c.most_common(1)[0][0], "?") if c else " "
            for c in busy)
        rows.append(f"w{warp:<4d} {line}")
    legend = " ".join(f"{g}={k}" for k, g in _GLYPHS.items())
    return "\n".join(rows + [f"[{legend}]"])
