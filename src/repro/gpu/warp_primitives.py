"""CUDA warp intrinsics over 32-lane numpy vectors.

These are pure functions on lane vectors; the engine-facing, *timed*
wrappers live on :class:`repro.gpu.kernel.WarpContext`.  Semantics follow
the CUDA intrinsics the paper's Listing 1 uses:

* ``ballot(pred)``  -> 32-bit mask with bit *i* set iff lane *i*'s
  predicate holds (inactive lanes contribute 0).
* ``all_sync(pred)`` -> true iff every *active* lane's predicate holds.
* ``any_sync(pred)`` -> true iff some active lane's predicate holds.
* ``shfl(values, src_lane)`` -> broadcast lane ``src_lane``'s value.
* ``ffs(mask)`` -> 1-based index of the least significant set bit (0 if
  none) — CUDA's ``__ffs``.
* ``popc(mask)`` -> number of set bits.
"""

from __future__ import annotations

import numpy as np

WARP_SIZE = 32
FULL_MASK = (1 << WARP_SIZE) - 1

_LANE_BITS = (1 << np.arange(WARP_SIZE, dtype=np.int64))


def ballot(pred: np.ndarray, active: np.ndarray | None = None) -> int:
    """Pack per-lane predicates into a 32-bit mask."""
    pred = np.asarray(pred, dtype=bool)
    if active is not None:
        pred = pred & np.asarray(active, dtype=bool)
    return int((_LANE_BITS[:pred.size] * pred).sum())


def all_sync(pred: np.ndarray, active: np.ndarray | None = None) -> bool:
    """CUDA ``__all``: do all active lanes satisfy the predicate?"""
    pred = np.asarray(pred, dtype=bool)
    if active is None:
        return bool(pred.all())
    active = np.asarray(active, dtype=bool)
    if not active.any():
        return True
    return bool(pred[active].all())


def any_sync(pred: np.ndarray, active: np.ndarray | None = None) -> bool:
    """CUDA ``__any``: does some active lane satisfy the predicate?"""
    pred = np.asarray(pred, dtype=bool)
    if active is None:
        return bool(pred.any())
    return bool((pred & np.asarray(active, dtype=bool)).any())


def shfl(values: np.ndarray, src_lane: int) -> np.ndarray:
    """CUDA ``__shfl``: every lane reads lane ``src_lane``'s value."""
    values = np.asarray(values)
    return np.full_like(values, values[int(src_lane)])


def shfl_idx(values: np.ndarray, src_lanes: np.ndarray) -> np.ndarray:
    """Indexed shuffle: lane *i* reads lane ``src_lanes[i]``."""
    values = np.asarray(values)
    idx = np.asarray(src_lanes, dtype=np.int64) % values.size
    return values[idx]


def shfl_xor(values: np.ndarray, lane_mask: int) -> np.ndarray:
    """Butterfly shuffle: lane *i* reads lane ``i ^ lane_mask``."""
    values = np.asarray(values)
    idx = np.arange(values.size) ^ int(lane_mask)
    return values[idx % values.size]


def shfl_down(values: np.ndarray, delta: int) -> np.ndarray:
    """Lane *i* reads lane ``i + delta`` (clamped, CUDA semantics)."""
    values = np.asarray(values)
    idx = np.minimum(np.arange(values.size) + int(delta), values.size - 1)
    return values[idx]


def ffs(mask: int) -> int:
    """CUDA ``__ffs``: 1-based position of least significant set bit."""
    if mask == 0:
        return 0
    return (mask & -mask).bit_length()


def popc(mask: int) -> int:
    """CUDA ``__popc``: population count."""
    return int(mask).bit_count()


def lane_ids(warp_size: int = WARP_SIZE) -> np.ndarray:
    return np.arange(warp_size, dtype=np.int64)
