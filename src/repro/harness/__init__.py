"""Experiment harness: regenerate every table and figure of the paper.

The harness is a declarative registry (:mod:`repro.harness.registry`)
of :class:`Experiment` descriptors — each one a parameter grid plus a
module-level point function — executed by the parallel runner
(:mod:`repro.harness.runner`, ``repro-experiments --jobs N``).
``repro-experiments`` (:mod:`repro.harness.cli`) runs them and renders
text tables next to the paper's published values.

The pre-registry one-function-per-figure API (``table1()``, ...) is
still exported but deprecated; the functions delegate to the runner.
"""

from repro.harness.experiments import (
    ALL_EXPERIMENTS,
    ablation_batching,
    ablation_eviction,
    ablation_future_hw,
    ablation_io_preemption,
    ablation_prefetch,
    ablation_readahead,
    ablation_registers,
    figure6,
    figure7,
    figure9,
    table1,
    table2,
    table3,
    unaligned_access,
)
from repro.harness.registry import (
    REGISTRY,
    Column,
    Experiment,
    ExperimentResult,
    experiment,
)
from repro.harness.reporting import format_result
from repro.harness.runner import (
    ExperimentPointError,
    RunReport,
    point_seed,
    run_experiment,
    run_named,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "Column",
    "Experiment",
    "ExperimentPointError",
    "ExperimentResult",
    "REGISTRY",
    "RunReport",
    "experiment",
    "point_seed",
    "run_experiment",
    "run_named",
    "table1",
    "table2",
    "table3",
    "figure6",
    "figure7",
    "figure9",
    "unaligned_access",
    "ablation_prefetch",
    "ablation_batching",
    "ablation_registers",
    "ablation_eviction",
    "ablation_readahead",
    "ablation_future_hw",
    "ablation_io_preemption",
    "format_result",
]
