"""Experiment harness: regenerate every table and figure of the paper.

The harness is a declarative registry (:mod:`repro.harness.registry`)
of :class:`Experiment` descriptors — each one a parameter grid plus a
module-level point function — executed by the parallel runner
(:mod:`repro.harness.runner`, ``repro-experiments --jobs N``).
``repro-experiments`` (:mod:`repro.harness.cli`) runs them and renders
text tables next to the paper's published values.

The pre-registry one-function-per-figure API (``table1()``, ...) was
removed after its deprecation cycle; use ``REGISTRY``/``run_experiment``
(or the serial ``ALL_EXPERIMENTS`` callables) instead.
"""

from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.registry import (
    REGISTRY,
    Column,
    Experiment,
    ExperimentResult,
    experiment,
)
from repro.harness.reporting import format_result
from repro.harness.runner import (
    ExperimentPointError,
    Instrumentation,
    RunReport,
    point_seed,
    run_experiment,
    run_named,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "Column",
    "Experiment",
    "ExperimentPointError",
    "ExperimentResult",
    "Instrumentation",
    "REGISTRY",
    "RunReport",
    "experiment",
    "point_seed",
    "run_experiment",
    "run_named",
    "format_result",
]
