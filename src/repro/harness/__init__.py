"""Experiment harness: regenerate every table and figure of the paper.

Each experiment function returns an :class:`ExperimentResult` whose rows
mirror the paper's table rows or figure series; ``repro-experiments``
(:mod:`repro.harness.cli`) runs them and renders text tables next to the
paper's published values.
"""

from repro.harness.experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    ablation_batching,
    ablation_eviction,
    ablation_future_hw,
    ablation_io_preemption,
    ablation_prefetch,
    ablation_readahead,
    ablation_registers,
    figure6,
    figure7,
    figure9,
    table1,
    table2,
    table3,
    unaligned_access,
)
from repro.harness.reporting import format_result

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "table1",
    "table2",
    "table3",
    "figure6",
    "figure7",
    "figure9",
    "unaligned_access",
    "ablation_prefetch",
    "ablation_batching",
    "ablation_registers",
    "ablation_eviction",
    "ablation_readahead",
    "ablation_future_hw",
    "ablation_io_preemption",
    "format_result",
]
