"""``repro-experiments`` — regenerate the paper's tables and figures.

Examples::

    repro-experiments --list
    repro-experiments table1 table2
    repro-experiments --all --scale quick
    repro-experiments --all --markdown results.md
    repro-experiments table1 --profile-dir /tmp/profiles

With ``--profile-dir`` every kernel launch inside an experiment is
profiled (``repro.telemetry``): one ``LaunchProfile`` JSON per launch
plus Chrome-trace files loadable in Perfetto, written under
``PROFILE_DIR/<experiment>/``.
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import time

from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.reporting import (
    format_markdown,
    format_profile,
    format_result,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce ActivePointers (ISCA'16) tables/figures.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (see --list)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--scale", choices=("quick", "full"),
                        default="quick",
                        help="problem sizes (default: quick)")
    parser.add_argument("--eviction-policy", metavar="POLICY",
                        choices=("clock", "fifo", "lru", "random"),
                        help="page-cache eviction policy override, for "
                             "experiments that take one (e.g. "
                             "ablation_eviction, ablation_readahead)")
    parser.add_argument("--markdown", metavar="PATH",
                        help="also write results as Markdown")
    parser.add_argument("--profile-dir", metavar="PATH",
                        help="profile every launch; write per-launch "
                             "JSON profiles and Chrome traces here")
    args = parser.parse_args(argv)

    if args.list:
        for name in ALL_EXPERIMENTS:
            print(name)
        return 0

    names = list(ALL_EXPERIMENTS) if args.all else args.experiments
    if not names:
        parser.print_usage()
        print("error: give experiment ids, or --all / --list",
              file=sys.stderr)
        return 2
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"error: unknown experiments {unknown}; see --list",
              file=sys.stderr)
        return 2

    markdown_parts = []
    for name in names:
        started = time.time()
        try:
            result, profiler = _run_one(name, args)
        except Exception:
            # Don't lose the experiments that already finished: flush
            # a partial report, then surface the failure (non-zero
            # exit via the re-raise).
            markdown_parts.append(
                f"### {name} — FAILED after "
                f"{time.time() - started:.1f}s\n")
            if args.markdown:
                _write_markdown(args, markdown_parts, partial=True)
            print(f"error: experiment {name} raised; "
                  + (f"partial results in {args.markdown}"
                     if args.markdown else "no --markdown to save to"),
                  file=sys.stderr)
            raise
        elapsed = time.time() - started
        print(format_result(result))
        print(f"[{name} finished in {elapsed:.1f}s]")
        if profiler is not None:
            out_dir = os.path.join(args.profile_dir, name)
            written = profiler.write(out_dir)
            longest = profiler.longest()
            if longest is not None:
                print(format_profile(longest))
            print(f"[{len(profiler.profiles)} launch profiles, "
                  f"{len(written)} files -> {out_dir}]")
        print()
        markdown_parts.append(format_markdown(result, elapsed=elapsed))

    if args.markdown:
        _write_markdown(args, markdown_parts)
        print(f"markdown written to {args.markdown}")
    return 0


def _run_one(name: str, args):
    """Run one experiment, profiled when --profile-dir is given."""
    fn = ALL_EXPERIMENTS[name]
    kwargs = {"scale": args.scale}
    if args.eviction_policy:
        # Only experiments that expose the knob receive it; the rest
        # run unchanged rather than erroring on an unknown kwarg.
        params = inspect.signature(fn).parameters
        if "eviction_policy" in params:
            kwargs["eviction_policy"] = args.eviction_policy
    if args.profile_dir:
        from repro.telemetry import capture
        with capture() as profiler:
            result = fn(**kwargs)
        return result, profiler
    return fn(**kwargs), None


def _write_markdown(args, parts: list, partial: bool = False) -> None:
    parent = os.path.dirname(args.markdown)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(args.markdown, "w") as f:
        header = f"# Reproduction results (scale={args.scale})"
        if partial:
            header += " — PARTIAL (an experiment failed)"
        f.write(header + "\n\n")
        f.write("\n".join(parts))


if __name__ == "__main__":
    sys.exit(main())
