"""``repro-experiments`` — regenerate the paper's tables and figures.

Examples::

    repro-experiments --list
    repro-experiments table1 table2
    repro-experiments --all --scale quick --jobs 4
    repro-experiments --all --markdown results.md
    repro-experiments table1 --profile-dir /tmp/profiles

``--jobs N`` fans each experiment's parameter grid out over ``N``
spawn worker processes (:mod:`repro.harness.runner`); rows are
row-for-row identical to a serial run thanks to deterministic
per-point seeding.  A crashed point becomes an error row (and a
non-zero exit) instead of killing the suite.

With ``--profile-dir`` every kernel launch inside an experiment is
profiled (``repro.telemetry``): one ``LaunchProfile`` JSON per launch
(plus Chrome-trace files when running serially — traces stay in the
workers under ``--jobs``), and one merged *suite profile*
(``suite-profile.json``, schema v5 with a ``run.workers`` section)
per experiment, written under ``PROFILE_DIR/<experiment>/``.
``--attribute`` additionally runs the cycle-attribution analyzer on
every launch (:mod:`repro.telemetry.attribution`) and stores its
summary in each profile's ``components.attribution``.

``--trend-file PATH`` appends one schema-stamped row — commit, date,
and each experiment's key metric — to the benchmark trend record
after the run; ``repro-attr --compare`` diffs the latest two rows and
fails on tier-1 regressions.

``--timeseries`` turns on cycle-window sampling
(:mod:`repro.telemetry.timeseries`) for every launch: profiles gain a
``components.timeseries`` section (schema v6) holding the sampled
series.  ``--live-dir PATH`` additionally streams the samples as they
happen — ``PATH/<experiment>/series-*.jsonl`` plus ``heartbeats.jsonl``
and a Prometheus ``metrics.prom`` snapshot — the layout ``repro-top
PATH/<experiment>`` renders live.  ``--window-cycles N`` sets the
sampling window width; ``--no-progress`` suppresses the stderr
progress line (heartbeat files are still written).
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
import time

from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.reporting import (
    format_markdown,
    format_profile,
    format_result,
)
from repro.harness.runner import resolve_jobs, run_experiment, \
    spawn_executor


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce ActivePointers (ISCA'16) tables/figures.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (see --list)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--scale", choices=("quick", "full"),
                        default="quick",
                        help="problem sizes (default: quick)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes per experiment grid "
                             "(default: 1 = serial; 0 = one per core)")
    parser.add_argument("--eviction-policy", metavar="POLICY",
                        choices=("clock", "fifo", "lru", "random"),
                        help="page-cache eviction policy override, for "
                             "experiments that take one (e.g. "
                             "ablation_eviction, ablation_readahead)")
    parser.add_argument("--markdown", metavar="PATH",
                        help="also write results as Markdown")
    parser.add_argument("--profile-dir", metavar="PATH",
                        help="profile every launch; write per-launch "
                             "JSON profiles, Chrome traces, and a "
                             "merged suite profile here")
    parser.add_argument("--attribute", action="store_true",
                        help="run the cycle-attribution analyzer on "
                             "every launch (implies profiling; the "
                             "summary lands in the profiles' "
                             "components.attribution — requires "
                             "--profile-dir)")
    parser.add_argument("--trend-file", metavar="PATH",
                        help="append one schema-stamped row (commit, "
                             "date, key metric per experiment) to "
                             "this benchmark trend record; compare "
                             "rows with repro-attr --compare")
    parser.add_argument("--timeseries", action="store_true",
                        help="sample every launch in cycle windows "
                             "(implies profiling; the series lands in "
                             "the profiles' components.timeseries)")
    parser.add_argument("--live-dir", metavar="PATH",
                        help="stream sampled windows and worker "
                             "heartbeats here as the run progresses "
                             "(implies --timeseries; watch with "
                             "repro-top PATH/<experiment>)")
    parser.add_argument("--window-cycles", type=float, default=None,
                        metavar="N",
                        help="sampling window width in simulated "
                             "cycles (default: the sampler's)")
    parser.add_argument("--no-progress", action="store_true",
                        help="never draw the stderr progress line "
                             "(live files are still written)")
    args = parser.parse_args(argv)

    if args.attribute and not args.profile_dir:
        parser.error("--attribute requires --profile-dir (the "
                     "attribution summary is written with the "
                     "profiles)")
    if args.timeseries and not (args.live_dir or args.profile_dir):
        parser.error("--timeseries needs somewhere to land: give "
                     "--profile-dir (series in the profiles) and/or "
                     "--live-dir (streaming files)")

    if args.list:
        for name in ALL_EXPERIMENTS:
            print(name)
        return 0

    names = list(ALL_EXPERIMENTS) if args.all else args.experiments
    if not names:
        parser.print_usage()
        print("error: give experiment ids, or --all / --list",
              file=sys.stderr)
        return 2
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"error: unknown experiments {unknown}; see --list",
              file=sys.stderr)
        return 2

    jobs = resolve_jobs(args.jobs)
    # One shared spawn pool for the whole invocation: worker start-up
    # (interpreter + imports) is paid once, not per experiment.
    executor = spawn_executor(jobs) if jobs > 1 else None
    rc = 0
    markdown_parts = []
    trend_metrics = {}
    try:
        for name in names:
            started = time.time()
            fn = ALL_EXPERIMENTS[name]
            exp = getattr(fn, "experiment", None)
            try:
                if exp is None:
                    # Legacy callable (tests monkeypatch these): run
                    # directly, fail-fast.
                    result = _run_legacy(fn, args)
                    report = None
                else:
                    live = None
                    if args.live_dir or args.timeseries:
                        from repro.harness.runner import LiveOptions
                        live = LiveOptions(
                            live_dir=(os.path.join(args.live_dir, name)
                                      if args.live_dir else None),
                            window_cycles=args.window_cycles)
                    from repro.harness.runner import Instrumentation
                    report = run_experiment(
                        exp, scale=args.scale, jobs=jobs,
                        options={"eviction_policy":
                                 args.eviction_policy},
                        instrument=Instrumentation(
                            profile=bool(args.profile_dir),
                            attribution=args.attribute,
                            live=live),
                        progress=(False if args.no_progress
                                  else None),
                        executor=executor)
                    result = report.result
            except Exception:
                # Don't lose the experiments that already finished:
                # flush a partial report, then surface the failure
                # (non-zero exit via the re-raise).
                markdown_parts.append(
                    f"### {name} — FAILED after "
                    f"{time.time() - started:.1f}s\n")
                if args.markdown:
                    _write_markdown(args, markdown_parts, partial=True)
                print(f"error: experiment {name} raised; "
                      + (f"partial results in {args.markdown}"
                         if args.markdown else
                         "no --markdown to save to"),
                      file=sys.stderr)
                raise
            elapsed = time.time() - started
            print(format_result(result))
            print(f"[{name} finished in {elapsed:.1f}s"
                  + (f", {jobs} workers" if jobs > 1 else "") + "]")
            if result.errors:
                rc = 1
                for err in result.errors:
                    print(f"error: {name} point {err['params']}: "
                          f"{err['error']}", file=sys.stderr)
            if args.profile_dir and report is not None \
                    and report.profiles:
                _write_profiles(args.profile_dir, name, report)
            if args.trend_file and exp is not None \
                    and exp.trend is not None and not result.errors:
                try:
                    metric = exp.trend(result)
                except Exception as exc:   # noqa: BLE001 — trend is
                    # advisory; a broken extractor must not fail the run
                    print(f"warning: trend metric for {name} "
                          f"failed: {exc}", file=sys.stderr)
                    metric = None
                if metric is not None:
                    trend_metrics[name] = metric
            print()
            markdown_parts.append(format_markdown(result,
                                                  elapsed=elapsed))
    finally:
        if executor is not None:
            executor.shutdown()

    if args.trend_file:
        if trend_metrics:
            from repro.telemetry.trend import append_run
            append_run(args.trend_file, trend_metrics,
                       scale=args.scale)
            print(f"trend row appended to {args.trend_file} "
                  f"({len(trend_metrics)} metric(s): "
                  f"{', '.join(sorted(trend_metrics))})")
        else:
            print(f"no trend metrics collected; {args.trend_file} "
                  "unchanged (experiments without a trend extractor, "
                  "or with failed points)", file=sys.stderr)

    if args.markdown:
        _write_markdown(args, markdown_parts)
        print(f"markdown written to {args.markdown}")
    return rc


def _run_legacy(fn, args):
    """Direct call of a plain (non-registry) experiment callable."""
    kwargs = {"scale": args.scale}
    if args.eviction_policy:
        # Only experiments that expose the knob receive it; the rest
        # run unchanged rather than erroring on an unknown kwarg.
        params = inspect.signature(fn).parameters
        if "eviction_policy" in params:
            kwargs["eviction_policy"] = args.eviction_policy
    return fn(**kwargs)


def _write_profiles(profile_dir, name, report) -> None:
    """Write per-launch docs, traces, and the merged suite profile."""
    from repro.telemetry import write_profile_docs

    out_dir = os.path.join(profile_dir, name)
    written = write_profile_docs(out_dir, report.profiles,
                                 report.tracers)
    if report.merged is not None:
        path = os.path.join(out_dir, "suite-profile.json")
        with open(path, "w") as f:
            json.dump(report.merged, f, indent=2, sort_keys=True)
        written.append(path)
        print(format_profile(report.merged))
    print(f"[{len(report.profiles)} launch profiles, "
          f"{len(written)} files -> {out_dir}]")


def _write_markdown(args, parts: list, partial: bool = False) -> None:
    parent = os.path.dirname(args.markdown)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(args.markdown, "w") as f:
        header = f"# Reproduction results (scale={args.scale})"
        if partial:
            header += " — PARTIAL (an experiment failed)"
        f.write(header + "\n\n")
        f.write("\n".join(parts))


if __name__ == "__main__":
    sys.exit(main())
