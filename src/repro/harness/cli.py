"""``repro-experiments`` — regenerate the paper's tables and figures.

Examples::

    repro-experiments --list
    repro-experiments table1 table2
    repro-experiments --all --scale quick
    repro-experiments --all --markdown results.md
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.reporting import format_markdown, format_result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce ActivePointers (ISCA'16) tables/figures.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (see --list)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--scale", choices=("quick", "full"),
                        default="quick",
                        help="problem sizes (default: quick)")
    parser.add_argument("--markdown", metavar="PATH",
                        help="also write results as Markdown")
    args = parser.parse_args(argv)

    if args.list:
        for name in ALL_EXPERIMENTS:
            print(name)
        return 0

    names = list(ALL_EXPERIMENTS) if args.all else args.experiments
    if not names:
        parser.print_usage()
        print("error: give experiment ids, or --all / --list",
              file=sys.stderr)
        return 2
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"error: unknown experiments {unknown}; see --list",
              file=sys.stderr)
        return 2

    markdown_parts = []
    for name in names:
        started = time.time()
        result = ALL_EXPERIMENTS[name](scale=args.scale)
        elapsed = time.time() - started
        print(format_result(result))
        print(f"[{name} finished in {elapsed:.1f}s]\n")
        markdown_parts.append(format_markdown(result))

    if args.markdown:
        with open(args.markdown, "w") as f:
            f.write(f"# Reproduction results (scale={args.scale})\n\n")
            f.write("\n".join(markdown_parts))
        print(f"markdown written to {args.markdown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
