"""Registry entries for every table/figure of the paper's evaluation
(§VI), one declarative :class:`~repro.harness.registry.Experiment` per
table or figure.

Each experiment is three module-level pieces — a parameter ``grid``
(picklable dicts), a ``point`` function measuring one grid point, and
(where points are coupled by a baseline or a pivot) a parent-side
``fold`` — registered with :func:`~repro.harness.registry.experiment`.
``scale`` selects ``"quick"`` (CI-sized, minutes total) or ``"full"``
(closer to the paper's sweep sizes).  Paper values are embedded
alongside measured ones so reports always show the comparison.

The legacy one-function-per-figure API (``table1()``, ``figure6()``,
...) was removed after its deprecation cycle; go through
:data:`~repro.harness.registry.REGISTRY` and
:func:`repro.harness.runner.run_experiment`, which can fan the grid
points out across worker processes (``repro-experiments --jobs``), or
the serial ``ALL_EXPERIMENTS`` callables.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.collage import (
    CollageDataset,
    DatasetParams,
    make_problem,
    reference_solution,
    run_cpu,
    run_cpu_gpu,
    run_gpufs,
    run_gpufs_apointers,
)
from repro.core import APConfig, AVM, ImplVariant, PtrFormat
from repro.gpu import Device
from repro.harness.registry import (
    REGISTRY,
    Column,
    ExperimentResult,
    experiment,
)
from repro.workloads import WORKLOADS, run_memcpy, run_workload, \
    workload_by_name
from repro.workloads.filebench import (
    run_pagefault_bench,
    run_tlb_sweep_point,
    run_workload_file,
)

PAGE = 4096


def _sizes(scale: str, quick, full):
    if scale == "quick":
        return quick
    if scale == "full":
        return full
    raise ValueError(f"unknown scale {scale!r}")


def _merge_rows(rows: list, key: str) -> list:
    """Fold helper: merge partial rows sharing ``row[key]`` (in first-
    appearance order) into one wide row each — the pivot that turns
    per-cell points back into the paper's table rows."""
    merged: dict = {}
    order: list = []
    for row in rows:
        k = row[key]
        if k not in merged:
            merged[k] = {}
            order.append(k)
        merged[k].update(row)
    return [merged[k] for k in order]


# ----------------------------------------------------------------------
# Table I — apointer operation latency in GPU cycles
# ----------------------------------------------------------------------
TABLE1_PAPER = {
    ("Raw access", "read"): 225, ("Raw access", "inc"): 32,
    ("Raw access", "read+inc"): 257, ("Raw access", "read+inc+rw"): 257,
    ("Compiler", "read"): 367, ("Compiler", "inc"): 152,
    ("Compiler", "read+inc"): 519, ("Compiler", "read+inc+rw"): 585,
    ("Optimized PTX", "read"): 282,
    ("Optimized PTX", "read+inc"): 434,
    ("Optimized PTX", "read+inc+rw"): 544,
    ("Prefetching", "read"): 271,
    ("Prefetching", "read+inc"): 423,
    ("Prefetching", "read+inc+rw"): 435,
}

_TABLE1_VARIANTS: dict[str, Optional[ImplVariant]] = {
    "Raw access": None,
    "Compiler": ImplVariant.COMPILER,
    "Optimized PTX": ImplVariant.OPTIMIZED_PTX,
    "Prefetching": ImplVariant.PREFETCH,
}


def _measure_latency(variant: Optional[ImplVariant], op: str,
                     perm: bool) -> float:
    """Single-warp latency of one apointer (or raw) operation."""
    device = Device(memory_bytes=16 * 1024 * 1024)
    base = device.alloc(PAGE * 2)
    times: list[float] = []

    def kern(ctx):
        if variant is None:
            addr = base + ctx.lane * 4
            _ = yield from ctx.load(addr, "f4")        # warm-up
            t0 = yield from ctx.clock()
            if "read" in op:
                ctx.charge(2, chain=2)
                _ = yield from ctx.load(addr, "f4")
            if "inc" in op:
                ctx.charge(2, chain=2)
            t1 = yield from ctx.clock()
        else:
            avm = AVM(APConfig(variant=variant, perm_checks=perm))
            ptr = avm.gvmmap_device(ctx, base, PAGE * 2)
            yield from ptr.seek(ctx, ctx.lane * 4)
            _ = yield from ptr.read(ctx, "f4")         # warm-up: link
            t0 = yield from ctx.clock()
            if "read" in op:
                _ = yield from ptr.read(ctx, "f4")
            if "inc" in op:
                yield from ptr.add(ctx, 4)
            t1 = yield from ctx.clock()
            yield from ptr.destroy(ctx)
        times.append(t1 - t0)

    device.launch(kern, grid=1, block_threads=32)
    return times[0]


def table1_grid(scale: str) -> list[dict]:
    return [{"implementation": name, "op": op}
            for name in _TABLE1_VARIANTS
            for op in ("read", "inc", "read+inc", "read+inc+rw")
            if (name, op) in TABLE1_PAPER]


def table1_trend(result: ExperimentResult) -> Optional[dict]:
    """Trend metric: prefetching read latency (the paper's headline
    single-op number, Table I)."""
    try:
        row = result.row_by(implementation="Prefetching", op="read")
    except KeyError:
        return None
    return {"metric": "prefetch_read_cycles",
            "value": row["measured"], "unit": "cycles",
            "higher_is_better": False, "tier1": True}


@experiment(
    "table1",
    title="Apointer operation latency (GPU cycles, 1 warp)",
    columns=(Column("implementation", role="param"),
             Column("op", role="param"),
             Column("measured", unit="cycles", role="measured"),
             Column("paper", unit="cycles", role="paper")),
    grid=table1_grid,
    trend=table1_trend,
    notes="rw = page permission checks enabled; '-' ops not "
          "reported by the paper are skipped.",
)
def table1_point(*, scale: str, implementation: str, op: str) -> list:
    """Table I: read / inc latency of one implementation level."""
    variant = _TABLE1_VARIANTS[implementation]
    perm = op.endswith("rw") and variant is not None
    measured = _measure_latency(variant, op, perm)
    return [{
        "implementation": implementation,
        "op": op,
        "measured": round(measured, 1),
        "paper": TABLE1_PAPER[(implementation, op)],
    }]


# ----------------------------------------------------------------------
# Table II — memcpy bandwidth
# ----------------------------------------------------------------------
TABLE2_PAPER = {"4-byte": 99.7, "4-byte+rw": 97.7, "8-byte": 148.7}
TABLE2_PAPER_PEAK = 152.0

_TABLE2_CASES = [("4-byte", 4, False), ("4-byte+rw", 4, True),
                 ("8-byte", 8, False)]


def table2_grid(scale: str) -> list[dict]:
    return [{"access": label, "width": width, "perm": perm}
            for label, width, perm in _TABLE2_CASES]


def table2_trend(result: ExperimentResult) -> Optional[dict]:
    """Trend metric: 4-byte apointer memcpy bandwidth (Table II)."""
    try:
        row = result.row_by(access="4-byte")
    except KeyError:
        return None
    return {"metric": "memcpy_4byte_gbs",
            "value": row["measured_gbs"], "unit": "GB/s",
            "higher_is_better": True, "tier1": True}


@experiment(
    "table2",
    title="Memory-copy bandwidth (GB/s, % of achievable peak)",
    columns=(Column("access", role="param"),
             Column("measured_gbs", unit="GB/s", role="measured"),
             Column("measured_pct", unit="%", role="measured"),
             Column("paper_gbs", unit="GB/s", role="paper"),
             Column("paper_pct", unit="%", role="paper")),
    grid=table2_grid,
    trend=table2_trend,
    notes="Peak = 152 GB/s (cudaMemcpyDeviceToDevice convention: "
          "read+write traffic).",
)
def table2_point(*, scale: str, access: str, width: int,
                 perm: bool) -> list:
    """Table II: apointer memcpy bandwidth vs cudaMemcpy D2D."""
    nblocks, iters = _sizes(scale, (13, 16), (52, 32))
    device = Device(memory_bytes=512 * 1024 * 1024)
    r = run_memcpy(device, use_apointers=True, width=width,
                   nblocks=nblocks, iters_per_thread=iters,
                   perm_checks=perm)
    if not r.verified:
        raise AssertionError(f"memcpy {access} copied wrong data")
    return [{
        "access": access,
        "measured_gbs": round(r.bandwidth / 1e9, 1),
        "measured_pct": round(100 * r.fraction_of_peak, 1),
        "paper_gbs": TABLE2_PAPER[access],
        "paper_pct": round(100 * TABLE2_PAPER[access]
                           / TABLE2_PAPER_PEAK, 1),
    }]


# ----------------------------------------------------------------------
# Figure 6 — apointer overhead vs occupancy
# ----------------------------------------------------------------------
def _figure6_blocks(scale: str, with_gpufs: bool) -> list[int]:
    block_counts = _sizes(scale, [1, 4, 13, 26, 52],
                          [1, 2, 4, 8, 13, 26, 39, 52])
    if with_gpufs and scale == "quick":
        block_counts = [1, 13, 52]   # the page-cache runs are heavy
    return block_counts


def _figure6_grid(scale: str, width: int, with_gpufs: bool) -> list:
    return [{"workload": w.name, "nblocks": nb, "width": width,
             "with_gpufs": with_gpufs}
            for w in WORKLOADS
            for nb in _figure6_blocks(scale, with_gpufs)]


def figure6a_grid(scale: str) -> list[dict]:
    return _figure6_grid(scale, width=4, with_gpufs=False)


def figure6b_grid(scale: str) -> list[dict]:
    return _figure6_grid(scale, width=16, with_gpufs=False)


def figure6c_grid(scale: str) -> list[dict]:
    return _figure6_grid(scale, width=4, with_gpufs=True)


def _figure6_columns(with_gpufs: bool):
    def columns(scale: str) -> tuple:
        return (Column("workload", role="param"),
                *(Column(f"tb={nb}", unit="%", role="measured")
                  for nb in _figure6_blocks(scale, with_gpufs)))
    return columns


def figure6_fold(rows: list, scale: str) -> list:
    return _merge_rows(rows, "workload")


_FIGURE6_NOTES = ("Values are percent slowdown over the raw-pointer "
                  "baseline; paper aggregate: Fig 6b avg 20% (7% excl. "
                  "FFT), Fig 6c avg 16% excl. FFT at full occupancy.")


def _register_figure6(name: str, width: int, with_gpufs: bool, grid):
    experiment(
        name,
        title=(f"Apointer overhead vs #threadblocks ({width}-byte reads"
               f"{', GPUfs page cache' if with_gpufs else ''})"),
        columns=_figure6_columns(with_gpufs),
        grid=grid,
        fold=figure6_fold,
        notes=_FIGURE6_NOTES,
    )(figure6_point)


def figure6_point(*, scale: str, workload: str, nblocks: int,
                  width: int, with_gpufs: bool) -> list:
    """Figure 6: one (workload, occupancy) cell — percent overhead of
    the apointer version over the identical raw-pointer version."""
    _, iters = _sizes(scale, (None, 4), (None, 8))
    wl = workload_by_name(workload)
    if with_gpufs:
        r0 = run_workload_file(wl, use_apointers=False, nblocks=nblocks,
                               warps_per_block=8, iters_per_thread=32)
        r1 = run_workload_file(wl, use_apointers=True, nblocks=nblocks,
                               warps_per_block=8, iters_per_thread=32)
    else:
        device = Device(memory_bytes=768 * 1024 * 1024)
        r0 = run_workload(wl, device, use_apointers=False,
                          nblocks=nblocks, iters_per_thread=iters,
                          width=width)
        r1 = run_workload(wl, device, use_apointers=True,
                          nblocks=nblocks, iters_per_thread=iters,
                          width=width)
    if not (r0.verified and r1.verified):
        raise AssertionError(f"{workload} produced wrong results")
    return [{"workload": workload,
             f"tb={nblocks}": round(100 * r1.overhead_over(r0), 1)}]


_register_figure6("figure6a", width=4, with_gpufs=False,
                  grid=figure6a_grid)
_register_figure6("figure6b", width=16, with_gpufs=False,
                  grid=figure6b_grid)
_register_figure6("figure6c", width=4, with_gpufs=True,
                  grid=figure6c_grid)


# ----------------------------------------------------------------------
# Table III — page-fault overheads
# ----------------------------------------------------------------------
TABLE3_PAPER = {"Apointer Short": 20, "Apointer Long": 24, "no TLB": 13}

_TABLE3_CONFIGS: dict[str, Optional[APConfig]] = {
    "baseline": None,
    "Apointer Short": APConfig(fmt=PtrFormat.SHORT, use_tlb=True),
    "Apointer Long": APConfig(fmt=PtrFormat.LONG, use_tlb=True),
    "no TLB": APConfig(fmt=PtrFormat.LONG, use_tlb=False),
}


def table3_grid(scale: str) -> list[dict]:
    return [{"implementation": name} for name in _TABLE3_CONFIGS]


def table3_fold(rows: list, scale: str) -> list:
    """Overheads are relative to the shared gmmap() baseline point —
    derived here so the points themselves stay independent."""
    by_impl = {row["implementation"]: row for row in rows}
    base = by_impl.get("baseline")
    out = []
    for name in TABLE3_PAPER:
        row = by_impl.get(name)
        if row is None:
            continue
        out.append({
            "implementation": name,
            "minor_pct": (round(100 * (row["warm_cycles"]
                                       / base["warm_cycles"] - 1), 1)
                          if base else None),
            "major_pct": (round(100 * (row["cold_cycles"]
                                       / base["cold_cycles"] - 1), 1)
                          if base else None),
            "paper_minor_pct": TABLE3_PAPER[name],
            "paper_major": "none observable",
        })
    return out


@experiment(
    "table3",
    title="Page-fault overhead over the gmmap() baseline",
    columns=(Column("implementation", role="param"),
             Column("minor_pct", unit="%", role="measured"),
             Column("major_pct", unit="%", role="measured"),
             Column("paper_minor_pct", unit="%", role="paper"),
             Column("paper_major", role="paper", numeric=False)),
    grid=table3_grid,
    fold=table3_fold,
    notes="Major-fault overheads are masked by host transfers "
          "(paper: 'no observable overhead', std dev up to 10%).",
)
def table3_point(*, scale: str, implementation: str) -> list:
    """Table III: warm/cold fault cycles of one apointer flavour."""
    nblocks, warps, pages = _sizes(scale, (13, 32, 16), (13, 32, 64))
    cfg = _TABLE3_CONFIGS[implementation]
    r = run_pagefault_bench(use_apointers=cfg is not None,
                            nblocks=nblocks, warps_per_block=warps,
                            pages_per_warp=pages, config=cfg)
    return [{"implementation": implementation,
             "warm_cycles": r.warm_cycles,
             "cold_cycles": r.cold_cycles}]


# ----------------------------------------------------------------------
# Figure 7 — TLB size vs page reuse
# ----------------------------------------------------------------------
def _figure7_uniques(scale: str) -> list[int]:
    return _sizes(scale, [8, 16, 32, 64, 128],
                  [4, 8, 16, 32, 64, 128, 256, 512])


def figure7_grid(scale: str) -> list[dict]:
    return [{"tlb_entries": tlb, "unique_pages": u}
            for tlb in (16, 32, 64, None)
            for u in _figure7_uniques(scale)]


def figure7_columns(scale: str) -> tuple:
    return (Column("tlb", role="param"),
            *(Column(f"pages={u}", unit="cycles", role="measured")
              for u in _figure7_uniques(scale)))


def figure7_fold(rows: list, scale: str) -> list:
    return _merge_rows(rows, "tlb")


@experiment(
    "figure7",
    title="Access time per page vs unique pages per threadblock",
    columns=figure7_columns,
    grid=figure7_grid,
    fold=figure7_fold,
    notes="Paper shape: the TLB wins at high reuse; the TLB-less "
          "design wins once the working set exceeds the TLB, "
          "because it avoids TLB update costs.",
)
def figure7_point(*, scale: str, tlb_entries: Optional[int],
                  unique_pages: int) -> list:
    """Figure 7: read cycles/page at one (TLB size, reuse) point."""
    reads = _sizes(scale, 32, 64)
    value = round(run_tlb_sweep_point(unique_pages=unique_pages,
                                      tlb_entries=tlb_entries,
                                      reads_per_warp=reads))
    return [{"tlb": "none" if tlb_entries is None else tlb_entries,
             f"pages={unique_pages}": value}]


# ----------------------------------------------------------------------
# Figure 9 — image collage end-to-end
# ----------------------------------------------------------------------
def _collage_specs(scale: str) -> list[tuple]:
    return _sizes(
        scale,
        [("small", 8, 8, 12), ("medium", 12, 12, 6),
         ("large", 16, 16, 4)],
        [("small", 8, 8, 16), ("medium", 16, 16, 8),
         ("large", 24, 24, 5), ("huge", 32, 32, 3)],
    )


def figure9_grid(scale: str) -> list[dict]:
    return [{"problem": name, "blocks_x": bx, "blocks_y": by,
             "cluster_spread": spread}
            for name, bx, by, spread in _collage_specs(scale)]


@experiment(
    "figure9",
    title="Image collage: runtime per block normalised to CPU "
          "(lower is better)",
    columns=(Column("input", role="param"),
             Column("reuse", unit="x", role="measured"),
             Column("CPU", unit="x", role="measured"),
             Column("CPU+GPU", unit="x", role="measured"),
             Column("GPUfs", unit="x", role="measured"),
             Column("GPUfs+AP", unit="x", role="measured"),
             Column("ap_overhead_pct", unit="%", role="derived")),
    grid=figure9_grid,
    notes="Paper aggregates: GPUfs 1.6x over CPU and 2.6x over "
          "CPU+GPU on average (up to 2.6x / 3.9x); apointers add "
          "<1% over GPUfs.",
)
def figure9_point(*, scale: str, problem: str, blocks_x: int,
                  blocks_y: int, cluster_spread: int) -> list:
    """Figure 9: one collage input, all four implementations."""
    images, clusters = _sizes(scale, (2048, 32), (8192, 64))
    dataset = CollageDataset(DatasetParams(num_images=images,
                                           num_clusters=clusters))
    prob = make_problem(dataset, name=problem, blocks_x=blocks_x,
                        blocks_y=blocks_y,
                        cluster_spread=cluster_spread)
    reference = reference_solution(prob)
    outcomes = {}
    for fn in (run_cpu, run_cpu_gpu, run_gpufs, run_gpufs_apointers):
        out = fn(prob)
        if not out.matches(reference):
            raise AssertionError(
                f"{out.name} produced a wrong collage for {prob.name}")
        outcomes[out.name] = out
    cpu_time = outcomes["CPU"].seconds
    row = {"input": prob.name, "reuse": round(prob.data_reuse(), 1)}
    for name in ("CPU", "CPU+GPU", "GPUfs", "GPUfs+AP"):
        row[name] = round(outcomes[name].seconds / cpu_time, 3)
    row["ap_overhead_pct"] = round(
        100 * (outcomes["GPUfs+AP"].seconds
               / outcomes["GPUfs"].seconds - 1), 2)
    return [row]


# ----------------------------------------------------------------------
# §VI-E — unaligned access
# ----------------------------------------------------------------------
def unaligned_grid(scale: str) -> list[dict]:
    return [{"aligned": True}, {"aligned": False}]


@experiment(
    "unaligned",
    title="Unaligned (3 KB) records through apointers",
    columns=(Column("layout", role="param"),
             Column("record_bytes", unit="bytes", role="param"),
             Column("seconds", unit="s", role="measured"),
             Column("correct", role="measured", numeric=False)),
    grid=unaligned_grid,
    notes="Same kernel code for both layouts — the usability point "
          "of memory-mapped files.",
)
def unaligned_point(*, scale: str, aligned: bool) -> list:
    """§VI-E: 3 KB records without page alignment, via apointers.

    The apointer kernel is *unmodified*; only the dataset layout
    changes.  (The gmmap baseline needs explicit multi-page mapping
    code — see ``repro.collage.runners``.)
    """
    images, clusters = _sizes(scale, (1024, 16), (4096, 48))
    dataset = CollageDataset(DatasetParams(
        num_images=images, num_clusters=clusters, aligned=aligned))
    problem = make_problem(dataset, blocks_x=6, blocks_y=6,
                           cluster_spread=4)
    reference = reference_solution(problem)
    out = run_gpufs_apointers(problem)
    return [{
        "layout": "aligned (4 KB)" if aligned else "unaligned (3 KB)",
        "record_bytes": dataset.params.record_bytes,
        "seconds": round(out.seconds, 6),
        "correct": out.matches(reference),
    }]


# ----------------------------------------------------------------------
# Ablations called out in the design sections
# ----------------------------------------------------------------------
def ablation_prefetch_grid(scale: str) -> list[dict]:
    return [{"variant": v.value}
            for v in (ImplVariant.OPTIMIZED_PTX, ImplVariant.PREFETCH)]


@experiment(
    "ablation_prefetch",
    title="Speculative prefetch ablation",
    columns=(Column("variant", role="param"),
             Column("read_latency_cycles", unit="cycles",
                    role="measured"),
             Column("memcpy_pct_peak", unit="%", role="measured")),
    grid=ablation_prefetch_grid,
)
def ablation_prefetch_point(*, scale: str, variant: str) -> list:
    """§IV-B: speculative prefetch on/off, read latency and bandwidth."""
    impl = ImplVariant(variant)
    nblocks, iters = _sizes(scale, (13, 16), (26, 32))
    lat = _measure_latency(impl, "read", perm=False)
    device = Device(memory_bytes=512 * 1024 * 1024)
    bw = run_memcpy(device, use_apointers=True, width=4,
                    nblocks=nblocks, iters_per_thread=iters,
                    config=APConfig(variant=impl))
    return [{
        "variant": variant,
        "read_latency_cycles": round(lat, 1),
        "memcpy_pct_peak": round(100 * bw.fraction_of_peak, 1),
    }]


def ablation_batching_grid(scale: str) -> list[dict]:
    return [{"batching": True}, {"batching": False}]


def ablation_batching_trend(result: ExperimentResult) -> Optional[dict]:
    """Trend metric: batched major-fault run time (§V)."""
    try:
        row = result.row_by(batching=True)
    except KeyError:
        return None
    return {"metric": "batched_cycles", "value": row["cycles"],
            "unit": "cycles", "higher_is_better": False, "tier1": True}


@experiment(
    "ablation_batching",
    title="PCIe transfer batching for 4 KB pages",
    columns=(Column("batching", role="param", numeric=False),
             Column("cycles", unit="cycles", role="measured"),
             Column("batches", role="measured"),
             Column("mean_batch", unit="pages", role="measured")),
    grid=ablation_batching_grid,
    trend=ablation_batching_trend,
    notes="Major-fault-dominated run; batching amortises the fixed "
          "PCIe transaction cost (§V).",
)
def ablation_batching_point(*, scale: str, batching: bool) -> list:
    """§V: host-side transfer batching for 4 KB pages, on/off."""
    from repro.workloads.filebench import make_file_env

    npages = _sizes(scale, 256, 1024)
    device, gpufs, fid, _ = make_file_env(
        npages * PAGE, num_frames=npages + 8,
        memory_bytes=npages * PAGE + 128 * 1024 * 1024,
        batching=batching)
    nwarps = 64

    def kern(ctx):
        for p in range(ctx.warp_id, npages, nwarps):
            yield from gpufs.gmmap(ctx, fid, p * PAGE)
            yield from gpufs.gmunmap(ctx, fid, p * PAGE)

    res = device.launch(kern, grid=2, block_threads=1024)
    return [{
        "batching": batching,
        "cycles": round(res.cycles),
        "batches": gpufs.batcher.stats.batches,
        "mean_batch": round(gpufs.batcher.stats.mean_batch_size(), 1),
    }]


def ablation_registers_grid(scale: str) -> list[dict]:
    return [{"regs_per_thread": regs} for regs in (64, 128)]


def ablation_registers_fold(rows: list, scale: str) -> list:
    base = next((r["cycles"] for r in rows
                 if r["regs_per_thread"] == 64), None)
    return [dict(r, slowdown_vs_64=(round(r["cycles"] / base, 3)
                                    if base else None))
            for r in rows]


@experiment(
    "ablation_registers",
    title="Register pressure vs occupancy (Read workload, apointers)",
    columns=(Column("regs_per_thread", role="param"),
             Column("blocks_per_sm", role="measured"),
             Column("cycles", unit="cycles", role="measured"),
             Column("slowdown_vs_64", unit="x", role="derived")),
    grid=ablation_registers_grid,
    fold=ablation_registers_fold,
    notes="More registers per thread halve residency and expose "
          "the translation latency the extra registers were meant "
          "to help with - the paper's motivation for the 64-register "
          "cap.",
)
def ablation_registers_point(*, scale: str, regs_per_thread: int) -> list:
    """§VII register pressure: the paper caps kernels at 64 registers/
    thread because higher counts reduce occupancy and hurt latency
    hiding (the GK210 register file fits 2048 threads x 64 regs)."""
    from repro.gpu.occupancy import occupancy_limits
    from repro.gpu.specs import K80_SPEC

    nblocks = _sizes(scale, 26, 52)
    workload = workload_by_name("Read")
    device = Device(memory_bytes=512 * 1024 * 1024)
    run = run_workload(workload, device, use_apointers=True,
                       nblocks=nblocks, iters_per_thread=4,
                       regs_per_thread=regs_per_thread)
    if not run.verified:
        raise AssertionError("register ablation produced bad data")
    occ = occupancy_limits(K80_SPEC, 1024,
                           regs_per_thread=regs_per_thread)
    return [{
        "regs_per_thread": regs_per_thread,
        "blocks_per_sm": occ.blocks_per_sm,
        "cycles": round(run.cycles),
    }]


def ablation_future_hw_grid(scale: str) -> list[dict]:
    return [{"variant": v.value}
            for v in (ImplVariant.PREFETCH, ImplVariant.HW_ASSISTED)]


@experiment(
    "ablation_future_hw",
    title="Projected impact of the paper's §VII hardware extensions",
    columns=(Column("variant", role="param"),
             Column("read_latency_cycles", unit="cycles",
                    role="measured"),
             Column("inc_latency_cycles", unit="cycles",
                    role="measured"),
             Column("memcpy_4B_pct_peak", unit="%", role="measured")),
    grid=ablation_future_hw_grid,
    notes="HW_ASSISTED models dedicated boundary-check/increment "
          "instructions and fused shuffle+integer ops.",
)
def ablation_future_hw_point(*, scale: str, variant: str) -> list:
    """§VII what-if: hardware-assisted apointer operations.

    The paper argues that "hardware extensions for these operations ...
    and special instructions which fuse shuffle and integer arithmetics
    could help reduce or eliminate these overheads".  This experiment
    swaps in the HW_ASSISTED cost model and re-runs the headline
    fault-free benchmarks.
    """
    impl = ImplVariant(variant)
    nblocks, iters = _sizes(scale, (13, 16), (26, 32))
    read = _measure_latency(impl, "read", perm=False)
    inc = _measure_latency(impl, "inc", perm=False)
    device = Device(memory_bytes=512 * 1024 * 1024)
    bw = run_memcpy(device, use_apointers=True, width=4,
                    nblocks=nblocks, iters_per_thread=iters,
                    config=APConfig(variant=impl))
    if not bw.verified:
        raise AssertionError("hw-assist memcpy copied wrong data")
    return [{
        "variant": variant,
        "read_latency_cycles": round(read, 1),
        "inc_latency_cycles": round(inc, 1),
        "memcpy_4B_pct_peak": round(100 * bw.fraction_of_peak, 1),
    }]


def ablation_eviction_grid(scale: str,
                           eviction_policy: Optional[str] = None
                           ) -> list[dict]:
    policies = ((eviction_policy,) if eviction_policy
                else ("clock", "fifo", "lru", "random"))
    return [{"policy": policy} for policy in policies]


@experiment(
    "ablation_eviction",
    title="Eviction policy under thrash (cache = working set / 2)",
    columns=(Column("policy", role="param"),
             Column("cycles", unit="cycles", role="measured"),
             Column("major_faults", role="measured"),
             Column("evictions", role="measured")),
    grid=ablation_eviction_grid,
    options=("eviction_policy",),
    notes="Sequential-with-reuse sweep; the differences are small "
          "because the access pattern cycles through the file.",
)
def ablation_eviction_point(*, scale: str, policy: str) -> list:
    """Eviction-policy ablation under cache thrash.

    The paper leaves the replacement policy unspecified; this sweep
    runs the §VI-C page-walk workload with a cache holding half the
    working set and compares clock/FIFO/LRU/random.  The policy is
    plumbed through :class:`~repro.paging.gpufs.GPUfsConfig`
    (``eviction_policy``) rather than swapped in after construction;
    the CLI's ``--eviction-policy`` restricts the sweep to one policy.
    """
    from repro.workloads.filebench import make_file_env

    npages, rounds = _sizes(scale, (128, 3), (512, 4))
    device, gpufs, fid, _ = make_file_env(
        npages * PAGE, num_frames=npages // 2,
        memory_bytes=npages * PAGE + 128 * 1024 * 1024,
        eviction_policy=policy)
    nwarps = 32

    def kern(ctx):
        for r in range(rounds):
            for p in range(ctx.warp_id, npages, nwarps):
                yield from gpufs.gmmap(ctx, fid, p * PAGE)
                yield from gpufs.gmunmap(ctx, fid, p * PAGE)

    res = device.launch(kern, grid=1, block_threads=1024)
    return [{
        "policy": policy,
        "cycles": round(res.cycles),
        "major_faults": gpufs.stats.major_faults,
        "evictions": gpufs.cache.evictions,
    }]


def ablation_readahead_grid(scale: str,
                            eviction_policy: Optional[str] = None
                            ) -> list[dict]:
    policy = eviction_policy or "clock"
    return [{"workload": workload, "readahead": ra,
             "eviction_policy": policy}
            for workload in ("seq-read", "file-memcpy")
            for ra in (False, True)]


def ablation_readahead_fold(rows: list, scale: str) -> list:
    """Speedup is vs the readahead-off point of the same workload."""
    base = {r["workload"]: r["cycles"] for r in rows
            if not r["readahead"]}
    out = []
    for r in rows:
        r = dict(r)
        b = base.get(r["workload"])
        r["speedup"] = round(b / r["cycles"], 3) if b else None
        r["cycles"] = round(r["cycles"])
        r.pop("eviction_policy", None)
        out.append(r)
    return out


def ablation_readahead_trend(result: ExperimentResult
                             ) -> Optional[dict]:
    """Trend metric: sequential-read speedup with readahead on."""
    try:
        row = result.row_by(workload="seq-read", readahead=True)
    except KeyError:
        return None
    if row.get("speedup") is None:
        return None
    return {"metric": "seq_read_speedup", "value": row["speedup"],
            "unit": "x", "higher_is_better": True, "tier1": True}


@experiment(
    "ablation_readahead",
    title="Asynchronous page readahead (cold cache, sequential)",
    columns=(Column("workload", role="param"),
             Column("readahead", role="param", numeric=False),
             Column("cycles", unit="cycles", role="measured"),
             Column("speedup", unit="x", role="derived"),
             Column("major_faults", role="measured"),
             Column("ra_issued", role="measured"),
             Column("ra_hits", role="measured"),
             Column("ra_wasted", role="measured"),
             Column("ra_cancelled", role="measured")),
    grid=ablation_readahead_grid,
    fold=ablation_readahead_fold,
    trend=ablation_readahead_trend,
    options=("eviction_policy",),
    notes="Extension beyond §V: a host-side readahead daemon "
          "issues speculative page-ins through the same transfer "
          "batcher, so speculative and demand transfers coalesce. "
          "`speedup` is vs the batching-only baseline of the same "
          "workload; output is verified against file contents.",
)
def ablation_readahead_point(*, scale: str, workload: str,
                             readahead: bool,
                             eviction_policy: str) -> list:
    """Asynchronous page readahead, off vs on (reproduction extension).

    §V's batching amortises the PCIe transaction cost of *demand*
    faults; ``repro.readahead`` goes further and has the host daemon
    push pages speculatively once a warp's faults look sequential.
    Cold-cache streaming reads are the best case: the first faults of
    each warp train the stream detector, and the rest of the file
    arrives before the warps ask for it.
    """
    from repro.workloads.filebench import run_sequential_file_read

    # (npages, warps): file-memcpy uses fewer warps so each stream is
    # long enough for the detector to train before the warp finishes.
    (seq_pages, seq_warps), (mc_pages, mc_warps) = _sizes(
        scale, ((192, 32), (128, 16)), ((768, 32), (384, 16)))
    pages, nwarps, copy = ((seq_pages, seq_warps, False)
                           if workload == "seq-read"
                           else (mc_pages, mc_warps, True))
    r = run_sequential_file_read(npages=pages, warps=nwarps,
                                 copy_pages=copy, readahead=readahead,
                                 eviction_policy=eviction_policy)
    if not r.verified:
        raise AssertionError(
            f"{workload} (readahead={readahead}) read wrong data")
    return [{
        "workload": workload,
        "readahead": readahead,
        "cycles": r.cycles,
        "major_faults": r.major_faults,
        "ra_issued": r.ra_issued,
        "ra_hits": r.ra_hits,
        "ra_wasted": r.ra_wasted,
        "ra_cancelled": r.ra_cancelled,
    }]


def ablation_io_preemption_grid(scale: str) -> list[dict]:
    return [{"p2p": p2p, "preempt": preempt}
            for p2p in (False, True)
            for preempt in (False, True)]


def ablation_io_preemption_fold(rows: list, scale: str) -> list:
    base = {r["io_path"]: r["cycles"] for r in rows
            if not r["io_preemption"]}
    return [dict(r, speedup_vs_no_preempt=(
        round(base[r["io_path"]] / r["cycles"], 3)
        if base.get(r["io_path"]) else None)) for r in rows]


@experiment(
    "ablation_io_preemption",
    title="I/O-driven threadblock preemption (§VII what-if)",
    columns=(Column("io_path", role="param"),
             Column("io_preemption", role="param", numeric=False),
             Column("cycles", unit="cycles", role="measured"),
             Column("preemptions", role="measured"),
             Column("speedup_vs_no_preempt", unit="x", role="derived")),
    grid=ablation_io_preemption_grid,
    fold=ablation_io_preemption_fold,
    notes="Disk-class storage (~150 us/access).  With host-mediated "
          "faults the host RPC service rate is the bottleneck "
          "(the paper's Figure 1 problem) and preemption cannot "
          "help; with peer-to-peer DMA (GPUDirect, §I) the stall "
          "is pure latency and preemption recovers the SMs — the "
          "combination the paper's GPU-centric design plus "
          "GPUpIO [24] argues for.",
)
def ablation_io_preemption_point(*, scale: str, p2p: bool,
                                 preempt: bool) -> list:
    """§VII what-if: I/O-driven threadblock preemption (GPUpIO [24]).

    "A major page fault incurs a long-latency access to the backing
    store ... the stalled warp wastes the SM resources while waiting
    for data, calling for the addition of a hardware-assisted
    threadblock preemption mechanism."  Here a wave of I/O-bound blocks
    (major faults) occupies every SM while compute-bound blocks wait in
    the grid queue; preemption lets the compute run during the stalls.
    """
    from repro.gpu.specs import K80_SPEC
    from repro.workloads.filebench import make_file_env

    # One synthetic compute burst for the compute-bound blocks: enough
    # dependent arithmetic to keep an SM busy through an I/O stall
    # window without touching memory.
    burst_instrs, burst_chain = 150, 20
    compute_ops = _sizes(scale, 40, 64)
    io_blocks = 26           # fills all 13 SMs (2 blocks/SM)
    compute_blocks = 26
    io_warps = io_blocks * 32
    npages = io_warps * 2    # two disk-class faults per warp
    device, gpufs, fid, _ = make_file_env(
        npages * PAGE, num_frames=npages + 8,
        memory_bytes=256 * 1024 * 1024 + npages * PAGE)
    device.spec = K80_SPEC.with_overrides(
        io_preemption=preempt, pcie_latency_s=150e-6,
        host_rpc_s=0.0 if p2p else K80_SPEC.host_rpc_s)
    gpufs.batcher.enabled = False

    def kern(ctx):
        if ctx.block_id < io_blocks:
            # I/O-bound: two dependent disk-class faults.
            for i in range(2):
                p = ctx.warp_id + i * io_warps
                yield from gpufs.gmmap(ctx, fid, p * PAGE)
                yield from gpufs.gmunmap(ctx, fid, p * PAGE)
        else:
            # Compute-bound: no memory traffic at all.
            for _ in range(compute_ops):
                yield from ctx.compute(burst_instrs, chain=burst_chain)

    res = device.launch(kern, grid=io_blocks + compute_blocks,
                        block_threads=1024)
    return [{
        "io_path": "p2p-dma" if p2p else "host-mediated",
        "io_preemption": preempt,
        "cycles": round(res.cycles),
        "preemptions": res.stats.preemptions,
    }]


# ----------------------------------------------------------------------
# Write-capable syscall workloads (repro.syscalls extension)
# ----------------------------------------------------------------------
def syscall_kvstore_grid(scale: str) -> list[dict]:
    return [{"cache": cache} for cache in ("full", "half")]


def syscall_kvstore_trend(result: ExperimentResult) -> Optional[dict]:
    """Trend metric: KV throughput under write-back eviction."""
    try:
        row = result.row_by(cache="half")
    except KeyError:
        return None
    return {"metric": "kv_ops_per_s", "value": row["ops_per_s"],
            "unit": "ops/s", "higher_is_better": True, "tier1": True}


@experiment(
    "syscall_kvstore",
    title="On-GPU key-value store (pwrite/pread/msync persistence)",
    columns=(Column("cache", role="param", numeric=False),
             Column("cycles", unit="cycles", role="measured"),
             Column("ops_per_s", unit="ops/s", role="measured"),
             Column("pwrites", role="measured"),
             Column("writeback_bytes", unit="B", role="measured"),
             Column("major_faults", role="measured")),
    grid=syscall_kvstore_grid,
    trend=syscall_kvstore_trend,
    notes="Each warp PUT/GETs a private bucket of 64 B records "
          "through the generic syscall layer; a final msync "
          "persists the dirty pages.  `cache=half` holds half the "
          "store's pages, forcing write-back eviction mid-run.  The "
          "final file is verified byte-exactly against a serial "
          "host replay.",
)
def syscall_kvstore_point(*, scale: str, cache: str) -> list:
    """KV store over the syscall layer, with and without eviction.

    The write path the paper's GPUfs integration needs but §VI never
    measures: write faults, dirty-page tracking, and flush.  The
    ``half`` cache point is the stress case — dirty pages are evicted
    (written back) mid-run and re-faulted.
    """
    from repro.workloads.kvstore import run_kvstore

    nwarps, ops = _sizes(scale, (8, 16), (32, 64))
    rpw = 128                       # two pages per bucket
    npages = nwarps * rpw * 64 // PAGE
    frames = npages + 8 if cache == "full" else max(npages // 2,
                                                    nwarps + 2)
    r = run_kvstore(nwarps=nwarps, records_per_warp=rpw,
                    ops_per_warp=ops, num_frames=frames)
    if not r.verified:
        raise AssertionError(f"kvstore ({cache} cache) lost writes")
    return [{
        "cache": cache,
        "cycles": round(r.cycles),
        "ops_per_s": round(r.ops_per_s, 1),
        "pwrites": r.pwrites,
        "writeback_bytes": r.writeback_bytes,
        "major_faults": r.major_faults,
    }]


def syscall_grepscan_grid(scale: str) -> list[dict]:
    return [{"density": density} for density in ("sparse", "dense")]


def syscall_grepscan_trend(result: ExperimentResult) -> Optional[dict]:
    """Trend metric: out-of-core scan throughput (sparse matches)."""
    try:
        row = result.row_by(density="sparse")
    except KeyError:
        return None
    return {"metric": "scan_gb_per_s", "value": row["gb_per_s"],
            "unit": "GB/s", "higher_is_better": True, "tier1": True}


@experiment(
    "syscall_grepscan",
    title="Out-of-core grep/scan (pread stream + match pwrite)",
    columns=(Column("density", role="param", numeric=False),
             Column("cycles", unit="cycles", role="measured"),
             Column("gb_per_s", unit="GB/s", role="measured"),
             Column("matches", role="measured"),
             Column("truncated_warps", role="measured")),
    grid=syscall_grepscan_grid,
    trend=syscall_grepscan_trend,
    notes="Each warp preads its chunk page-by-page (never resident "
          "all at once), scans with 16 B wide loads, and pwrites its "
          "match offsets into a fixed-capacity slot of a shared "
          "output file.  `dense` overflows the slots, exercising the "
          "capacity-truncation path.  Output file verified "
          "byte-exactly against a numpy scan.",
)
def syscall_grepscan_point(*, scale: str, density: str) -> list:
    """Grep-style scan through pread with pwrite-published results."""
    from repro.workloads.grepscan import run_grepscan

    nwarps, ppw = _sizes(scale, (8, 4), (32, 16))
    threshold = 2**26 if density == "sparse" else 2**31
    r = run_grepscan(nwarps=nwarps, pages_per_warp=ppw,
                     threshold=threshold)
    if not r.verified:
        raise AssertionError(f"grepscan ({density}) wrote wrong offsets")
    return [{
        "density": density,
        "cycles": round(r.cycles),
        "gb_per_s": round(r.gb_per_s, 3),
        "matches": r.matches,
        "truncated_warps": r.truncated_warps,
    }]


def syscall_graphwalk_grid(scale: str) -> list[dict]:
    return [{"tlb": tlb} for tlb in (True, False)]


def syscall_graphwalk_fold(rows: list, scale: str) -> list:
    """TLB benefit is vs the TLB-less point."""
    base = next((r["cycles"] for r in rows if not r["tlb"]), None)
    return [dict(r, speedup=(round(base / r["cycles"], 3)
                             if base else None)) for r in rows]


def syscall_graphwalk_trend(result: ExperimentResult) -> Optional[dict]:
    """Trend metric: translation cost per edge with the TLB on."""
    try:
        row = result.row_by(tlb=True)
    except KeyError:
        return None
    return {"metric": "walk_cycles_per_edge",
            "value": row["cycles_per_edge"], "unit": "cycles",
            "higher_is_better": False, "tier1": True}


@experiment(
    "syscall_graphwalk",
    title="Pointer-chasing graph traversal (page-divergent, TLB stress)",
    columns=(Column("tlb", role="param", numeric=False),
             Column("cycles", unit="cycles", role="measured"),
             Column("cycles_per_edge", unit="cycles", role="measured"),
             Column("speedup", unit="x", role="derived"),
             Column("tlb_hits", role="measured"),
             Column("tlb_misses", role="measured")),
    grid=syscall_graphwalk_grid,
    fold=syscall_graphwalk_fold,
    trend=syscall_graphwalk_trend,
    notes="Every lane chases a private chain through a permutation "
          "next-pointer file via per-lane vector seek: each hop is a "
          "32-way page-divergent dereference, the worst case for the "
          "block TLB.  Final nodes are pwritten to a shared output "
          "file and verified against a numpy chase.",
)
def syscall_graphwalk_point(*, scale: str, tlb: bool) -> list:
    """Pointer chase with per-lane divergence, TLB on vs off."""
    from repro.workloads.graphwalk import run_graphwalk

    nwarps, steps, nnodes = _sizes(
        scale, (4, 16, 64 * 1024), (32, 32, 256 * 1024))
    r = run_graphwalk(nwarps=nwarps, steps=steps, nnodes=nnodes,
                      use_tlb=tlb)
    if not r.verified:
        raise AssertionError(
            f"graphwalk (tlb={tlb}) walked to wrong nodes")
    return [{
        "tlb": tlb,
        "cycles": round(r.cycles),
        "cycles_per_edge": round(r.cycles_per_edge, 1),
        "tlb_hits": r.tlb_hits,
        "tlb_misses": r.tlb_misses,
    }]


# ----------------------------------------------------------------------
# Registry-backed callables (the per-table/figure wrapper functions of
# the pre-registry harness were removed after their deprecation cycle;
# use REGISTRY / ALL_EXPERIMENTS with the parallel runner instead)
# ----------------------------------------------------------------------
def _run_registered(name: str, scale: str,
                    options: Optional[dict] = None) -> ExperimentResult:
    """Serial, fail-fast execution of one registry entry (what the
    ``ALL_EXPERIMENTS`` callables delegate to)."""
    from repro.harness.runner import ExperimentPointError, run_experiment
    report = run_experiment(REGISTRY[name], scale=scale,
                            options=options, progress=False)
    if report.result.errors:
        raise ExperimentPointError(name, report.result.errors)
    return report.result


def _registry_callable(name: str) -> Callable[..., ExperimentResult]:
    """A non-deprecated serial callable for ``ALL_EXPERIMENTS`` —
    carries its descriptor as ``.experiment`` so the CLI and benchmark
    helpers can route it through the parallel runner instead."""
    def run(scale: str = "quick", **options) -> ExperimentResult:
        return _run_registered(name, scale, options or None)
    run.__name__ = name
    run.__qualname__ = name
    run.__doc__ = REGISTRY[name].title
    run.experiment = REGISTRY[name]
    return run


#: CLI listing order (kept from the pre-registry harness).
_EXPERIMENT_ORDER = (
    "table1", "table2", "table3", "figure6a", "figure6b", "figure6c",
    "figure7", "figure9", "unaligned", "ablation_prefetch",
    "ablation_batching", "ablation_registers", "ablation_eviction",
    "ablation_readahead", "ablation_future_hw",
    "ablation_io_preemption",
    "syscall_kvstore", "syscall_grepscan", "syscall_graphwalk",
)

#: Name -> callable view of the registry (kept for compatibility with
#: pre-registry callers; the CLI uses the ``.experiment`` descriptors).
ALL_EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    name: _registry_callable(name) for name in _EXPERIMENT_ORDER
}
