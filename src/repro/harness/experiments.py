"""One function per table/figure of the paper's evaluation (§VI).

Every function returns an :class:`ExperimentResult`; ``scale`` selects
``"quick"`` (CI-sized, minutes total) or ``"full"`` (closer to the
paper's sweep sizes).  Paper values are embedded alongside measured ones
so reports always show the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.collage import (
    CollageDataset,
    DatasetParams,
    make_problem,
    reference_solution,
    run_cpu,
    run_cpu_gpu,
    run_gpufs,
    run_gpufs_apointers,
)
from repro.core import APConfig, AVM, ImplVariant, PtrFormat
from repro.gpu import Device
from repro.workloads import WORKLOADS, run_memcpy, run_workload
from repro.workloads.filebench import (
    run_pagefault_bench,
    run_tlb_sweep_point,
    run_workload_file,
)

PAGE = 4096


@dataclass
class ExperimentResult:
    """Rows reproducing one table or figure."""

    exp_id: str
    title: str
    columns: list
    rows: list = field(default_factory=list)
    notes: str = ""

    def row_by(self, **match) -> dict:
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row
        raise KeyError(f"no row matching {match}")


def _sizes(scale: str, quick, full):
    if scale == "quick":
        return quick
    if scale == "full":
        return full
    raise ValueError(f"unknown scale {scale!r}")


# ----------------------------------------------------------------------
# Table I — apointer operation latency in GPU cycles
# ----------------------------------------------------------------------
TABLE1_PAPER = {
    ("Raw access", "read"): 225, ("Raw access", "inc"): 32,
    ("Raw access", "read+inc"): 257, ("Raw access", "read+inc+rw"): 257,
    ("Compiler", "read"): 367, ("Compiler", "inc"): 152,
    ("Compiler", "read+inc"): 519, ("Compiler", "read+inc+rw"): 585,
    ("Optimized PTX", "read"): 282,
    ("Optimized PTX", "read+inc"): 434,
    ("Optimized PTX", "read+inc+rw"): 544,
    ("Prefetching", "read"): 271,
    ("Prefetching", "read+inc"): 423,
    ("Prefetching", "read+inc+rw"): 435,
}

_TABLE1_ROWS = [
    ("Raw access", None),
    ("Compiler", ImplVariant.COMPILER),
    ("Optimized PTX", ImplVariant.OPTIMIZED_PTX),
    ("Prefetching", ImplVariant.PREFETCH),
]


def _measure_latency(variant: Optional[ImplVariant], op: str,
                     perm: bool) -> float:
    """Single-warp latency of one apointer (or raw) operation."""
    device = Device(memory_bytes=16 * 1024 * 1024)
    base = device.alloc(PAGE * 2)
    times: list[float] = []

    def kern(ctx):
        if variant is None:
            addr = base + ctx.lane * 4
            _ = yield from ctx.load(addr, "f4")        # warm-up
            t0 = yield from ctx.clock()
            if "read" in op:
                ctx.charge(2, chain=2)
                _ = yield from ctx.load(addr, "f4")
            if "inc" in op:
                ctx.charge(2, chain=2)
            t1 = yield from ctx.clock()
        else:
            avm = AVM(APConfig(variant=variant, perm_checks=perm))
            ptr = avm.gvmmap_device(ctx, base, PAGE * 2)
            yield from ptr.seek(ctx, ctx.lane * 4)
            _ = yield from ptr.read(ctx, "f4")         # warm-up: link
            t0 = yield from ctx.clock()
            if "read" in op:
                _ = yield from ptr.read(ctx, "f4")
            if "inc" in op:
                yield from ptr.add(ctx, 4)
            t1 = yield from ctx.clock()
            yield from ptr.destroy(ctx)
        times.append(t1 - t0)

    device.launch(kern, grid=1, block_threads=32)
    return times[0]


def table1(scale: str = "quick") -> ExperimentResult:
    """Table I: read / inc latencies for each implementation level."""
    result = ExperimentResult(
        exp_id="table1",
        title="Apointer operation latency (GPU cycles, 1 warp)",
        columns=["implementation", "op", "measured", "paper"],
        notes="rw = page permission checks enabled; '-' ops not "
              "reported by the paper are skipped.",
    )
    for name, variant in _TABLE1_ROWS:
        for op in ("read", "inc", "read+inc", "read+inc+rw"):
            if (name, op) not in TABLE1_PAPER:
                continue
            perm = op.endswith("rw") and variant is not None
            measured = _measure_latency(variant, op, perm)
            result.rows.append({
                "implementation": name,
                "op": op,
                "measured": round(measured, 1),
                "paper": TABLE1_PAPER[(name, op)],
            })
    return result


# ----------------------------------------------------------------------
# Table II — memcpy bandwidth
# ----------------------------------------------------------------------
TABLE2_PAPER = {"4-byte": 99.7, "4-byte+rw": 97.7, "8-byte": 148.7}
TABLE2_PAPER_PEAK = 152.0


def table2(scale: str = "quick") -> ExperimentResult:
    """Table II: apointer memcpy bandwidth vs cudaMemcpy D2D."""
    nblocks, iters = _sizes(scale, (13, 16), (52, 32))
    result = ExperimentResult(
        exp_id="table2",
        title="Memory-copy bandwidth (GB/s, % of achievable peak)",
        columns=["access", "measured_gbs", "measured_pct",
                 "paper_gbs", "paper_pct"],
        notes="Peak = 152 GB/s (cudaMemcpyDeviceToDevice convention: "
              "read+write traffic).",
    )
    cases = [("4-byte", 4, False), ("4-byte+rw", 4, True),
             ("8-byte", 8, False)]
    for label, width, perm in cases:
        device = Device(memory_bytes=512 * 1024 * 1024)
        r = run_memcpy(device, use_apointers=True, width=width,
                       nblocks=nblocks, iters_per_thread=iters,
                       perm_checks=perm)
        if not r.verified:
            raise AssertionError(f"memcpy {label} copied wrong data")
        result.rows.append({
            "access": label,
            "measured_gbs": round(r.bandwidth / 1e9, 1),
            "measured_pct": round(100 * r.fraction_of_peak, 1),
            "paper_gbs": TABLE2_PAPER[label],
            "paper_pct": round(100 * TABLE2_PAPER[label]
                               / TABLE2_PAPER_PEAK, 1),
        })
    return result


# ----------------------------------------------------------------------
# Figure 6 — apointer overhead vs occupancy
# ----------------------------------------------------------------------
def figure6(scale: str = "quick", width: int = 4,
            with_gpufs: bool = False) -> ExperimentResult:
    """Figure 6a (width=4), 6b (width=16), 6c (with_gpufs=True).

    Rows are (workload, nblocks) -> percent overhead of the apointer
    version over the identical raw-pointer version.
    """
    block_counts, iters = _sizes(scale,
                                 ([1, 4, 13, 26, 52], 4),
                                 ([1, 2, 4, 8, 13, 26, 39, 52], 8))
    if with_gpufs and scale == "quick":
        block_counts = [1, 13, 52]   # the page-cache runs are heavy
    fig_id = "figure6c" if with_gpufs else (
        "figure6a" if width == 4 else "figure6b")
    result = ExperimentResult(
        exp_id=fig_id,
        title=(f"Apointer overhead vs #threadblocks "
               f"({width}-byte reads{', GPUfs page cache' if with_gpufs else ''})"),
        columns=["workload"] + [f"tb={n}" for n in block_counts],
        notes="Values are percent slowdown over the raw-pointer "
              "baseline; paper aggregate: Fig 6b avg 20% (7% excl. "
              "FFT), Fig 6c avg 16% excl. FFT at full occupancy.",
    )
    for workload in WORKLOADS:
        row = {"workload": workload.name}
        for nb in block_counts:
            if with_gpufs:
                r0 = run_workload_file(workload, use_apointers=False,
                                       nblocks=nb, warps_per_block=8,
                                       iters_per_thread=32)
                r1 = run_workload_file(workload, use_apointers=True,
                                       nblocks=nb, warps_per_block=8,
                                       iters_per_thread=32)
            else:
                device = Device(memory_bytes=768 * 1024 * 1024)
                r0 = run_workload(workload, device, use_apointers=False,
                                  nblocks=nb, iters_per_thread=iters,
                                  width=width)
                r1 = run_workload(workload, device, use_apointers=True,
                                  nblocks=nb, iters_per_thread=iters,
                                  width=width)
            if not (r0.verified and r1.verified):
                raise AssertionError(
                    f"{workload.name} produced wrong results")
            row[f"tb={nb}"] = round(100 * r1.overhead_over(r0), 1)
        result.rows.append(row)
    return result


# ----------------------------------------------------------------------
# Table III — page-fault overheads
# ----------------------------------------------------------------------
TABLE3_PAPER = {"Apointer Short": 20, "Apointer Long": 24, "no TLB": 13}

_TABLE3_CONFIGS = [
    ("Apointer Short", APConfig(fmt=PtrFormat.SHORT, use_tlb=True)),
    ("Apointer Long", APConfig(fmt=PtrFormat.LONG, use_tlb=True)),
    ("no TLB", APConfig(fmt=PtrFormat.LONG, use_tlb=False)),
]


def table3(scale: str = "quick") -> ExperimentResult:
    """Table III: minor/major fault overhead per apointer flavour."""
    nblocks, warps, pages = _sizes(scale, (13, 32, 16), (13, 32, 64))
    result = ExperimentResult(
        exp_id="table3",
        title="Page-fault overhead over the gmmap() baseline",
        columns=["implementation", "minor_pct", "major_pct",
                 "paper_minor_pct", "paper_major"],
        notes="Major-fault overheads are masked by host transfers "
              "(paper: 'no observable overhead', std dev up to 10%).",
    )
    base = run_pagefault_bench(use_apointers=False, nblocks=nblocks,
                               warps_per_block=warps,
                               pages_per_warp=pages)
    for name, cfg in _TABLE3_CONFIGS:
        r = run_pagefault_bench(use_apointers=True, nblocks=nblocks,
                                warps_per_block=warps,
                                pages_per_warp=pages, config=cfg)
        result.rows.append({
            "implementation": name,
            "minor_pct": round(
                100 * (r.warm_cycles / base.warm_cycles - 1), 1),
            "major_pct": round(
                100 * (r.cold_cycles / base.cold_cycles - 1), 1),
            "paper_minor_pct": TABLE3_PAPER[name],
            "paper_major": "none observable",
        })
    return result


# ----------------------------------------------------------------------
# Figure 7 — TLB size vs page reuse
# ----------------------------------------------------------------------
def figure7(scale: str = "quick") -> ExperimentResult:
    """Figure 7: read cycles/page vs unique pages per threadblock."""
    uniques, reads = _sizes(scale,
                            ([8, 16, 32, 64, 128], 32),
                            ([4, 8, 16, 32, 64, 128, 256, 512], 64))
    result = ExperimentResult(
        exp_id="figure7",
        title="Access time per page vs unique pages per threadblock",
        columns=["tlb"] + [f"pages={u}" for u in uniques],
        notes="Paper shape: the TLB wins at high reuse; the TLB-less "
              "design wins once the working set exceeds the TLB, "
              "because it avoids TLB update costs.",
    )
    for tlb in (16, 32, 64, None):
        row = {"tlb": "none" if tlb is None else tlb}
        for u in uniques:
            row[f"pages={u}"] = round(run_tlb_sweep_point(
                unique_pages=u, tlb_entries=tlb, reads_per_warp=reads))
        result.rows.append(row)
    return result


# ----------------------------------------------------------------------
# Figure 9 — image collage end-to-end
# ----------------------------------------------------------------------
def _collage_problems(scale: str):
    images, clusters = _sizes(scale, (2048, 32), (8192, 64))
    dataset = CollageDataset(DatasetParams(num_images=images,
                                           num_clusters=clusters))
    specs = _sizes(
        scale,
        [("small", 8, 8, 12), ("medium", 12, 12, 6),
         ("large", 16, 16, 4)],
        [("small", 8, 8, 16), ("medium", 16, 16, 8),
         ("large", 24, 24, 5), ("huge", 32, 32, 3)],
    )
    problems = []
    for name, bx, by, spread in specs:
        problems.append(make_problem(dataset, name=name, blocks_x=bx,
                                     blocks_y=by, cluster_spread=spread))
    return problems


def figure9(scale: str = "quick") -> ExperimentResult:
    """Figure 9: collage runtime per block, normalised to the CPU run."""
    result = ExperimentResult(
        exp_id="figure9",
        title="Image collage: runtime per block normalised to CPU "
              "(lower is better)",
        columns=["input", "reuse", "CPU", "CPU+GPU", "GPUfs",
                 "GPUfs+AP", "ap_overhead_pct"],
        notes="Paper aggregates: GPUfs 1.6x over CPU and 2.6x over "
              "CPU+GPU on average (up to 2.6x / 3.9x); apointers add "
              "<1% over GPUfs.",
    )
    for problem in _collage_problems(scale):
        reference = reference_solution(problem)
        outcomes = {}
        for fn in (run_cpu, run_cpu_gpu, run_gpufs,
                   run_gpufs_apointers):
            out = fn(problem)
            if not out.matches(reference):
                raise AssertionError(
                    f"{out.name} produced a wrong collage for "
                    f"{problem.name}")
            outcomes[out.name] = out
        cpu_time = outcomes["CPU"].seconds
        row = {
            "input": problem.name,
            "reuse": round(problem.data_reuse(), 1),
        }
        for name in ("CPU", "CPU+GPU", "GPUfs", "GPUfs+AP"):
            row[name] = round(outcomes[name].seconds / cpu_time, 3)
        row["ap_overhead_pct"] = round(
            100 * (outcomes["GPUfs+AP"].seconds
                   / outcomes["GPUfs"].seconds - 1), 2)
        result.rows.append(row)
    return result


# ----------------------------------------------------------------------
# §VI-E — unaligned access
# ----------------------------------------------------------------------
def unaligned_access(scale: str = "quick") -> ExperimentResult:
    """§VI-E: 3 KB records without page alignment, via apointers.

    The apointer kernel is *unmodified*; only the dataset layout
    changes.  (The gmmap baseline needs explicit multi-page mapping
    code — see ``repro.collage.runners``.)
    """
    images, clusters = _sizes(scale, (1024, 16), (4096, 48))
    result = ExperimentResult(
        exp_id="unaligned",
        title="Unaligned (3 KB) records through apointers",
        columns=["layout", "record_bytes", "seconds", "correct"],
        notes="Same kernel code for both layouts — the usability point "
              "of memory-mapped files.",
    )
    for aligned in (True, False):
        dataset = CollageDataset(DatasetParams(
            num_images=images, num_clusters=clusters, aligned=aligned))
        problem = make_problem(dataset, blocks_x=6, blocks_y=6,
                               cluster_spread=4)
        reference = reference_solution(problem)
        out = run_gpufs_apointers(problem)
        result.rows.append({
            "layout": "aligned (4 KB)" if aligned else "unaligned (3 KB)",
            "record_bytes": dataset.params.record_bytes,
            "seconds": round(out.seconds, 6),
            "correct": out.matches(reference),
        })
    return result


# ----------------------------------------------------------------------
# Ablations called out in the design sections
# ----------------------------------------------------------------------
def ablation_prefetch(scale: str = "quick") -> ExperimentResult:
    """§IV-B: speculative prefetch on/off, read latency and bandwidth."""
    result = ExperimentResult(
        exp_id="ablation_prefetch",
        title="Speculative prefetch ablation",
        columns=["variant", "read_latency_cycles", "memcpy_pct_peak"],
    )
    nblocks, iters = _sizes(scale, (13, 16), (26, 32))
    for variant in (ImplVariant.OPTIMIZED_PTX, ImplVariant.PREFETCH):
        lat = _measure_latency(variant, "read", perm=False)
        device = Device(memory_bytes=512 * 1024 * 1024)
        bw = run_memcpy(device, use_apointers=True, width=4,
                        nblocks=nblocks, iters_per_thread=iters,
                        config=APConfig(variant=variant))
        result.rows.append({
            "variant": variant.value,
            "read_latency_cycles": round(lat, 1),
            "memcpy_pct_peak": round(100 * bw.fraction_of_peak, 1),
        })
    return result


def ablation_batching(scale: str = "quick") -> ExperimentResult:
    """§V: host-side transfer batching for 4 KB pages, on/off."""
    from repro.workloads.filebench import make_file_env

    npages = _sizes(scale, 256, 1024)
    result = ExperimentResult(
        exp_id="ablation_batching",
        title="PCIe transfer batching for 4 KB pages",
        columns=["batching", "cycles", "batches", "mean_batch"],
        notes="Major-fault-dominated run; batching amortises the fixed "
              "PCIe transaction cost (§V).",
    )
    for batching in (True, False):
        device, gpufs, fid, _ = make_file_env(
            npages * PAGE, num_frames=npages + 8,
            memory_bytes=npages * PAGE + 128 * 1024 * 1024,
            batching=batching)
        nwarps = 64

        def kern(ctx):
            for p in range(ctx.warp_id, npages, nwarps):
                yield from gpufs.gmmap(ctx, fid, p * PAGE)
                yield from gpufs.gmunmap(ctx, fid, p * PAGE)

        res = device.launch(kern, grid=2, block_threads=1024)
        result.rows.append({
            "batching": batching,
            "cycles": round(res.cycles),
            "batches": gpufs.batcher.stats.batches,
            "mean_batch": round(gpufs.batcher.stats.mean_batch_size(), 1),
        })
    return result


def ablation_registers(scale: str = "quick") -> ExperimentResult:
    """§VII register pressure: the paper caps kernels at 64 registers/
    thread because higher counts reduce occupancy and hurt latency
    hiding (the GK210 register file fits 2048 threads x 64 regs)."""
    nblocks = _sizes(scale, 26, 52)
    result = ExperimentResult(
        exp_id="ablation_registers",
        title="Register pressure vs occupancy (Read workload, apointers)",
        columns=["regs_per_thread", "blocks_per_sm", "cycles",
                 "slowdown_vs_64"],
        notes="More registers per thread halve residency and expose "
              "the translation latency the extra registers were meant "
              "to help with - the paper's motivation for the 64-register "
              "cap.",
    )
    from repro.gpu.occupancy import occupancy_limits
    from repro.gpu.specs import K80_SPEC
    from repro.workloads import workload_by_name

    workload = workload_by_name("Read")
    base_cycles = None
    for regs in (64, 128):
        device = Device(memory_bytes=512 * 1024 * 1024)
        run = run_workload(workload, device, use_apointers=True,
                           nblocks=nblocks, iters_per_thread=4,
                           regs_per_thread=regs)
        if not run.verified:
            raise AssertionError("register ablation produced bad data")
        occ = occupancy_limits(K80_SPEC, 1024, regs_per_thread=regs)
        if base_cycles is None:
            base_cycles = run.cycles
        result.rows.append({
            "regs_per_thread": regs,
            "blocks_per_sm": occ.blocks_per_sm,
            "cycles": round(run.cycles),
            "slowdown_vs_64": round(run.cycles / base_cycles, 3),
        })
    return result


def ablation_future_hw(scale: str = "quick") -> ExperimentResult:
    """§VII what-if: hardware-assisted apointer operations.

    The paper argues that "hardware extensions for these operations ...
    and special instructions which fuse shuffle and integer arithmetics
    could help reduce or eliminate these overheads".  This experiment
    swaps in the HW_ASSISTED cost model and re-runs the headline
    fault-free benchmarks.
    """
    nblocks, iters = _sizes(scale, (13, 16), (26, 32))
    result = ExperimentResult(
        exp_id="ablation_future_hw",
        title="Projected impact of the paper's §VII hardware extensions",
        columns=["variant", "read_latency_cycles", "inc_latency_cycles",
                 "memcpy_4B_pct_peak"],
        notes="HW_ASSISTED models dedicated boundary-check/increment "
              "instructions and fused shuffle+integer ops.",
    )
    for variant in (ImplVariant.PREFETCH, ImplVariant.HW_ASSISTED):
        read = _measure_latency(variant, "read", perm=False)
        inc = _measure_latency(variant, "inc", perm=False)
        device = Device(memory_bytes=512 * 1024 * 1024)
        bw = run_memcpy(device, use_apointers=True, width=4,
                        nblocks=nblocks, iters_per_thread=iters,
                        config=APConfig(variant=variant))
        if not bw.verified:
            raise AssertionError("hw-assist memcpy copied wrong data")
        result.rows.append({
            "variant": variant.value,
            "read_latency_cycles": round(read, 1),
            "inc_latency_cycles": round(inc, 1),
            "memcpy_4B_pct_peak": round(100 * bw.fraction_of_peak, 1),
        })
    return result


def ablation_eviction(scale: str = "quick",
                      eviction_policy: Optional[str] = None
                      ) -> ExperimentResult:
    """Eviction-policy ablation under cache thrash.

    The paper leaves the replacement policy unspecified; this sweep
    runs the §VI-C page-walk workload with a cache holding half the
    working set and compares clock/FIFO/LRU/random.  The policy is
    plumbed through :class:`~repro.paging.gpufs.GPUfsConfig`
    (``eviction_policy``) rather than swapped in after construction;
    passing ``eviction_policy`` (the CLI's ``--eviction-policy``)
    restricts the sweep to that one policy.
    """
    from repro.workloads.filebench import make_file_env

    npages, rounds = _sizes(scale, (128, 3), (512, 4))
    result = ExperimentResult(
        exp_id="ablation_eviction",
        title="Eviction policy under thrash (cache = working set / 2)",
        columns=["policy", "cycles", "major_faults", "evictions"],
        notes="Sequential-with-reuse sweep; the differences are small "
              "because the access pattern cycles through the file.",
    )
    policies = ((eviction_policy,) if eviction_policy
                else ("clock", "fifo", "lru", "random"))
    for policy in policies:
        device, gpufs, fid, _ = make_file_env(
            npages * PAGE, num_frames=npages // 2,
            memory_bytes=npages * PAGE + 128 * 1024 * 1024,
            eviction_policy=policy)
        nwarps = 32

        def kern(ctx):
            for r in range(rounds):
                for p in range(ctx.warp_id, npages, nwarps):
                    yield from gpufs.gmmap(ctx, fid, p * PAGE)
                    yield from gpufs.gmunmap(ctx, fid, p * PAGE)

        res = device.launch(kern, grid=1, block_threads=1024)
        result.rows.append({
            "policy": policy,
            "cycles": round(res.cycles),
            "major_faults": gpufs.stats.major_faults,
            "evictions": gpufs.cache.evictions,
        })
    return result


def ablation_readahead(scale: str = "quick",
                       eviction_policy: Optional[str] = None
                       ) -> ExperimentResult:
    """Asynchronous page readahead, off vs on (reproduction extension).

    §V's batching amortises the PCIe transaction cost of *demand*
    faults; ``repro.readahead`` goes further and has the host daemon
    push pages speculatively once a warp's faults look sequential.
    Cold-cache streaming reads are the best case: the first faults of
    each warp train the stream detector, and the rest of the file
    arrives before the warps ask for it.
    """
    from repro.workloads.filebench import run_sequential_file_read

    # (npages, warps): file-memcpy uses fewer warps so each stream is
    # long enough for the detector to train before the warp finishes.
    (seq_pages, seq_warps), (mc_pages, mc_warps) = _sizes(
        scale, ((192, 32), (128, 16)), ((768, 32), (384, 16)))
    policy = eviction_policy or "clock"
    result = ExperimentResult(
        exp_id="ablation_readahead",
        title="Asynchronous page readahead (cold cache, sequential)",
        columns=["workload", "readahead", "cycles", "speedup",
                 "major_faults", "ra_issued", "ra_hits", "ra_wasted",
                 "ra_cancelled"],
        notes="Extension beyond §V: a host-side readahead daemon "
              "issues speculative page-ins through the same transfer "
              "batcher, so speculative and demand transfers coalesce. "
              "`speedup` is vs the batching-only baseline of the same "
              "workload; output is verified against file contents.",
    )
    for workload, pages, nwarps, copy in (
            ("seq-read", seq_pages, seq_warps, False),
            ("file-memcpy", mc_pages, mc_warps, True)):
        base = None
        for ra in (False, True):
            r = run_sequential_file_read(npages=pages, warps=nwarps,
                                         copy_pages=copy, readahead=ra,
                                         eviction_policy=policy)
            if not r.verified:
                raise AssertionError(
                    f"{workload} (readahead={ra}) read wrong data")
            if base is None:
                base = r.cycles
            result.rows.append({
                "workload": workload,
                "readahead": ra,
                "cycles": round(r.cycles),
                "speedup": round(base / r.cycles, 3),
                "major_faults": r.major_faults,
                "ra_issued": r.ra_issued,
                "ra_hits": r.ra_hits,
                "ra_wasted": r.ra_wasted,
                "ra_cancelled": r.ra_cancelled,
            })
    return result


def ablation_io_preemption(scale: str = "quick") -> ExperimentResult:
    """§VII what-if: I/O-driven threadblock preemption (GPUpIO [24]).

    "A major page fault incurs a long-latency access to the backing
    store ... the stalled warp wastes the SM resources while waiting
    for data, calling for the addition of a hardware-assisted
    threadblock preemption mechanism."  Here a wave of I/O-bound blocks
    (major faults) occupies every SM while compute-bound blocks wait in
    the grid queue; preemption lets the compute run during the stalls.
    """
    from repro.gpu.specs import K80_SPEC
    from repro.workloads.filebench import make_file_env

    # One synthetic compute burst for the compute-bound blocks: enough
    # dependent arithmetic to keep an SM busy through an I/O stall
    # window without touching memory.
    burst_instrs, burst_chain = 150, 20
    compute_ops = _sizes(scale, 40, 64)
    result = ExperimentResult(
        exp_id="ablation_io_preemption",
        title="I/O-driven threadblock preemption (§VII what-if)",
        columns=["io_path", "io_preemption", "cycles", "preemptions",
                 "speedup_vs_no_preempt"],
        notes="Disk-class storage (~150 us/access).  With host-mediated "
              "faults the host RPC service rate is the bottleneck "
              "(the paper's Figure 1 problem) and preemption cannot "
              "help; with peer-to-peer DMA (GPUDirect, §I) the stall "
              "is pure latency and preemption recovers the SMs — the "
              "combination the paper's GPU-centric design plus "
              "GPUpIO [24] argues for.",
    )
    for p2p in (False, True):
        base_cycles = None
        for preempt in (False, True):
            io_blocks = 26           # fills all 13 SMs (2 blocks/SM)
            compute_blocks = 26
            io_warps = io_blocks * 32
            npages = io_warps * 2    # two disk-class faults per warp
            device, gpufs, fid, _ = make_file_env(
                npages * PAGE, num_frames=npages + 8,
                memory_bytes=256 * 1024 * 1024 + npages * PAGE)
            device.spec = K80_SPEC.with_overrides(
                io_preemption=preempt, pcie_latency_s=150e-6,
                host_rpc_s=0.0 if p2p else K80_SPEC.host_rpc_s)
            gpufs.batcher.enabled = False

            def kern(ctx):
                if ctx.block_id < io_blocks:
                    # I/O-bound: two dependent disk-class faults.
                    for i in range(2):
                        p = ctx.warp_id + i * io_warps
                        yield from gpufs.gmmap(ctx, fid, p * PAGE)
                        yield from gpufs.gmunmap(ctx, fid, p * PAGE)
                else:
                    # Compute-bound: no memory traffic at all.
                    for _ in range(compute_ops):
                        yield from ctx.compute(burst_instrs,
                                               chain=burst_chain)

            res = device.launch(kern, grid=io_blocks + compute_blocks,
                                block_threads=1024)
            if base_cycles is None:
                base_cycles = res.cycles
            result.rows.append({
                "io_path": "p2p-dma" if p2p else "host-mediated",
                "io_preemption": preempt,
                "cycles": round(res.cycles),
                "preemptions": res.stats.preemptions,
                "speedup_vs_no_preempt": round(
                    base_cycles / res.cycles, 3),
            })
    return result


#: Registry used by the CLI and EXPERIMENTS.md generator.
ALL_EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "figure6a": lambda scale="quick": figure6(scale, width=4),
    "figure6b": lambda scale="quick": figure6(scale, width=16),
    "figure6c": lambda scale="quick": figure6(scale, with_gpufs=True),
    "figure7": figure7,
    "figure9": figure9,
    "unaligned": unaligned_access,
    "ablation_prefetch": ablation_prefetch,
    "ablation_batching": ablation_batching,
    "ablation_registers": ablation_registers,
    "ablation_eviction": ablation_eviction,
    "ablation_readahead": ablation_readahead,
    "ablation_future_hw": ablation_future_hw,
    "ablation_io_preemption": ablation_io_preemption,
}
