"""Structured heartbeats: worker progress without stderr clobbering.

The old runner progress display had every caller writing ``\\r`` lines
straight to stderr — two experiments (or a worker warning) interleaved
and clobbered each other.  This module replaces it with one-way message
flow: *anyone* with progress to report emits a heartbeat dict through a
:class:`HeartbeatSender` (rate-limited, spawn-safe — heartbeats are
plain JSON-able dicts, so they travel over a ``multiprocessing`` queue
untouched), and exactly one :class:`HeartbeatRenderer` in the parent
process owns the terminal line.

Heartbeat kinds:

* ``start`` — a run began: experiment name, total points, job count;
* ``window`` — a sampled cycle window closed inside a launch: point
  index, window index, per-SM busy fractions, key gauges (what
  ``repro-top`` renders as live bars);
* ``point_done`` — one grid point finished (ok or error);
* ``run_done`` — the experiment finished.

The renderer also appends every heartbeat to ``<live_dir>/
heartbeats.jsonl`` when a live directory is given — the stream
``repro-top`` tails — and periodically rewrites a Prometheus
text-exposition snapshot next to it.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Callable, Optional

#: Minimum wall-clock seconds between ``window`` heartbeats from one
#: sender — a launch can close thousands of windows per second, and the
#: point of a heartbeat is liveness, not completeness (the series files
#: carry every window).
DEFAULT_MIN_INTERVAL = 0.2

#: Rewrite the Prometheus snapshot at most this often (seconds).
PROM_SNAPSHOT_INTERVAL = 1.0

HEARTBEATS_NAME = "heartbeats.jsonl"
PROM_NAME = "metrics.prom"


def make_heartbeat(kind: str, experiment: str, **fields) -> dict:
    """One heartbeat record: plain dict, JSON- and pickle-safe."""
    out = {"kind": kind, "experiment": experiment,
           "pid": os.getpid(), "wall": time.time()}
    out.update(fields)
    return out


class HeartbeatSender:
    """Rate-limited emitter: ``window`` beats are throttled to one per
    ``min_interval`` seconds; lifecycle beats (``start``,
    ``point_done``, ``run_done``) always pass.  ``emit`` is any callable
    taking the heartbeat dict — a queue's ``put``, a renderer's
    ``handle``, a list's ``append``."""

    def __init__(self, emit: Callable[[dict], None],
                 min_interval: float = DEFAULT_MIN_INTERVAL):
        self.emit = emit
        self.min_interval = min_interval
        self._last_window: Optional[float] = None
        self.sent = 0
        self.throttled = 0

    def send(self, beat: dict) -> None:
        if beat.get("kind") == "window":
            now = time.monotonic()
            if self._last_window is not None \
                    and now - self._last_window < self.min_interval:
                self.throttled += 1
                return
            self._last_window = now
        self.sent += 1
        try:
            self.emit(beat)
        except Exception:
            # A full/broken channel must never kill the simulation.
            pass

    def window_beat(self, experiment: str, point: int,
                    record: dict) -> None:
        """Reduce one sampled window record to a compact heartbeat."""
        width = max(record.get("t1", 0.0) - record.get("t0", 0.0), 1.0)
        busy = [min(b / width, 1.0)
                for b in record.get("sm_busy", [])]
        self.send(make_heartbeat(
            "window", experiment, point=point,
            window=record.get("window", 0),
            t1=record.get("t1", 0.0),
            sm_busy_frac=busy,
            dram_bytes=record.get("dram_bytes", 0),
            pcie_bytes=record.get("pcie_bytes", 0),
            counters=dict(record.get("counters", {})),
            gauges=dict(record.get("gauges", {})),
        ))


class HeartbeatRenderer:
    """The single writer of the progress line (and of the live files).

    ``show=False`` still processes heartbeats — files are written, the
    line is not (the ``--no-progress``-safe fallback).  ``stream``
    defaults to stderr; tests pass a ``StringIO``.
    """

    def __init__(self, show: bool = True, stream=None,
                 live_dir: Optional[str] = None):
        self.show = show
        self.stream = stream if stream is not None else sys.stderr
        self.live_dir = live_dir
        self.total = 0
        self.done = 0
        self.errors = 0
        self.jobs = 1
        self.experiment = ""
        self.started = time.monotonic()
        self.last_window: Optional[dict] = None
        self._hb_fh = None
        self._line_open = False
        self._prom_at = 0.0
        self._totals: dict[str, float] = {}
        if live_dir:
            os.makedirs(live_dir, exist_ok=True)
            self._hb_fh = open(os.path.join(live_dir, HEARTBEATS_NAME),
                               "a")

    # ------------------------------------------------------------------
    def handle(self, beat: dict) -> None:
        """Consume one heartbeat: update state, files, and the line."""
        kind = beat.get("kind")
        if kind == "start":
            self.experiment = beat.get("experiment", "")
            self.total = int(beat.get("points", 0))
            self.jobs = int(beat.get("jobs", 1))
            self.done = 0
            self.errors = 0
            self.started = time.monotonic()
        elif kind == "window":
            self.last_window = beat
            self._accumulate(beat)
        elif kind == "point_done":
            self.done += 1
            if not beat.get("ok", True):
                self.errors += 1
        if self._hb_fh is not None:
            self._hb_fh.write(json.dumps(beat) + "\n")
            self._hb_fh.flush()
            self._maybe_prom()
        self._render()
        if kind == "run_done":
            self.close()

    def _accumulate(self, beat: dict) -> None:
        t = self._totals
        t["dram_bytes"] = (t.get("dram_bytes", 0)
                           + beat.get("dram_bytes", 0))
        t["pcie_bytes"] = (t.get("pcie_bytes", 0)
                           + beat.get("pcie_bytes", 0))
        for name, value in beat.get("counters", {}).items():
            key = f"counter.{name}"
            t[key] = t.get(key, 0) + value
        for name, value in beat.get("gauges", {}).items():
            t[f"gauge.{name}"] = value

    def _maybe_prom(self) -> None:
        if self.live_dir is None:
            return
        now = time.monotonic()
        if now - self._prom_at < PROM_SNAPSHOT_INTERVAL:
            return
        self._prom_at = now
        from repro.telemetry.timeseries import write_prometheus
        metrics = dict(self._totals)
        metrics["points_done"] = self.done
        metrics["points_total"] = self.total
        metrics["point_errors"] = self.errors
        write_prometheus(os.path.join(self.live_dir, PROM_NAME),
                         metrics)

    # ------------------------------------------------------------------
    def _render(self) -> None:
        if not self.show:
            return
        parts = [f"[{self.experiment}] {self.done}/{self.total} points "
                 f"({self.jobs} worker{'s' if self.jobs != 1 else ''})"]
        if self.errors:
            parts.append(f"{self.errors} failed")
        win = self.last_window
        if win is not None:
            busy = win.get("sm_busy_frac") or []
            if busy:
                parts.append(
                    f"busy {sum(busy) / len(busy):.0%}")
            hit = cache_hit_rate(self._totals)
            if hit is not None:
                parts.append(f"cache {hit:.0%}")
        eta = self.eta()
        if eta is not None:
            parts.append(f"eta {eta:.0f}s")
        self.stream.write("\r" + " | ".join(parts))
        self.stream.flush()
        self._line_open = True

    def eta(self) -> Optional[float]:
        if not self.done or not self.total or self.done >= self.total:
            return None
        elapsed = time.monotonic() - self.started
        return elapsed / self.done * (self.total - self.done)

    def close(self) -> None:
        if self._line_open and self.show:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False
        if self._hb_fh is not None:
            # Final snapshot regardless of the rewrite interval.
            self._prom_at = 0.0
            self._maybe_prom()
            self._hb_fh.close()
            self._hb_fh = None


def cache_hit_rate(totals: dict) -> Optional[float]:
    """Page-cache hit rate from accumulated counter totals: minor
    faults are hits (page already resident), major faults are misses."""
    minor = totals.get("counter.paging.minor_faults", 0)
    major = totals.get("counter.paging.major_faults", 0)
    faults = minor + major
    if not faults:
        return None
    return minor / faults
