"""Declarative experiment registry — the harness API substrate.

An :class:`Experiment` describes one table/figure of the paper as
*data* instead of an ad-hoc function:

* a **parameter grid** — ``grid(scale, **options)`` returns a list of
  picklable parameter dicts, one per independent simulation point;
* a module-level **point function** — ``point(scale=..., **params)``
  measures one grid point and returns its result rows;
* an optional **fold** — ``fold(rows, scale)`` runs in the parent once
  every point is in and derives cross-point columns (baselines,
  speedups, wide pivots).

Because points are plain functions of plain parameters, the parallel
runner (:mod:`repro.harness.runner`) can ship them to spawn workers;
because the fold is explicit, everything that couples points (shared
baselines, row pivots) is parent-side and the points themselves stay
embarrassingly parallel.

Experiments register with the :func:`experiment` decorator::

    @experiment("table1", title=..., columns=(...), grid=table1_grid)
    def table1_point(*, scale, implementation, op):
        ...
        return [{"implementation": implementation, "op": op, ...}]

and are looked up through :data:`REGISTRY` (insertion-ordered, so
``repro-experiments --list`` matches definition order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

#: Column roles recognised by :class:`Column`.
ROLES = ("param", "measured", "paper", "derived")


class Column(str):
    """A result column: a plain ``str`` carrying schema metadata.

    Being a ``str`` subclass, a :class:`Column` *is* the row key —
    every existing consumer (``row[col]``, ``result.columns[1:]``)
    keeps working — while reporting can read the unified schema off
    it: the measurement ``unit`` (``"cycles"``, ``"GB/s"``, ``"%"``,
    ...), the ``role`` (``param`` / ``measured`` / ``paper`` /
    ``derived``), and an explicit ``numeric`` alignment override for
    columns whose values are not numbers (e.g. Table III's
    ``paper_major`` = "none observable").
    """

    unit: Optional[str]
    role: Optional[str]
    numeric: Optional[bool]

    def __new__(cls, name: str, unit: Optional[str] = None,
                role: Optional[str] = None,
                numeric: Optional[bool] = None) -> "Column":
        if role is not None and role not in ROLES:
            raise ValueError(f"unknown column role {role!r}")
        self = super().__new__(cls, name)
        self.unit = unit
        self.role = role
        self.numeric = numeric
        return self

    @property
    def header(self) -> str:
        """Rendered column header: the name plus the unit, if any."""
        return f"{self} [{self.unit}]" if self.unit else str(self)

    def is_numeric(self) -> Optional[bool]:
        """Tri-state alignment hint: explicit override, else by role
        (measurements are numeric, params unknown -> sniff values)."""
        if self.numeric is not None:
            return self.numeric
        if self.role in ("measured", "paper", "derived"):
            return True
        return None


@dataclass
class ExperimentResult:
    """Rows reproducing one table or figure.

    ``errors`` holds one entry per grid point that crashed (params,
    ``error`` summary, full ``traceback``, the point's ``seed``) —
    a failed point costs its own rows only, never its siblings'.
    """

    exp_id: str
    title: str
    columns: list
    rows: list = field(default_factory=list)
    notes: str = ""
    errors: list = field(default_factory=list)

    def __post_init__(self):
        self.columns = [c if isinstance(c, Column) else Column(c)
                        for c in self.columns]

    def row_by(self, **match) -> dict:
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row
        raise KeyError(f"no row matching {match}")

    @property
    def ok(self) -> bool:
        return not self.errors


@dataclass(frozen=True)
class Experiment:
    """One table/figure as a declarative descriptor (see module doc)."""

    name: str
    title: str
    columns: object            # tuple, or columns(scale) -> tuple
    point: Callable            # point(scale=..., **params) -> [rows]
    grid: Callable             # grid(scale, **options) -> [params]
    fold: Optional[Callable] = None   # fold(rows, scale) -> [rows]
    notes: str = ""
    options: tuple = ()        # option names the grid understands
    #: Optional key-metric extractor for the benchmark trend record
    #: (``BENCH_trend.json``): ``trend(result) -> dict | None`` with
    #: keys ``metric`` / ``value`` / ``unit`` / ``higher_is_better`` /
    #: ``tier1``.  ``None`` (or a ``None`` return) records nothing.
    trend: Optional[Callable] = None

    def columns_for(self, scale: str = "quick") -> tuple:
        """Column schema at ``scale`` (sweep-width columns vary)."""
        cols = self.columns
        return tuple(cols(scale)) if callable(cols) else tuple(cols)

    def new_result(self, scale: str = "quick") -> ExperimentResult:
        return ExperimentResult(exp_id=self.name, title=self.title,
                                columns=list(self.columns_for(scale)),
                                notes=self.notes)


#: Insertion-ordered registry: experiment id -> descriptor.
REGISTRY: dict[str, Experiment] = {}


def experiment(name: str, *, title: str, columns, grid,
               fold: Optional[Callable] = None, notes: str = "",
               options: tuple = (), trend: Optional[Callable] = None):
    """Register the decorated point function as experiment ``name``.

    The decorator returns the function unchanged (it must stay a plain
    module-level function so workers can unpickle it by reference);
    stacking several ``@experiment`` decorators registers the same
    point under several ids with different grids (figure6a/b/c).
    """
    def register(point_fn):
        if name in REGISTRY:
            raise ValueError(f"experiment {name!r} already registered")
        REGISTRY[name] = Experiment(
            name=name, title=title,
            columns=columns if callable(columns) else tuple(columns),
            point=point_fn, grid=grid, fold=fold, notes=notes,
            options=tuple(options), trend=trend)
        return point_fn
    return register
