"""Text rendering of experiment results."""

from __future__ import annotations

from repro.harness.experiments import ExperimentResult


def format_result(result: ExperimentResult) -> str:
    """Render one experiment as an aligned text table."""
    cols = result.columns
    rows = [[_cell(row.get(c, "")) for c in cols] for row in result.rows]
    widths = [max(len(str(c)), *(len(r[i]) for r in rows)) if rows
              else len(str(c)) for i, c in enumerate(cols)]
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        f"== {result.exp_id}: {result.title} ==",
        " | ".join(str(c).ljust(w) for c, w in zip(cols, widths)),
        sep,
    ]
    for r in rows:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(r, widths)))
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)


def format_markdown(result: ExperimentResult) -> str:
    """Render one experiment as a Markdown table (for EXPERIMENTS.md)."""
    cols = result.columns
    lines = [
        f"### {result.exp_id} — {result.title}",
        "",
        "| " + " | ".join(str(c) for c in cols) + " |",
        "|" + "|".join("---" for _ in cols) + "|",
    ]
    for row in result.rows:
        lines.append(
            "| " + " | ".join(_cell(row.get(c, "")) for c in cols) + " |")
    if result.notes:
        lines.extend(["", f"*{result.notes}*"])
    lines.append("")
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)
