"""Text rendering of experiment results and launch profiles."""

from __future__ import annotations

import math

from repro.harness.registry import Column, ExperimentResult


def _header(col) -> str:
    """Column header: the unified schema's unit-annotated form when the
    column carries metadata, the bare name otherwise."""
    return col.header if isinstance(col, Column) else str(col)


def format_result(result: ExperimentResult) -> str:
    """Render one experiment as an aligned text table.

    Column alignment comes from the unified schema when available
    (:meth:`Column.is_numeric`); plain-string columns fall back to
    value sniffing (every present value an int/float -> right-align).
    Failed grid points (``result.errors``) render below the table.
    """
    cols = result.columns
    rows = [[_cell(row.get(c, "")) for c in cols] for row in result.rows]
    numeric = [_column_numeric(result.rows, c) for c in cols]
    headers = [_header(c) for c in cols]
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows
              else len(h) for i, h in enumerate(headers)]
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        f"== {result.exp_id}: {result.title} ==",
        " | ".join(_align(h, w, n)
                   for h, w, n in zip(headers, widths, numeric)),
        sep,
    ]
    for r in rows:
        lines.append(" | ".join(_align(v, w, n)
                                for v, w, n in zip(r, widths, numeric)))
    if result.notes:
        lines.append(f"note: {result.notes}")
    for err in result.errors:
        lines.append(f"ERROR: point {err.get('params')}: "
                     f"{err.get('error')}")
    return "\n".join(lines)


def format_markdown(result: ExperimentResult,
                    elapsed: float | None = None) -> str:
    """Render one experiment as a Markdown table (for EXPERIMENTS.md)."""
    cols = result.columns
    lines = [
        f"### {result.exp_id} — {result.title}",
        "",
        "| " + " | ".join(_header(c) for c in cols) + " |",
        "|" + "|".join("---" for _ in cols) + "|",
    ]
    for row in result.rows:
        lines.append(
            "| " + " | ".join(_cell(row.get(c, "")) for c in cols) + " |")
    if result.errors:
        lines.append("")
        for err in result.errors:
            lines.append(f"- **failed point** `{err.get('params')}`: "
                         f"{err.get('error')}")
    if result.notes:
        lines.extend(["", f"*{result.notes}*"])
    if elapsed is not None:
        lines.extend(["", f"*wall time: {elapsed:.1f}s*"])
    lines.append("")
    return "\n".join(lines)


def format_profile(profile) -> str:
    """Stall / bandwidth summary of one launch profile.

    Accepts a :class:`~repro.telemetry.LaunchProfile` or its
    ``to_dict()`` document; renders the headline utilisation figures
    and a stall-reason table sorted by cost.
    """
    doc = profile.to_dict() if hasattr(profile, "to_dict") else profile
    launch, issue = doc["launch"], doc["issue"]
    dram, pcie = doc["dram"], doc["pcie"]
    cycles = launch["cycles"]
    lines = [
        f"== profile #{doc['index']}: {doc['name']} ==",
        f"launch: grid={launch['grid']} x {launch['block_threads']} "
        f"threads, {launch['blocks_per_sm']} blocks/SM, "
        f"{cycles:.0f} cycles ({launch['seconds'] * 1e3:.3f} ms)",
        f"issue : {100 * issue['slot_utilization']:.1f}% of slots, "
        f"{issue['instructions_per_cycle']:.2f} instr/cycle",
        f"dram  : {dram['bandwidth_gbs']:.1f} GB/s, server occupancy "
        f"{100 * dram['occupancy']:.1f}%, mean queue "
        f"{dram['mean_queue_cycles']:.1f} cycles/access",
        f"pcie  : {pcie['bytes']} bytes, occupancy "
        f"{100 * pcie['occupancy']:.1f}%",
    ]
    sms = doc.get("sms") or []
    if sms:
        utils = [s["utilization"] for s in sms]
        lines.append(
            f"SMs   : utilization mean {100 * _mean(utils):.1f}% "
            f"min {100 * min(utils):.1f}% max {100 * max(utils):.1f}% "
            f"({len(sms)} SMs)")
    stalls = doc.get("stalls") or {}
    if stalls and cycles:
        lines.append("warp stalls (cycles, x span):")
        for reason, value in sorted(stalls.items(),
                                    key=lambda kv: -kv[1]):
            lines.append(f"  {reason:16s} {value:14.0f} "
                         f"{value / cycles:8.2f}x")
    for kind, counters in sorted((doc.get("components") or {}).items()):
        shown = ", ".join(f"{k}={_cell(v)}"
                          for k, v in sorted(counters.items()) if v)
        lines.append(f"{kind}: {shown or '(all zero)'}")
    # Silent data loss must not stay silent: truncated traces fail
    # repro-attr much later, and capped series quietly thin out.
    trace = doc.get("trace") or {}
    if trace.get("dropped"):
        lines.append(
            f"WARNING: trace dropped {trace['dropped']} events at "
            f"record time (raise max_trace_events); attribution and "
            f"request-span reports will be incomplete")
    series = (doc.get("components") or {}).get("timeseries") or {}
    if series.get("dropped_windows"):
        lines.append(
            f"WARNING: timeseries dropped {series['dropped_windows']} "
            f"windows past the in-profile retention cap (widen "
            f"window_cycles or raise max_windows); the streamed sink "
            f"kept them")
    return "\n".join(lines)


def format_attribution(report, *, markdown: bool = False) -> str:
    """Render a cycle-attribution report (text or Markdown).

    Accepts an
    :class:`~repro.telemetry.attribution.AttributionReport` or its
    ``to_dict()`` document.  The text form leads with the headline
    number — how much translation work was hidden inside the
    memory-latency bubble — then the launch critical path and the
    warp-level stall breakdown.
    """
    doc = report.to_dict() if hasattr(report, "to_dict") else report
    tr = doc.get("translation", {})
    cycles = doc.get("launch_cycles", 0.0)
    crit = doc.get("critical_path", {})
    stalls = doc.get("stall_cycles", {})

    def pct(x, base):
        return f"{100 * x / base:.1f}%" if base else "n/a"

    if markdown:
        lines = [
            "### Cycle attribution",
            "",
            f"- launch: {cycles:.0f} cycles, {doc.get('warps', 0)} "
            f"warps on {doc.get('sms', 0)} SMs "
            f"({doc.get('events', 0)} trace events)",
            f"- translation: {tr.get('total', 0.0):.0f} cycles "
            f"({tr.get('events', 0)} requests) — "
            f"**{100 * tr.get('hidden_fraction', 0.0):.1f}% hidden**, "
            f"{tr.get('exposed', 0.0):.0f} exposed",
            f"- critical path (no warp issuing): "
            f"{doc.get('critical_path_cycles', 0.0):.0f} cycles "
            f"({pct(doc.get('critical_path_cycles', 0.0), cycles * max(doc.get('sms', 1), 1))} of SM time)",
            "",
            "| critical-path reason | cycles |",
            "|---|---|",
        ]
        for reason, value in sorted(crit.items(), key=lambda kv: -kv[1]):
            lines.append(f"| {reason} | {value:.0f} |")
        lines.append("")
        return "\n".join(lines)

    lines = [
        "== cycle attribution ==",
        f"launch : {cycles:.0f} cycles, {doc.get('warps', 0)} warps on "
        f"{doc.get('sms', 0)} SMs ({doc.get('events', 0)} events)",
        f"translation : {tr.get('total', 0.0):.0f} cycles over "
        f"{tr.get('events', 0)} requests "
        f"({tr.get('issue_slots', 0.0):.0f} issue slots)",
        f"  hidden  : {tr.get('hidden', 0.0):14.0f} "
        f"({100 * tr.get('hidden_fraction', 0.0):.1f}%)  "
        "<- absorbed by the memory-latency bubble",
        f"  exposed : {tr.get('exposed', 0.0):14.0f} "
        f"({100 * (1 - tr.get('hidden_fraction', 0.0)):.1f}%)  "
        "<- on the warp with no concurrent issue",
        f"critical path : "
        f"{doc.get('critical_path_cycles', 0.0):.0f} SM-cycles with no "
        "warp issuing, attributed to:",
    ]
    for reason, value in sorted(crit.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {reason:16s} {value:14.0f}")
    if stalls:
        lines.append("warp-level stalls (all warps, cycles):")
        for reason, value in sorted(stalls.items(),
                                    key=lambda kv: -kv[1]):
            lines.append(f"  {reason:16s} {value:14.0f}")
    idle = doc.get("idle_cycles", 0.0)
    issue = doc.get("issue_cycles", 0.0)
    lines.append(f"warp totals: issue {issue:.0f}, idle {idle:.0f} "
                 "(per-warp rows: hidden + exposed + idle = cycles)")
    return "\n".join(lines)


def _mean(values) -> float:
    return sum(values) / len(values) if values else 0.0


def _align(value: str, width: int, numeric: bool) -> str:
    return value.rjust(width) if numeric else value.ljust(width)


def _column_numeric(rows, col) -> bool:
    """Alignment for one column: schema metadata first, then sniffing."""
    if isinstance(col, Column):
        hint = col.is_numeric()
        if hint is not None:
            return hint
    return _is_numeric_column(rows, col)


def _is_numeric_column(rows, col) -> bool:
    """True when every present value is an int/float (bools are text)."""
    seen = False
    for row in rows:
        value = row.get(col)
        if value is None or value == "":
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return False
        seen = True
    return seen


def _cell(value) -> str:
    """One table cell.  ``None`` and non-finite floats render explicitly
    so a broken measurement is visible instead of masquerading as a
    number (``nan`` used to print unlabeled)."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+inf" if value > 0 else "-inf"
        return f"{value:g}"
    return str(value)
