"""Process-pool parallel experiment runner.

Every grid point of an :class:`~repro.harness.registry.Experiment` is
an independent simulation, so the suite is embarrassingly parallel —
the classic structure parallel GPU-simulator work exploits.  This
module fans points out across spawn workers (``concurrent.futures``),
with:

* **deterministic per-point seeding** — each point's RNG seed is a
  stable hash of ``(base_seed, experiment, point index, params)``, so
  ``--jobs 1`` and ``--jobs N`` produce row-for-row identical results;
* **structured failure capture** — a crashed point becomes an entry in
  ``result.errors`` (params + traceback), never a crashed suite: the
  sibling points' rows survive;
* **per-worker profile merging** — with ``profile=True`` each point
  runs under :func:`repro.telemetry.capture` and its
  ``LaunchProfile`` documents are shipped back and merged into one
  suite profile (:func:`repro.telemetry.merge_profiles`, schema v4
  with a ``run.workers`` section);
* a **progress line** on stderr when attached to a terminal.

Spawn-safety is what the registry buys: point functions are
module-level (pickled by reference) and grid params are plain dicts,
so nothing closes over a live ``Device`` or an unpicklable config.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import sys
import time
import traceback
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro.harness.registry import Experiment, ExperimentResult

#: Default base seed; combine with a per-point hash for the final seed.
DEFAULT_BASE_SEED = 0x5EED


class ExperimentPointError(RuntimeError):
    """Raised by fail-fast callers when any grid point crashed."""

    def __init__(self, exp_id: str, errors: list):
        self.exp_id = exp_id
        self.errors = errors
        first = errors[0]
        super().__init__(
            f"{len(errors)} point(s) of {exp_id} failed; first: "
            f"{first['params']}: {first['error']}")


@dataclass
class PointOutcome:
    """One grid point, finished: its rows or its failure."""

    index: int
    params: dict
    seed: int
    rows: Optional[list] = None
    error: Optional[str] = None        # "ExceptionType: message"
    traceback: Optional[str] = None
    profiles: list = field(default_factory=list)   # LaunchProfile docs
    tracers: list = field(default_factory=list)    # in-process runs only
    worker_pid: int = 0


@dataclass
class RunReport:
    """Everything one :func:`run_experiment` call produced."""

    result: ExperimentResult
    outcomes: list
    profiles: list = field(default_factory=list)   # docs, grid order
    tracers: list = field(default_factory=list)    # parallel to profiles
    merged: Optional[dict] = None                  # suite profile (v4)
    jobs: int = 1
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result.ok


def point_seed(exp_name: str, index: int, params: dict,
               base_seed: int = DEFAULT_BASE_SEED) -> int:
    """Stable per-point seed: identical in-process and across spawn
    workers, independent of scheduling order and job count."""
    blob = repr((base_seed, exp_name, index,
                 sorted(params.items()))).encode()
    return zlib.crc32(blob) & 0x7FFFFFFF


def _seed_rngs(seed: int) -> None:
    import numpy as np
    random.seed(seed)
    np.random.seed(seed & 0xFFFFFFFF)


def _execute_point(point_fn, params: dict, seed: int, scale: str,
                   profile: bool, trace: bool,
                   attribution: bool = False):
    """Run one point (any process); returns (rows, profile docs,
    tracers).  Tracers only exist for in-process execution — they are
    not shipped across the pool.  ``attribution`` forces a tracer per
    launch (the analyzer needs the event log) and stores the
    cycle-attribution summary in each profile's components."""
    _seed_rngs(seed)
    if not profile:
        return point_fn(scale=scale, **params), [], []
    from repro.telemetry import capture
    with capture(trace=trace or attribution, max_traces=1,
                 attribution=attribution) as prof:
        rows = point_fn(scale=scale, **params)
    return rows, [p.to_dict() for p in prof.profiles], prof.traces


def _pool_task(point_fn, index: int, params: dict, seed: int,
               scale: str, profile: bool, attribution: bool = False):
    """Worker-side wrapper: never raises — failures come back as data."""
    try:
        rows, docs, _ = _execute_point(point_fn, params, seed, scale,
                                       profile, trace=False,
                                       attribution=attribution)
        return (index, rows, docs, None, None, os.getpid())
    except BaseException as exc:                    # noqa: BLE001
        return (index, None, [], f"{type(exc).__name__}: {exc}",
                traceback.format_exc(), os.getpid())


def spawn_executor(jobs: int) -> ProcessPoolExecutor:
    """A spawn-context pool (fork would duplicate live sim state)."""
    return ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=multiprocessing.get_context("spawn"))


def resolve_jobs(jobs: int) -> int:
    """``0`` means "one worker per core"."""
    return jobs if jobs > 0 else (os.cpu_count() or 1)


def run_experiment(exp: Experiment, *, scale: str = "quick",
                   jobs: int = 1, options: Optional[dict] = None,
                   profile: bool = False, trace: Optional[bool] = None,
                   attribution: bool = False,
                   base_seed: int = DEFAULT_BASE_SEED,
                   progress: Optional[bool] = None,
                   executor: Optional[ProcessPoolExecutor] = None,
                   ) -> RunReport:
    """Run every grid point of ``exp``; return a :class:`RunReport`.

    ``jobs=1`` runs in-process; ``jobs>1`` fans points out over a
    spawn pool (pass ``executor`` to share one pool across several
    experiments — spawn startup is paid once).  ``options`` are
    filtered against ``exp.options`` before reaching the grid, so
    harness-wide flags (``--eviction-policy``) can be offered to every
    experiment and only land where declared.  ``attribution=True``
    implies profiling and runs the cycle-attribution analyzer on every
    launch (see :mod:`repro.telemetry.attribution`).
    """
    started = time.time()
    profile = profile or attribution
    jobs = resolve_jobs(jobs)
    opts = {k: v for k, v in (options or {}).items()
            if k in exp.options and v is not None}
    grid = exp.grid(scale, **opts)
    result = exp.new_result(scale)
    show = _progress_enabled(progress)
    outcomes: list = [None] * len(grid)

    if jobs == 1 and executor is None:
        in_process_trace = profile if trace is None else trace
        for i, params in enumerate(grid):
            seed = point_seed(exp.name, i, params, base_seed)
            out = PointOutcome(index=i, params=params, seed=seed,
                               worker_pid=os.getpid())
            try:
                out.rows, out.profiles, out.tracers = _execute_point(
                    exp.point, params, seed, scale, profile,
                    trace=in_process_trace, attribution=attribution)
            except Exception as exc:
                out.error = f"{type(exc).__name__}: {exc}"
                out.traceback = traceback.format_exc()
            outcomes[i] = out
            _progress(show, exp.name, sum(o is not None
                                          for o in outcomes),
                      len(grid), jobs)
    else:
        own_pool = executor is None
        pool = executor if executor is not None else spawn_executor(jobs)
        try:
            futures = {}
            for i, params in enumerate(grid):
                seed = point_seed(exp.name, i, params, base_seed)
                futures[pool.submit(_pool_task, exp.point, i, params,
                                    seed, scale, profile,
                                    attribution)] = (i, params, seed)
            done = 0
            from concurrent.futures import as_completed
            for fut in as_completed(futures):
                i, params, seed = futures[fut]
                index, rows, docs, error, tb, pid = fut.result()
                outcomes[index] = PointOutcome(
                    index=index, params=params, seed=seed, rows=rows,
                    error=error, traceback=tb, profiles=docs,
                    worker_pid=pid)
                done += 1
                _progress(show, exp.name, done, len(grid), jobs)
        finally:
            if own_pool:
                pool.shutdown()
    _progress_end(show)

    rows: list = []
    profiles: list = []
    tracers: list = []
    for out in outcomes:
        if out.error is not None:
            result.errors.append({
                "params": out.params, "error": out.error,
                "traceback": out.traceback, "seed": out.seed,
            })
            continue
        rows.extend(out.rows)
        profiles.extend(out.profiles)
        tracers.extend(out.tracers)
    result.rows = exp.fold(rows, scale) if exp.fold else rows

    merged = None
    if profile and profiles:
        # Re-index in deterministic grid order (worker-local indices
        # all start at zero) before merging.
        for index, doc in enumerate(profiles):
            doc["index"] = index
        tracers.extend([None] * (len(profiles) - len(tracers)))
        from repro.telemetry import merge_profiles
        merged = merge_profiles(
            profiles, name=f"{exp.name} suite",
            workers={
                "count": len({o.worker_pid for o in outcomes
                              if o is not None}),
                "jobs": jobs,
                "points": len(grid),
                "launches": len(profiles),
                "errors": len(result.errors),
            })
    return RunReport(result=result, outcomes=outcomes,
                     profiles=profiles, tracers=tracers, merged=merged,
                     jobs=jobs, elapsed=time.time() - started)


def run_named(name: str, **kwargs) -> RunReport:
    """Run a registered experiment by id (imports the registry)."""
    import repro.harness.experiments  # noqa: F401  (populates REGISTRY)
    from repro.harness.registry import REGISTRY
    return run_experiment(REGISTRY[name], **kwargs)


# ----------------------------------------------------------------------
# Progress line (stderr, terminals only unless forced)
# ----------------------------------------------------------------------
def _progress_enabled(progress: Optional[bool]) -> bool:
    if progress is not None:
        return progress
    return bool(getattr(sys.stderr, "isatty", lambda: False)())


def _progress(show: bool, name: str, done: int, total: int,
              jobs: int) -> None:
    if show:
        sys.stderr.write(f"\r[{name}] {done}/{total} points "
                         f"({jobs} worker{'s' if jobs != 1 else ''})")
        sys.stderr.flush()


def _progress_end(show: bool) -> None:
    if show:
        sys.stderr.write("\n")
        sys.stderr.flush()
