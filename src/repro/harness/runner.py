"""Process-pool parallel experiment runner.

Every grid point of an :class:`~repro.harness.registry.Experiment` is
an independent simulation, so the suite is embarrassingly parallel —
the classic structure parallel GPU-simulator work exploits.  This
module fans points out across spawn workers (``concurrent.futures``),
with:

* **deterministic per-point seeding** — each point's RNG seed is a
  stable hash of ``(base_seed, experiment, point index, params)``, so
  ``--jobs 1`` and ``--jobs N`` produce row-for-row identical results;
* **structured failure capture** — a crashed point becomes an entry in
  ``result.errors`` (params + traceback), never a crashed suite: the
  sibling points' rows survive;
* **per-worker profile merging** — with ``profile=True`` each point
  runs under :func:`repro.telemetry.capture` and its
  ``LaunchProfile`` documents are shipped back and merged into one
  suite profile (:func:`repro.telemetry.merge_profiles`, schema v4
  with a ``run.workers`` section);
* **live telemetry** — with a :class:`LiveOptions`, every point runs
  under the cycle-window sampler
  (:mod:`repro.telemetry.timeseries`): each process streams its
  point's windows to a ``series-*.jsonl`` file in the live directory
  and ships compact heartbeats to the parent over a manager queue;
* a **progress line** on stderr when attached to a terminal — drawn
  by exactly one :class:`~repro.harness.heartbeat.HeartbeatRenderer`
  in the parent, so ``--jobs N`` output never interleaves.

Spawn-safety is what the registry buys: point functions are
module-level (pickled by reference) and grid params are plain dicts,
so nothing closes over a live ``Device`` or an unpicklable config.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import sys
import time
import traceback
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from queue import Empty
from typing import Optional

from repro.harness.heartbeat import (
    DEFAULT_MIN_INTERVAL,
    HeartbeatRenderer,
    HeartbeatSender,
    make_heartbeat,
)
from repro.harness.registry import Experiment, ExperimentResult

#: Default base seed; combine with a per-point hash for the final seed.
DEFAULT_BASE_SEED = 0x5EED


#: Deprecation warnings already emitted this process (one per key).
_WARNED: set = set()


def _warn_once(key: str, message: str) -> None:
    import warnings
    if key not in _WARNED:
        _WARNED.add(key)
        warnings.warn(message, DeprecationWarning, stacklevel=3)


@dataclass(frozen=True)
class LiveOptions:
    """Live-telemetry configuration for a run (implies profiling).

    ``live_dir`` receives the streaming layout ``repro-top`` tails:
    one ``series-<experiment>-p<NNN>.jsonl`` per grid point, written
    by whichever process ran the point, plus parent-written
    ``heartbeats.jsonl`` and ``metrics.prom`` snapshots.  With
    ``live_dir=None`` heartbeats still drive the progress line but
    nothing is written to disk.  The dataclass is frozen and
    field-picklable, so it ships to spawn workers as-is.
    """

    live_dir: Optional[str] = None
    timeseries: bool = True
    window_cycles: Optional[float] = None     # None = sampler default
    heartbeat_interval: float = DEFAULT_MIN_INTERVAL


@dataclass(frozen=True)
class Instrumentation:
    """Everything a run can observe, in one bundle.

    The runner-side sibling of :class:`repro.gpu.launch.EngineHooks`:
    where ``EngineHooks`` carries live hook *objects* into one engine
    launch, ``Instrumentation`` carries picklable *switches* for a
    whole experiment run — the runner builds the per-launch hook
    objects from them in whichever process executes the point.

    * ``profile`` — collect per-launch profiles and a merged suite
      profile (implied by either of the next two).
    * ``trace`` — keep Chrome-trace event streams (in-process runs
      only; ``None`` means "trace iff profiling").
    * ``attribution`` — run the cycle-attribution analyzer on every
      launch (:mod:`repro.telemetry.attribution`).
    * ``live`` — a :class:`LiveOptions`: cycle-window sampling with
      streaming export and heartbeats.
    """

    profile: bool = False
    trace: Optional[bool] = None
    attribution: bool = False
    live: Optional[LiveOptions] = None

    @classmethod
    def off(cls) -> "Instrumentation":
        return cls()


class ExperimentPointError(RuntimeError):
    """Raised by fail-fast callers when any grid point crashed."""

    def __init__(self, exp_id: str, errors: list):
        self.exp_id = exp_id
        self.errors = errors
        first = errors[0]
        super().__init__(
            f"{len(errors)} point(s) of {exp_id} failed; first: "
            f"{first['params']}: {first['error']}")


@dataclass
class PointOutcome:
    """One grid point, finished: its rows or its failure."""

    index: int
    params: dict
    seed: int
    rows: Optional[list] = None
    error: Optional[str] = None        # "ExceptionType: message"
    traceback: Optional[str] = None
    profiles: list = field(default_factory=list)   # LaunchProfile docs
    tracers: list = field(default_factory=list)    # in-process runs only
    worker_pid: int = 0


@dataclass
class RunReport:
    """Everything one :func:`run_experiment` call produced."""

    result: ExperimentResult
    outcomes: list
    profiles: list = field(default_factory=list)   # docs, grid order
    tracers: list = field(default_factory=list)    # parallel to profiles
    merged: Optional[dict] = None                  # suite profile (v4)
    jobs: int = 1
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result.ok


def point_seed(exp_name: str, index: int, params: dict,
               base_seed: int = DEFAULT_BASE_SEED) -> int:
    """Stable per-point seed: identical in-process and across spawn
    workers, independent of scheduling order and job count."""
    blob = repr((base_seed, exp_name, index,
                 sorted(params.items()))).encode()
    return zlib.crc32(blob) & 0x7FFFFFFF


def _seed_rngs(seed: int) -> None:
    import numpy as np
    random.seed(seed)
    np.random.seed(seed & 0xFFFFFFFF)


def _sampling_config(live: Optional["LiveOptions"], exp_name: str,
                     index: int, sender: Optional[HeartbeatSender]):
    """Per-point sampling wiring for :func:`_execute_point`, or
    ``None`` when live telemetry is off.  Built in the process that
    runs the point (the ``on_window`` closure is not picklable)."""
    if live is None or not live.timeseries:
        return None
    cfg: dict = {
        "window_cycles": live.window_cycles,
        "meta": {"experiment": exp_name, "point": index,
                 "pid": os.getpid()},
    }
    if live.live_dir:
        cfg["series_path"] = os.path.join(
            live.live_dir, f"series-{exp_name}-p{index:03d}.jsonl")
    if sender is not None:
        cfg["on_window"] = (
            lambda record: sender.window_beat(exp_name, index, record))
    return cfg


def _execute_point(point_fn, params: dict, seed: int, scale: str,
                   profile: bool, trace: bool,
                   attribution: bool = False, sampling=None):
    """Run one point (any process); returns (rows, profile docs,
    tracers).  Tracers only exist for in-process execution — they are
    not shipped across the pool.  ``attribution`` forces a tracer per
    launch (the analyzer needs the event log) and stores the
    cycle-attribution summary in each profile's components.
    ``sampling`` (a :func:`_sampling_config` dict) turns on the
    cycle-window sampler and streams each point's windows to its own
    series file."""
    _seed_rngs(seed)
    if not profile:
        return point_fn(scale=scale, **params), [], []
    from repro.telemetry import capture
    kwargs: dict = {}
    sink = None
    if sampling is not None:
        kwargs["timeseries"] = True
        kwargs["window_cycles"] = sampling.get("window_cycles")
        if sampling.get("series_path"):
            from repro.telemetry.timeseries import JsonlSink
            sink = JsonlSink(sampling["series_path"],
                             meta=sampling.get("meta"),
                             on_window=sampling.get("on_window"))
            kwargs["series_sink"] = sink
        elif sampling.get("on_window") is not None:
            kwargs["series_sink"] = sampling["on_window"]
    try:
        with capture(trace=trace or attribution, max_traces=1,
                     attribution=attribution, **kwargs) as prof:
            rows = point_fn(scale=scale, **params)
    finally:
        if sink is not None:
            sink.close()
    return rows, [p.to_dict() for p in prof.profiles], prof.traces


def _pool_task(point_fn, index: int, params: dict, seed: int,
               scale: str, profile: bool, attribution: bool = False,
               live=None, exp_name: str = "", beat_queue=None):
    """Worker-side wrapper: never raises — failures come back as data.

    With live telemetry on, the worker writes its point's series file
    itself (one writer per file) and ships rate-limited ``window``
    heartbeats to the parent over ``beat_queue``.
    """
    try:
        sender = None
        if beat_queue is not None and live is not None:
            sender = HeartbeatSender(beat_queue.put,
                                     min_interval=live.heartbeat_interval)
        sampling = _sampling_config(live, exp_name, index, sender)
        rows, docs, _ = _execute_point(point_fn, params, seed, scale,
                                       profile, trace=False,
                                       attribution=attribution,
                                       sampling=sampling)
        return (index, rows, docs, None, None, os.getpid())
    except BaseException as exc:                    # noqa: BLE001
        return (index, None, [], f"{type(exc).__name__}: {exc}",
                traceback.format_exc(), os.getpid())


def spawn_executor(jobs: int) -> ProcessPoolExecutor:
    """A spawn-context pool (fork would duplicate live sim state)."""
    return ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=multiprocessing.get_context("spawn"))


def resolve_jobs(jobs: int) -> int:
    """``0`` means "one worker per core"."""
    return jobs if jobs > 0 else (os.cpu_count() or 1)


def run_experiment(exp: Experiment, *, scale: str = "quick",
                   jobs: int = 1, options: Optional[dict] = None,
                   instrument: Optional[Instrumentation] = None,
                   base_seed: int = DEFAULT_BASE_SEED,
                   progress: Optional[bool] = None,
                   executor: Optional[ProcessPoolExecutor] = None,
                   **legacy) -> RunReport:
    """Run every grid point of ``exp``; return a :class:`RunReport`.

    ``jobs=1`` runs in-process; ``jobs>1`` fans points out over a
    spawn pool (pass ``executor`` to share one pool across several
    experiments — spawn startup is paid once).  ``options`` are
    filtered against ``exp.options`` before reaching the grid, so
    harness-wide flags (``--eviction-policy``) can be offered to every
    experiment and only land where declared.

    ``instrument`` (an :class:`Instrumentation`) bundles every
    observation switch: profiling, tracing, cycle attribution, and
    live telemetry.  ``attribution`` and ``live`` imply profiling.
    The pre-PR-9 per-switch keywords (``profile=``, ``trace=``,
    ``attribution=``, ``live=``) survive as deprecated shims that
    warn once.
    """
    if legacy:
        instrument = _fold_legacy_instrument(instrument, legacy)
    if instrument is None:
        instrument = Instrumentation.off()
    trace = instrument.trace
    attribution = instrument.attribution
    live = instrument.live
    started = time.time()
    profile = (instrument.profile or attribution
               or (live is not None))
    jobs = resolve_jobs(jobs)
    opts = {k: v for k, v in (options or {}).items()
            if k in exp.options and v is not None}
    grid = exp.grid(scale, **opts)
    result = exp.new_result(scale)
    outcomes: list = [None] * len(grid)
    renderer = HeartbeatRenderer(
        show=_progress_enabled(progress),
        live_dir=live.live_dir if live is not None else None)
    renderer.handle(make_heartbeat("start", exp.name,
                                   points=len(grid), jobs=jobs,
                                   scale=scale))

    if jobs == 1 and executor is None:
        in_process_trace = profile if trace is None else trace
        sender = (HeartbeatSender(renderer.handle,
                                  min_interval=live.heartbeat_interval)
                  if live is not None else None)
        for i, params in enumerate(grid):
            seed = point_seed(exp.name, i, params, base_seed)
            out = PointOutcome(index=i, params=params, seed=seed,
                               worker_pid=os.getpid())
            try:
                out.rows, out.profiles, out.tracers = _execute_point(
                    exp.point, params, seed, scale, profile,
                    trace=in_process_trace, attribution=attribution,
                    sampling=_sampling_config(live, exp.name, i,
                                              sender))
            except Exception as exc:
                out.error = f"{type(exc).__name__}: {exc}"
                out.traceback = traceback.format_exc()
            outcomes[i] = out
            renderer.handle(make_heartbeat(
                "point_done", exp.name, point=i,
                ok=out.error is None))
    else:
        own_pool = executor is None
        pool = executor if executor is not None else spawn_executor(jobs)
        manager = None
        beat_queue = None
        if live is not None and live.timeseries:
            # Spawn-safe heartbeat channel: a manager-proxy queue is
            # picklable, so workers can push window beats mid-point
            # (an executor's own result pipe only speaks at task end).
            manager = multiprocessing.get_context("spawn").Manager()
            beat_queue = manager.Queue()
        try:
            futures = {}
            for i, params in enumerate(grid):
                seed = point_seed(exp.name, i, params, base_seed)
                futures[pool.submit(_pool_task, exp.point, i, params,
                                    seed, scale, profile, attribution,
                                    live, exp.name,
                                    beat_queue)] = (i, params, seed)
            from concurrent.futures import FIRST_COMPLETED, wait
            pending = set(futures)
            while pending:
                # Short timeout so mid-point heartbeats render live;
                # without a queue, block until a point finishes.
                finished, pending = wait(
                    pending,
                    timeout=0.1 if beat_queue is not None else None,
                    return_when=FIRST_COMPLETED)
                _drain_beats(beat_queue, renderer)
                for fut in finished:
                    i, params, seed = futures[fut]
                    index, rows, docs, error, tb, pid = fut.result()
                    outcomes[index] = PointOutcome(
                        index=index, params=params, seed=seed,
                        rows=rows, error=error, traceback=tb,
                        profiles=docs, worker_pid=pid)
                    renderer.handle(make_heartbeat(
                        "point_done", exp.name, point=index,
                        ok=error is None, worker=pid))
            _drain_beats(beat_queue, renderer)
        finally:
            if own_pool:
                pool.shutdown()
            if manager is not None:
                manager.shutdown()
    renderer.handle(make_heartbeat("run_done", exp.name,
                                   points=len(grid)))

    rows: list = []
    profiles: list = []
    tracers: list = []
    for out in outcomes:
        if out.error is not None:
            result.errors.append({
                "params": out.params, "error": out.error,
                "traceback": out.traceback, "seed": out.seed,
            })
            continue
        rows.extend(out.rows)
        profiles.extend(out.profiles)
        tracers.extend(out.tracers)
    result.rows = exp.fold(rows, scale) if exp.fold else rows

    merged = None
    if profile and profiles:
        # Re-index in deterministic grid order (worker-local indices
        # all start at zero) before merging.
        for index, doc in enumerate(profiles):
            doc["index"] = index
        tracers.extend([None] * (len(profiles) - len(tracers)))
        from repro.telemetry import merge_profiles
        merged = merge_profiles(
            profiles, name=f"{exp.name} suite",
            workers={
                "count": len({o.worker_pid for o in outcomes
                              if o is not None}),
                "jobs": jobs,
                "points": len(grid),
                "launches": len(profiles),
                "errors": len(result.errors),
            })
    return RunReport(result=result, outcomes=outcomes,
                     profiles=profiles, tracers=tracers, merged=merged,
                     jobs=jobs, elapsed=time.time() - started)


def _fold_legacy_instrument(instrument: Optional[Instrumentation],
                            legacy: dict) -> Instrumentation:
    """Fold deprecated per-switch keywords into one Instrumentation."""
    values = {}
    for name in ("profile", "trace", "attribution", "live"):
        if name in legacy:
            _warn_once(
                f"run_experiment({name}=)",
                f"run_experiment({name}=...) is deprecated; bundle "
                "observation switches into "
                f"Instrumentation({name}=...) and pass "
                "run_experiment(..., instrument=...) instead")
            values[name] = legacy.pop(name)
    if legacy:
        name = next(iter(legacy))
        raise TypeError(
            f"run_experiment() got an unexpected keyword argument "
            f"{name!r}")
    if instrument is None:
        return Instrumentation(**values)
    defaults = Instrumentation.off()
    for name, value in values.items():
        if getattr(instrument, name) != getattr(defaults, name):
            raise TypeError(
                f"run_experiment() got both instrument.{name} and the "
                f"deprecated {name}= keyword")
    import dataclasses
    return dataclasses.replace(instrument, **values)


def run_named(name: str, **kwargs) -> RunReport:
    """Run a registered experiment by id (imports the registry)."""
    import repro.harness.experiments  # noqa: F401  (populates REGISTRY)
    from repro.harness.registry import REGISTRY
    return run_experiment(REGISTRY[name], **kwargs)


# ----------------------------------------------------------------------
# Progress (stderr, terminals only unless forced) — the line itself is
# drawn by the HeartbeatRenderer, the single stderr writer.
# ----------------------------------------------------------------------
def _progress_enabled(progress: Optional[bool]) -> bool:
    if progress is not None:
        return progress
    return bool(getattr(sys.stderr, "isatty", lambda: False)())


def _drain_beats(beat_queue, renderer: HeartbeatRenderer) -> None:
    """Feed every queued worker heartbeat to the parent's renderer."""
    if beat_queue is None:
        return
    while True:
        try:
            beat = beat_queue.get_nowait()
        except Empty:
            return
        renderer.handle(beat)
