"""Host-side substrate: file system, file API, and CPU timing model.

The paper stores its datasets in CPU RAM via the Linux ``ramfs`` file
system "to measure the worst-case overheads of apointers" (§VI-C) — the
backing store is then never the bottleneck and every translation cost is
exposed.  :class:`repro.host.ramfs.RamFS` plays that role here.

:mod:`repro.host.cpu` models the evaluation machine's CPU side (2× 6-core
Intel i7-4960X with 256-bit AVX) for the collage baselines of §VI-E.
"""

from repro.host.ramfs import RamFS, RamFile
from repro.host.filesys import FileHandle, HostFileSystem, O_RDONLY, O_RDWR
from repro.host.cpu import CPUSpec, HOST_CPU

__all__ = [
    "RamFS",
    "RamFile",
    "FileHandle",
    "HostFileSystem",
    "O_RDONLY",
    "O_RDWR",
    "CPUSpec",
    "HOST_CPU",
]
