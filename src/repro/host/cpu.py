"""Analytic timing model of the evaluation machine's CPU side.

The paper's baselines (§VI-E) run on 2× 6-core Intel i7-4960X at 3.6 GHz
using Intel TBB across 12 cores and 256-bit AVX vector instructions.
This model estimates the runtime of data-parallel phases from their
operation and byte counts.  It is deliberately simple — a throughput
model with an efficiency factor — because the baseline workloads
(histogram distances, LSH hashing) are embarrassingly parallel streaming
computations that such models capture well.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CPUSpec:
    """Host CPU parameters (2x Intel i7-4960X, as in §VI)."""

    name: str = "2x Intel i7-4960X"
    cores: int = 12
    clock_hz: float = 3.6e9
    simd_lanes_f32: int = 8          # 256-bit AVX
    flops_per_cycle_per_lane: float = 2.0  # mul+add pipes
    efficiency: float = 0.45         # achieved fraction of peak
    mem_bandwidth: float = 40e9      # bytes/s, aggregate streaming
    random_mem_bandwidth: float = 12e9  # bytes/s for scattered ~4 KB reads

    def peak_flops(self) -> float:
        return (self.cores * self.clock_hz * self.simd_lanes_f32
                * self.flops_per_cycle_per_lane)

    def time_for(self, flops: float = 0.0, mem_bytes: float = 0.0,
                 scalar_ops: float = 0.0,
                 random_mem_bytes: float = 0.0) -> float:
        """Seconds to execute a parallel phase.

        The phase is modelled as the max of its compute time (vector
        ``flops`` at calibrated efficiency plus unvectorisable
        ``scalar_ops``) and its memory time; ``random_mem_bytes`` are
        scattered small-record accesses served at the lower
        random-access bandwidth.
        """
        compute = flops / (self.peak_flops() * self.efficiency)
        scalar = scalar_ops / (self.cores * self.clock_hz * self.efficiency)
        memory = (mem_bytes / self.mem_bandwidth
                  + random_mem_bytes / self.random_mem_bandwidth)
        return max(compute + scalar, memory)

    def time_single_core(self, flops: float = 0.0,
                         mem_bytes: float = 0.0) -> float:
        """Seconds for a serial (single-core, scalar) phase."""
        compute = flops / (self.clock_hz * self.efficiency)
        memory = mem_bytes / (self.mem_bandwidth / self.cores)
        return max(compute, memory)


#: The CPU used by all baselines.
HOST_CPU = CPUSpec()
