"""POSIX-flavoured file descriptor API over :class:`RamFS`.

GPUfs exposes a CPU-like file API to GPU code; its host-side daemon
resolves file descriptors against the host file system.  This module is
that host side: the paging layer holds :class:`FileHandle` objects and
issues positional reads/writes through them.
"""

from __future__ import annotations

import numpy as np

from repro.host.ramfs import FileSystemError, RamFS

O_RDONLY = 0
O_RDWR = 2
O_CREAT = 0o100


class FileHandle:
    """An open file descriptor."""

    def __init__(self, fd: int, name: str, flags: int, fs: "HostFileSystem"):
        self.fd = fd
        self.name = name
        self.flags = flags
        self._fs = fs
        self.closed = False

    @property
    def writable(self) -> bool:
        return bool(self.flags & O_RDWR)

    def _check_open(self) -> None:
        if self.closed:
            raise FileSystemError(f"fd {self.fd} is closed")

    def pread(self, offset: int, nbytes: int) -> np.ndarray:
        self._check_open()
        return self._fs.ramfs.open(self.name).pread(offset, nbytes)

    def pwrite(self, offset: int, data: np.ndarray) -> int:
        self._check_open()
        if not self.writable:
            raise FileSystemError(f"fd {self.fd} opened read-only")
        return self._fs.ramfs.open(self.name).pwrite(offset, data)

    def size(self) -> int:
        self._check_open()
        return self._fs.ramfs.open(self.name).size

    def truncate(self, size: int) -> None:
        self._check_open()
        if not self.writable:
            raise FileSystemError(f"fd {self.fd} opened read-only")
        self._fs.ramfs.open(self.name).truncate(size)

    def close(self) -> None:
        self.closed = True


class HostFileSystem:
    """File-descriptor table over a RamFS instance."""

    def __init__(self, ramfs: RamFS | None = None):
        self.ramfs = ramfs if ramfs is not None else RamFS()
        self._next_fd = 3  # 0-2 are reserved, as tradition demands
        self._handles: dict[int, FileHandle] = {}

    def open(self, name: str, flags: int = O_RDONLY) -> FileHandle:
        if not self.ramfs.exists(name):
            if flags & O_CREAT:
                self.ramfs.create(name)
            else:
                raise FileSystemError(f"no such file: {name}")
        handle = FileHandle(self._next_fd, name, flags, self)
        self._handles[handle.fd] = handle
        self._next_fd += 1
        return handle

    def by_fd(self, fd: int) -> FileHandle:
        try:
            return self._handles[fd]
        except KeyError:
            raise FileSystemError(f"bad file descriptor: {fd}") from None

    def close(self, fd: int) -> None:
        self.by_fd(fd).close()
        del self._handles[fd]

    @property
    def open_fds(self) -> list[int]:
        return sorted(self._handles)
