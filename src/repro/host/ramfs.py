"""An in-memory file system, standing in for Linux ramfs.

Files are byte arrays in host memory.  Reading from a :class:`RamFile`
costs host *memory* time only; the expensive part of a GPU major page
fault is the PCIe transfer, which the paging layer charges separately.
"""

from __future__ import annotations

import numpy as np


class FileSystemError(Exception):
    """Raised on invalid RamFS operations."""


class RamFile:
    """One file: a growable byte array."""

    def __init__(self, name: str, data: np.ndarray | None = None):
        self.name = name
        self.data = (np.zeros(0, dtype=np.uint8) if data is None
                     else np.asarray(data, dtype=np.uint8).copy())

    @property
    def size(self) -> int:
        return int(self.data.size)

    def pread(self, offset: int, nbytes: int) -> np.ndarray:
        """Read up to ``nbytes`` at ``offset``; short reads at EOF."""
        if offset < 0:
            raise FileSystemError(f"negative offset {offset}")
        end = min(offset + nbytes, self.size)
        if offset >= self.size:
            return np.zeros(0, dtype=np.uint8)
        return self.data[offset:end].copy()

    def pwrite(self, offset: int, data: np.ndarray) -> int:
        """Write at ``offset``, growing the file if needed."""
        if offset < 0:
            raise FileSystemError(f"negative offset {offset}")
        raw = np.asarray(data).view(np.uint8).ravel()
        end = offset + raw.size
        if end > self.size:
            grown = np.zeros(end, dtype=np.uint8)
            grown[:self.size] = self.data
            self.data = grown
        self.data[offset:end] = raw
        return int(raw.size)

    def truncate(self, size: int) -> None:
        if size < 0:
            raise FileSystemError("negative truncate size")
        if size <= self.size:
            self.data = self.data[:size].copy()
        else:
            grown = np.zeros(size, dtype=np.uint8)
            grown[:self.size] = self.data
            self.data = grown


class RamFS:
    """A flat namespace of in-memory files."""

    def __init__(self):
        self._files: dict[str, RamFile] = {}

    def create(self, name: str, data: np.ndarray | None = None) -> RamFile:
        if name in self._files:
            raise FileSystemError(f"file exists: {name}")
        f = RamFile(name, data)
        self._files[name] = f
        return f

    def open(self, name: str) -> RamFile:
        try:
            return self._files[name]
        except KeyError:
            raise FileSystemError(f"no such file: {name}") from None

    def exists(self, name: str) -> bool:
        return name in self._files

    def unlink(self, name: str) -> None:
        if name not in self._files:
            raise FileSystemError(f"no such file: {name}")
        del self._files[name]

    def listdir(self) -> list[str]:
        return sorted(self._files)

    @property
    def total_bytes(self) -> int:
        return sum(f.size for f in self._files.values())
