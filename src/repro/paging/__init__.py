"""GPUfs-style paging layer: page cache, page table, host transfers.

This is the substrate the paper integrates ActivePointers with (§V).  It
reimplements the *redesigned* GPUfs paging subsystem the paper describes:

* a single highly concurrent page-table **hash table** for all files,
  sized 16x the number of page-cache frames, with fine-grained per-bucket
  locking for insertion and lock-free reads;
* a **page cache** in GPU memory with per-page reference counts — a page
  with a positive count is *active* and can never be evicted, which is
  the invariant that lets apointers cache translations in registers;
* small **4 KB pages** with host-side transfer **batching** to amortise
  the fixed PCIe cost (§V, "Optimizing for small page size");
* a **gmmap()/gmunmap()** page-granularity API (the original GPUfs
  interface, used as the baseline in §VI-C) and the fault-handler entry
  point ActivePointers calls.
"""

from repro.paging.page_table import PageTable, PageTableEntry
from repro.paging.page_cache import PageCache, PageCacheConfig
from repro.paging.staging import TransferBatcher
from repro.paging.gpufs import (
    GPUfs,
    GPUfsConfig,
    PagingStats,
    PROT_READ,
    PROT_WRITE,
)

__all__ = [
    "PageTable",
    "PageTableEntry",
    "PageCache",
    "PageCacheConfig",
    "TransferBatcher",
    "GPUfs",
    "GPUfsConfig",
    "PagingStats",
    "PROT_READ",
    "PROT_WRITE",
]
