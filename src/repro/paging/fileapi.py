"""The classic GPUfs warp-level file API: gread / gwrite.

GPUfs's original interface [1] is CPU-like file calls from GPU code:
a warp reads a byte range of a file into a buffer it owns.  The paper
*contrasts* memory-mapped files with this API — mmap "eliminate[s]
buffer allocation, read/write system calls, and file pointer
arithmetics" and enables zero-copy — so having both lets the difference
be demonstrated and measured (see ``examples/gread_vs_mmap.py``).

Both calls are thin wrappers over the generic syscall layer
(:mod:`repro.syscalls`): ``gread`` is ``pread``, ``gwrite`` is
``pwrite``.  The page-walk, warp-cooperative copy, and staging logic
live there — this module only keeps the historical GPUfs names and
per-file call counters.
"""

from __future__ import annotations

from repro.gpu.kernel import WarpContext
from repro.paging.gpufs import GPUfs


class GFile:
    """A file opened for warp-level gread/gwrite calls."""

    def __init__(self, gpufs: GPUfs, file_id: int):
        self.gpufs = gpufs
        self.file_id = file_id
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    def gread(self, ctx: WarpContext, offset: int, nbytes: int,
              dst_addr: int):
        """Timed: read ``nbytes`` at ``offset`` into the device buffer
        at ``dst_addr``.  The whole warp participates in the copy."""
        self.reads += 1
        return (yield from self.gpufs.syscalls.pread(
            ctx, self.file_id, offset, nbytes, dst_addr))

    def gwrite(self, ctx: WarpContext, offset: int, nbytes: int,
               src_addr: int):
        """Timed: write ``nbytes`` from the device buffer at
        ``src_addr`` into the file at ``offset``."""
        self.writes += 1
        return (yield from self.gpufs.syscalls.pwrite(
            ctx, self.file_id, offset, nbytes, src_addr))


def gopen(gpufs: GPUfs, name: str, flags: int = 0) -> GFile:
    """Open a host file for gread/gwrite access (host-side call)."""
    return GFile(gpufs, gpufs.open(name, flags))
