"""The classic GPUfs warp-level file API: gread / gwrite.

GPUfs's original interface [1] is CPU-like file calls from GPU code:
a warp reads a byte range of a file into a buffer it owns.  The paper
*contrasts* memory-mapped files with this API — mmap "eliminate[s]
buffer allocation, read/write system calls, and file pointer
arithmetics" and enables zero-copy — so having both lets the difference
be demonstrated and measured (see ``examples/gread_vs_mmap.py``).

Both calls go through the same page cache as everything else: a gread
pins the spanned pages, copies the bytes into the destination buffer
(the extra copy mmap avoids), and unpins.
"""

from __future__ import annotations

from repro.gpu.kernel import WarpContext
from repro.paging.gpufs import GPUfs

#: Per-call bookkeeping (argument checks, file table lookup).
CALL_INSTRS = 20


class GFile:
    """A file opened for warp-level gread/gwrite calls."""

    def __init__(self, gpufs: GPUfs, file_id: int):
        self.gpufs = gpufs
        self.file_id = file_id
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    def gread(self, ctx: WarpContext, offset: int, nbytes: int,
              dst_addr: int):
        """Timed: read ``nbytes`` at ``offset`` into the device buffer
        at ``dst_addr``.  The whole warp participates in the copy."""
        if nbytes <= 0:
            raise ValueError("gread of non-positive size")
        self.reads += 1
        ctx.charge(CALL_INSTRS)
        yield from self._for_each_page(ctx, offset, nbytes, dst_addr,
                                       write=False)
        return nbytes

    def gwrite(self, ctx: WarpContext, offset: int, nbytes: int,
               src_addr: int):
        """Timed: write ``nbytes`` from the device buffer at
        ``src_addr`` into the file at ``offset``."""
        if nbytes <= 0:
            raise ValueError("gwrite of non-positive size")
        self.writes += 1
        ctx.charge(CALL_INSTRS)
        yield from self._for_each_page(ctx, offset, nbytes, src_addr,
                                       write=True)
        return nbytes

    # ------------------------------------------------------------------
    def _for_each_page(self, ctx: WarpContext, offset: int, nbytes: int,
                       buf_addr: int, write: bool):
        gpufs = self.gpufs
        page = gpufs.page_size
        pos = offset
        end = offset + nbytes
        while pos < end:
            fpn = pos // page
            in_page = pos % page
            chunk = min(end - pos, page - in_page)
            frame_addr = yield from gpufs.handle_fault(
                ctx, self.file_id, fpn, refs=1, write=write)
            if write:
                yield from self._copy(ctx, buf_addr + (pos - offset),
                                      frame_addr + in_page, chunk)
            else:
                yield from self._copy(ctx, frame_addr + in_page,
                                      buf_addr + (pos - offset), chunk)
            yield from gpufs.release_page(ctx, self.file_id, fpn, refs=1)
            pos += chunk

    def _copy(self, ctx: WarpContext, src: int, dst: int, nbytes: int):
        """Warp-cooperative copy — the buffer copy mmap avoids."""
        step = 16 * ctx.warp_size
        for off in range(0, nbytes - nbytes % step, step):
            lane = off + ctx.lane * 16
            ctx.charge(4)
            vals = yield from ctx.load_wide(src + lane, "f4", 4,
                                            nonblocking=True)
            yield from ctx.store_wide(dst + lane, vals, "f4")
        yield from ctx.fence()
        tail = nbytes % step
        if tail:
            base = nbytes - tail
            ctx.charge(4)
            ctx.memory.write(dst + base, ctx.memory.read(src + base,
                                                         tail).copy())
            yield from ctx.compute(tail / 8)


def gopen(gpufs: GPUfs, name: str, flags: int = 0) -> GFile:
    """Open a host file for gread/gwrite access (host-side call)."""
    return GFile(gpufs, gpufs.open(name, flags))
