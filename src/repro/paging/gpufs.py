"""The GPUfs layer: files, page faults, and the gmmap() baseline API.

This module ties the page table, page cache, and transfer batcher into
the paging system of §V.  Two interfaces are exposed to GPU code:

* :meth:`GPUfs.gmmap` / :meth:`GPUfs.gmunmap` — the *original* GPUfs
  page-granularity interface used as the baseline in §VI-C: it pins one
  page in the cache (minor fault), transferring it from the host first if
  needed (major fault), and returns its device address.
* :meth:`GPUfs.handle_fault` / :meth:`GPUfs.release_page` — the entry
  points the ActivePointers translation layer calls from its warp-level
  fault handler.

Custom fault filters (:class:`FaultFilter`) may transform page contents
on their way in and out of the cache — this is the hook the paper's
introduction proposes for a CryptFS-style encrypted GPU file system.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gpu.kernel import WarpContext
from repro.host.filesys import FileHandle, HostFileSystem, O_RDONLY
from repro.host.ramfs import FileSystemError
from repro.paging.page_cache import PageCache, PageCacheConfig
from repro.paging.page_table import PageTableEntry
from repro.paging.staging import TransferBatcher
from repro.telemetry import hooks as telemetry_hooks

SPIN_WAIT_CYCLES = 200.0

#: ``gmmap`` / ``gvmmap`` protection flags (mmap-style).  A mapping
#: without ``PROT_WRITE`` can never dirty a shared frame: write faults
#: through it fail fast instead of corrupting the page cache and only
#: surfacing at write-back.
PROT_READ = 0x1
PROT_WRITE = 0x2

#: Instruction cost of the paging layer's fault-handler bookkeeping
#: beyond the structural work modelled explicitly (argument marshalling,
#: state checks, fences, swap accounting).  Calibrated so that the
#: §VI-C minor-fault experiment reproduces Table III's relative
#: overheads; the companion GPUfs analysis (SYSTOR'16, cited as [17])
#: describes this heavyweight handler.
MINOR_FAULT_INSTRS = 150.0
MAJOR_FAULT_EXTRA_INSTRS = 250.0


@dataclass(frozen=True)
class GPUfsConfig:
    """Configuration of the paging subsystem.

    Construct with keyword arguments only — positional construction
    raises ``TypeError`` (its ``DeprecationWarning`` release was PR 4
    through PR 8): the field list has grown PR over PR and positional
    call sites silently change meaning when a field lands in the
    middle.  The **only sanctioned serialization** of a config is the
    :meth:`to_dict` / :meth:`from_dict` round-trip through plain
    JSON-able dicts — it is how the parallel runner ships configs to
    spawn workers and how profiles embed them; anything else (pickled
    instances, positional tuples, ad-hoc field lists) breaks when a
    field is added.
    """

    page_size: int = 4096
    num_frames: int = 512
    table_slots_per_frame: int = 16
    batching: bool = True
    max_batch: int = 64
    eviction_policy: str = "clock"
    # Asynchronous page readahead (repro.readahead).  Off by default:
    # with the knob off the paging layer behaves exactly as before and
    # existing experiments are unchanged.
    readahead: bool = False
    readahead_window: int = 4        # initial window, pages
    readahead_min_window: int = 2
    readahead_max_window: int = 64
    readahead_max_streams: int = 64
    readahead_max_stride: int = 64
    # Runtime sanitizer (repro.analysis.sanitizer).  Off by default:
    # launches on the device are completely unchanged (same context
    # class, no wrapper generators); on, every warp is watched for
    # lockstep, torn-write, and pin-balance violations.
    sanitize: bool = False

    def to_dict(self) -> dict:
        """Plain JSON-able dict of every field (round-trips through
        :meth:`from_dict`)."""
        return {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "GPUfsConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys raise ``ValueError`` (a typo'd knob should fail
        loudly, not silently run with defaults)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown GPUfsConfig fields: {unknown}")
        return cls(**data)


def _reject_positional_init(cls):
    """Make positional GPUfsConfig construction a ``TypeError``.

    The deprecation cycle is over (positional args warned from PR 4);
    keyword construction and the ``to_dict``/``from_dict`` round-trip
    are the only supported ways to build a config.
    """
    generated = cls.__init__

    def __init__(self, *args, **kwargs):
        if args:
            raise TypeError(
                "positional GPUfsConfig arguments were removed after "
                "their deprecation cycle; pass fields by keyword "
                "(GPUfsConfig(num_frames=..., ...)) or use "
                "GPUfsConfig.from_dict(...)")
        generated(self, **kwargs)

    __init__.__wrapped__ = generated
    cls.__init__ = __init__
    return cls


_reject_positional_init(GPUfsConfig)


@dataclass
class PagingStats:
    """Fault and concurrency counters for one GPUfs instance."""

    minor_faults: int = 0
    major_faults: int = 0
    lost_insert_races: int = 0
    busy_waits: int = 0
    gmmap_calls: int = 0


class FaultFilter:
    """Transforms page contents on page-in / page-out.

    ``instructions_per_byte`` is charged to the faulting warp, modelling
    the GPU threads doing the transformation (e.g. decryption) in the
    fault handler.
    """

    instructions_per_byte: float = 0.0

    def page_in(self, data: np.ndarray, fpn: int) -> np.ndarray:
        return data

    def page_out(self, data: np.ndarray, fpn: int) -> np.ndarray:
        return data


class GPUfs:
    """One mounted GPU file system instance."""

    def __init__(self, device, host_fs: Optional[HostFileSystem] = None,
                 config: GPUfsConfig = GPUfsConfig(),
                 fault_filter: Optional[FaultFilter] = None):
        self.device = device
        self.host_fs = host_fs if host_fs is not None else HostFileSystem()
        self.config = config
        self.cache = PageCache(device, PageCacheConfig(
            page_size=config.page_size,
            num_frames=config.num_frames,
            table_slots_per_frame=config.table_slots_per_frame,
            eviction_policy=config.eviction_policy,
        ))
        self.batcher = TransferBatcher(device, config.page_size,
                                       max_batch=config.max_batch,
                                       enabled=config.batching)
        self.fault_filter = fault_filter
        self.stats = PagingStats()
        self._handles: dict[int, FileHandle] = {}
        if config.readahead:
            from repro.readahead import ReadaheadConfig, ReadaheadEngine
            self.readahead = ReadaheadEngine(
                self.cache, self.batcher, self.handle_for,
                config.page_size,
                ReadaheadConfig(
                    initial_window=config.readahead_window,
                    min_window=config.readahead_min_window,
                    max_window=config.readahead_max_window,
                    max_streams=config.readahead_max_streams,
                    max_stride=config.readahead_max_stride,
                ))
            self.cache.spec_listener = self.readahead
        else:
            self.readahead = None
        if config.sanitize:
            from repro.analysis.sanitizer import Sanitizer
            self.sanitizer = Sanitizer()
            device.sanitizer = self.sanitizer
        else:
            self.sanitizer = None
        # The generic warp-level syscall layer (repro.syscalls) rides
        # this instance's cache/batcher; imported lazily because the
        # syscalls package imports paging modules.
        from repro.syscalls.layer import SyscallLayer
        self.syscalls = SyscallLayer(self)
        if self.readahead is None:
            # madvise(WILLNEED) prefetches need the same completion
            # polling the readahead daemon gets from the cache.
            self.cache.spec_listener = self.syscalls
        profiler = telemetry_hooks.current()
        if profiler is not None:
            profiler.register("paging", self.stats)
            profiler.register("staging", self.batcher.stats)
            profiler.register("syscalls", self.syscalls.stats)
            if self.readahead is not None:
                profiler.register("readahead", self.readahead.stats)
            if self.sanitizer is not None:
                profiler.register("sanitizer", self.sanitizer.stats)
            # Level gauges for the time-series sampler: cache fill and
            # pinning, staging-ring pressure, readahead in flight.
            for component in (self.cache, self.batcher, self.readahead):
                if component is None:
                    continue
                for name, fn in component.gauges().items():
                    telemetry_hooks.gauge(name, fn)

    # ------------------------------------------------------------------
    # Host-side file management
    # ------------------------------------------------------------------
    def open(self, name: str, flags: int = O_RDONLY) -> int:
        """Open a host file for GPU access; returns its file id."""
        handle = self.host_fs.open(name, flags)
        self._handles[handle.fd] = handle
        return handle.fd

    def close(self, file_id: int) -> None:
        self._handles.pop(file_id)
        self.host_fs.close(file_id)

    def handle_for(self, file_id: int) -> FileHandle:
        return self._handles[file_id]

    def file_size(self, file_id: int) -> int:
        return self.handle_for(file_id).size()

    @property
    def page_size(self) -> int:
        return self.config.page_size

    # ------------------------------------------------------------------
    # Page fault handling (timed, called with the whole warp converged)
    # ------------------------------------------------------------------
    def handle_fault(self, ctx: WarpContext, file_id: int, fpn: int,
                     refs: int = 1, write: bool = False):
        """Timed: make page ``(file_id, fpn)`` resident and pinned.

        Adds ``refs`` to its reference count (the warp-aggregated count
        from the translation layer) and returns the frame's device
        address.  Minor faults are table hits; major faults transfer the
        page from the host.
        """
        ctx.begin_request()
        ctx.push_activity("fault_wait")
        try:
            return (yield from self._handle_fault(ctx, file_id, fpn,
                                                  refs, write))
        finally:
            ctx.pop_activity()
            ctx.end_request()

    def _handle_fault(self, ctx: WarpContext, file_id: int, fpn: int,
                      refs: int, write: bool):
        t0 = ctx.now
        if write and not self.handle_for(file_id).writable:
            # Fail at fault time: dirtying a shared frame through a
            # read-only fd would corrupt it for every other reader and
            # only surface when write-back finally throws.
            raise FileSystemError(
                f"write fault on read-only fd {file_id} "
                f"(page {fpn})")
        if self.readahead is not None:
            # Feed the stream detector and let the daemon issue
            # speculative page-ins for the pages ahead of this one.
            self.readahead.on_demand_access(ctx, file_id, fpn)
        while True:
            ctx.charge(MINOR_FAULT_INSTRS)
            entry = yield from self.cache.table.lookup(ctx, file_id, fpn)
            if entry is not None:
                was_inflight = entry.speculative and not entry.ready
                yield from self._wait_ready(ctx, entry)
                yield from self.cache.table.add_refs(ctx, entry, refs)
                if entry.removed:
                    # Eviction won the race for this page: undo and
                    # refault from scratch.
                    yield from self.cache.table.add_refs(ctx, entry, -refs)
                    continue
                self.stats.minor_faults += 1
                if entry.speculative:
                    if self.readahead is not None:
                        self.readahead.on_hit(ctx, entry,
                                              waited=was_inflight)
                    else:
                        # madvise(WILLNEED) prefetch with no engine:
                        # first demand touch promotes the frame.
                        entry.speculative = False
                        self.cache.promote_frame(entry.frame)
                    # The daemon lands raw file bytes; the page-in
                    # filter (e.g. decryption) runs on the GPU at first
                    # touch, charged to the touching warp.
                    yield from self._apply_filter_in(
                        ctx, self.cache.frame_addr(entry.frame), fpn)
                self.cache.touch(entry.frame)
                if write:
                    entry.dirty = True
                self._span(ctx, "minor_fault", t0, fpn)
                return self.cache.frame_addr(entry.frame)

            # Publish a busy entry first, then allocate the frame: this
            # way a page being faulted by many warps claims only one
            # frame, and the losers of the insert race simply wait for
            # the winner's transfer.
            fresh = PageTableEntry(file_id, fpn, frame=-1, ready=False)
            winner = yield from self.cache.table.insert(ctx, fresh)
            if winner is not fresh:
                was_inflight = winner.speculative and not winner.ready
                yield from self._wait_ready(ctx, winner)
                yield from self.cache.table.add_refs(ctx, winner, refs)
                if winner.removed:
                    yield from self.cache.table.add_refs(
                        ctx, winner, -refs)
                    continue
                self.stats.lost_insert_races += 1
                self.stats.minor_faults += 1
                if winner.speculative:
                    if self.readahead is not None:
                        self.readahead.on_hit(ctx, winner,
                                              waited=was_inflight)
                    else:
                        winner.speculative = False
                        self.cache.promote_frame(winner.frame)
                    yield from self._apply_filter_in(
                        ctx, self.cache.frame_addr(winner.frame), fpn)
                if write:
                    winner.dirty = True
                self._span(ctx, "minor_fault", t0, fpn)
                return self.cache.frame_addr(winner.frame)
            break

        self.stats.major_faults += 1
        ctx.charge(MAJOR_FAULT_EXTRA_INSTRS)
        frame = yield from self.cache.allocate_frame(ctx, self._writeback)
        fresh.frame = frame
        self.cache.bind(fresh)
        frame_addr = self.cache.frame_addr(frame)
        handle = self.handle_for(file_id)
        t_fetch = ctx.now
        yield from self.batcher.fetch(
            ctx, handle, fpn * self.page_size, self.page_size, frame_addr)
        self._span(ctx, "page_in", t_fetch, fpn)
        yield from self._apply_filter_in(ctx, frame_addr, fpn)
        fresh.ready = True
        yield from self.cache.table.add_refs(ctx, fresh, refs)
        if write:
            fresh.dirty = True
        self._span(ctx, "major_fault", t0, fpn)
        return frame_addr

    def release_page(self, ctx: WarpContext, file_id: int, fpn: int,
                     refs: int = 1, dirty: bool = False):
        """Timed: drop ``refs`` references from a resident page.

        ``dirty`` re-marks the page dirty *after* the caller's stores
        completed.  The fault path marks dirty at fault time — before
        the data lands — so a concurrent ``msync`` can flush the page
        and clear the bit mid-write; without the re-mark here the
        writer's bytes would silently never reach the host.
        """
        ctx.charge(MINOR_FAULT_INSTRS / 2)
        entry = yield from self.cache.table.lookup(ctx, file_id, fpn)
        if entry is None:
            raise RuntimeError(
                f"release of non-resident page ({file_id}, {fpn})")
        if dirty:
            entry.dirty = True
        yield from self.cache.table.add_refs(ctx, entry, -refs)

    # ------------------------------------------------------------------
    # gmmap: the original GPUfs page-granularity interface (§VI-C)
    # ------------------------------------------------------------------
    def gmmap(self, ctx: WarpContext, file_id: int, offset: int,
              prot: int = PROT_READ):
        """Timed: pin the page containing ``offset``; returns its device
        address adjusted for the intra-page offset.

        ``prot`` is a ``PROT_READ`` / ``PROT_WRITE`` bitmask: a
        ``PROT_WRITE`` mapping dirties the page (write-back on eviction
        or flush) and requires the fd to be writable."""
        if not prot & (PROT_READ | PROT_WRITE):
            raise ValueError(f"gmmap without PROT_READ/PROT_WRITE: "
                             f"{prot:#x}")
        self.stats.gmmap_calls += 1
        fpn, in_page = divmod(offset, self.page_size)
        frame_addr = yield from self.handle_fault(
            ctx, file_id, fpn, refs=1, write=bool(prot & PROT_WRITE))
        if ctx.sanitizer is not None:
            ctx.sanitizer.note_pin(ctx, file_id, fpn)
        return frame_addr + in_page

    def gmunmap(self, ctx: WarpContext, file_id: int, offset: int):
        """Timed: release the pin taken by :meth:`gmmap`."""
        fpn = offset // self.page_size
        yield from self.release_page(ctx, file_id, fpn, refs=1)
        if ctx.sanitizer is not None:
            ctx.sanitizer.note_unpin(ctx, file_id, fpn)

    # ------------------------------------------------------------------
    # Shutdown / maintenance
    # ------------------------------------------------------------------
    def flush(self, ctx: WarpContext):
        """Timed: write every dirty resident page back to the host —
        a whole-cache ``msync`` through the syscall layer."""
        return (yield from self.syscalls.msync(ctx))

    # ------------------------------------------------------------------
    def _span(self, ctx: WarpContext, kind: str, start: float,
              fpn: int) -> None:
        """Telemetry: one timeline span per paging event.  The guard
        keeps untraced launches from paying for the detail string."""
        if ctx.tracer is not None:
            ctx.trace_span(kind, start, ctx.now, f"fpn={fpn}")

    def _wait_ready(self, ctx: WarpContext, entry: PageTableEntry):
        if not entry.ready and entry.ready_at is not None:
            # In-flight readahead transfer: wait only for the remaining
            # time on the daemon timeline, not a whole page-in.
            t0 = ctx.now
            remaining = entry.ready_at - ctx.now
            if remaining > 0:
                yield from ctx.sleep(remaining, io_wait=True)
            entry.ready = True
            entry.ready_at = None
            self._span(ctx, "readahead_wait", t0, entry.fpn)
            return
        while not getattr(entry, "ready", True):
            self.stats.busy_waits += 1
            yield from ctx.sleep(SPIN_WAIT_CYCLES, io_wait=True)

    def _writeback(self, ctx: WarpContext, entry: PageTableEntry,
                   frame_addr: int):
        handle = self.handle_for(entry.file_id)
        data = yield from self._apply_filter_out(ctx, frame_addr, entry.fpn)
        t0 = ctx.now
        yield from self.batcher.writeback(
            ctx, handle, entry.fpn * self.page_size, frame_addr,
            self.page_size, data=data)
        self.syscalls.stats.writeback_bytes += self.page_size
        self._span(ctx, "page_out", t0, entry.fpn)

    def _apply_filter_in(self, ctx: WarpContext, frame_addr: int, fpn: int):
        if self.fault_filter is None:
            return
        t0 = ctx.now
        raw = ctx.memory.read(frame_addr, self.page_size).copy()
        ctx.memory.write(frame_addr,
                         self.fault_filter.page_in(raw, fpn))
        cost = self.fault_filter.instructions_per_byte * self.page_size
        if cost:
            yield from ctx.compute(cost / ctx.warp_size)
        self._span(ctx, "filter_in", t0, fpn)

    def _apply_filter_out(self, ctx: WarpContext, frame_addr: int, fpn: int):
        """Returns the bytes to write to the host (None = frame as-is)."""
        if self.fault_filter is None:
            return None
        t0 = ctx.now
        raw = ctx.memory.read(frame_addr, self.page_size).copy()
        transformed = self.fault_filter.page_out(raw, fpn)
        cost = self.fault_filter.instructions_per_byte * self.page_size
        if cost:
            yield from ctx.compute(cost / ctx.warp_size)
        self._span(ctx, "filter_out", t0, fpn)
        return transformed
