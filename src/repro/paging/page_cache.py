"""The GPU page cache: frames, pinning, and eviction.

Frames live in a contiguous region of GPU global memory.  The cache
enforces the paper's central invariant (§III-B): **a page with a positive
reference count is *active* — its virtual-to-physical mapping is fixed
and it can never be evicted.**  This is what makes it safe for apointers
to cache translations in hardware registers with no coherence protocol.

Eviction uses a clock sweep over unreferenced frames; dirty frames are
written back to the backing store before reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.paging.page_table import PageTable, PageTableEntry
from repro.paging.policies import make_policy


class PageCacheFullError(Exception):
    """All frames are pinned by active pages — the cache is clogged.

    The paper's unlink heuristic exists precisely to keep the number of
    non-evictable pages low (§III-B); hitting this error means every
    frame is referenced by some linked apointer.
    """


@dataclass(frozen=True)
class PageCacheConfig:
    """Geometry of the page cache."""

    page_size: int = 4096
    num_frames: int = 512
    table_slots_per_frame: int = 16
    eviction_policy: str = "clock"

    def __post_init__(self):
        if self.page_size & (self.page_size - 1):
            raise ValueError("page_size must be a power of two")
        if self.num_frames <= 0:
            raise ValueError("num_frames must be positive")


class PageCache:
    """Frame allocator and eviction policy over device memory."""

    def __init__(self, device, config: PageCacheConfig):
        self.config = config
        self.device = device
        self.base = device.alloc(config.num_frames * config.page_size)
        self.table = PageTable(device, config.num_frames,
                               config.table_slots_per_frame)
        self._free: list[int] = list(range(config.num_frames - 1, -1, -1))
        self._owner: list[Optional[PageTableEntry]] = (
            [None] * config.num_frames)
        self.policy = make_policy(config.eviction_policy,
                                  config.num_frames)
        self.evictions = 0
        self.writebacks = 0
        #: Optional readahead engine: notified (``on_spec_evicted``)
        #: when a speculative frame is evicted before its first touch.
        self.spec_listener = None

    # ------------------------------------------------------------------
    def frame_addr(self, frame: int) -> int:
        """Device address of a frame's first byte."""
        if not 0 <= frame < self.config.num_frames:
            raise ValueError(f"bad frame {frame}")
        return self.base + frame * self.config.page_size

    @property
    def frames_in_use(self) -> int:
        return self.config.num_frames - len(self._free)

    def pinned_frames(self) -> int:
        return sum(1 for e in self._owner
                   if e is not None and e.refcount > 0)

    def gauges(self) -> dict:
        """Instantaneous-level probes for the time-series sampler
        (read at window close; never mutate cache state)."""
        total = self.config.num_frames
        return {
            "page_cache.frames_used":
                lambda: float(self.frames_in_use),
            "page_cache.pinned_frames":
                lambda: float(self.pinned_frames()),
            "page_cache.occupancy":
                lambda: self.frames_in_use / total,
        }

    # ------------------------------------------------------------------
    #: Spin interval while every frame is transiently busy/pinned.
    ALLOC_RETRY_CYCLES = 400.0
    #: Retries before declaring the cache clogged for good.
    ALLOC_MAX_RETRIES = 64

    def allocate_frame(self, ctx, writeback):
        """Timed: get a free frame, evicting an inactive page if needed.

        When every frame is momentarily ineligible (pinned or mid
        page-in) the allocator waits and retries — concurrent faults
        briefly overcommit a small cache.  Only a *persistent* clog
        (every frame referenced by linked apointers) raises
        :class:`PageCacheFullError`.

        ``writeback`` is a generator function ``writeback(ctx, entry,
        frame_addr)`` invoked for dirty victims.  Returns the frame
        index.
        """
        for attempt in range(self.ALLOC_MAX_RETRIES):
            if self._free:
                return self._free.pop()
            victim = yield from self._evict_one(ctx, writeback)
            if victim is not None:
                return victim
            yield from ctx.sleep(self.ALLOC_RETRY_CYCLES)
        raise PageCacheFullError(
            f"all {self.config.num_frames} frames pinned "
            "(refcounts > 0)")

    def _evict_one(self, ctx, writeback):
        # Let the readahead daemon complete any finished speculative
        # transfers first: an in-flight frame (ready=False) is not
        # evictable, and without this poll a demand allocation could
        # starve retrying against frames nobody else will ever flip.
        if self.spec_listener is not None:
            self.spec_listener.poll(ctx.now)
        # Untouched speculative (readahead) frames are sacrificed
        # before any demand page, whatever the policy's order.
        if self.policy.low_priority:
            frame = yield from self._evict_scan(ctx, writeback,
                                                low_only=True)
            if frame is not None:
                return frame
        return (yield from self._evict_scan(ctx, writeback,
                                            low_only=False))

    def _evict_scan(self, ctx, writeback, low_only: bool):
        for frame in self.policy.candidates():
            if low_only and frame not in self.policy.low_priority:
                continue
            entry = self._owner[frame]
            if entry is None or entry.refcount > 0 or not entry.ready:
                continue
            # Candidate victim.  The final refcount check happens under
            # the bucket lock inside remove_if_unreferenced, closing the
            # race with a fault handler re-referencing the page.
            removed = yield from self.table.remove_if_unreferenced(
                ctx, entry)
            if not removed:
                continue
            # Now unreachable: no linked apointer can hold its mapping
            # (the paper's fixed-mapping guarantee), so the frame can be
            # flushed and reused safely.
            if entry.dirty:
                self.writebacks += 1
                yield from writeback(ctx, entry, self.frame_addr(frame))
                entry.dirty = False
            self._retire(entry, frame)
            return frame
        return None

    def _retire(self, entry, frame: int) -> None:
        """Common bookkeeping once ``entry`` lost its frame."""
        self._owner[frame] = None
        self.evictions += 1
        self.policy.set_low_priority(frame, False)
        if entry.speculative and self.spec_listener is not None:
            self.spec_listener.on_spec_evicted(entry)

    def bind(self, entry: PageTableEntry) -> None:
        """Record that ``entry`` now owns its frame."""
        self._owner[entry.frame] = entry
        self.policy.on_bind(entry.frame)

    def touch(self, frame: int) -> None:
        """A resident page was referenced (eviction-policy feedback)."""
        self.policy.on_touch(frame)

    def release_frame(self, frame: int) -> None:
        """Return a never-bound frame to the free list (insert raced)."""
        self._owner[frame] = None
        self._free.append(frame)
        self.policy.set_low_priority(frame, False)
        self.policy.on_release(frame)

    # ------------------------------------------------------------------
    # Speculative (readahead) frames
    # ------------------------------------------------------------------
    def mark_speculative(self, frame: int) -> None:
        """Flag a freshly bound readahead frame as low priority."""
        self.policy.set_low_priority(frame, True)

    def promote_frame(self, frame: int) -> None:
        """First demand touch of a readahead frame: normal priority."""
        self.policy.set_low_priority(frame, False)
        self.policy.on_touch(frame)

    def allocate_speculative(self, protect=frozenset()) -> Optional[int]:
        """Non-blocking, untimed frame grab for the readahead daemon.

        Takes a free frame, or reclaims an *untouched speculative*
        frame (stale readahead is fair game), but never evicts a demand
        page and never waits — the daemon backs off instead.  Returns
        ``None`` under pressure.

        ``protect`` is a set of ``(file_id, fpn)`` keys exempt from
        speculative reclaim — the engine passes the page the
        triggering fault is about to consume and the issuing stream's
        outstanding pages, so readahead never cannibalises its own
        imminent hits to read further ahead.
        """
        if self._free:
            return self._free.pop()
        for frame in self.policy.candidates():
            entry = self._owner[frame]
            if (entry is None or not entry.speculative
                    or entry.refcount > 0 or not entry.ready
                    or entry.key in protect):
                continue
            if not self.table.host_remove(entry):
                # Deferred: bucket lock held (a warp is mid-fault on
                # the page) or the entry turned dirty — host_remove
                # refuses both, so a promoted-and-written page can
                # never be silently reclaimed here.
                continue
            self._retire(entry, frame)
            return frame
        return None

    def discard_frame(self, entry: PageTableEntry) -> None:
        """Drop a clean, unreferenced page whose table entry was just
        removed (``madvise(DONTNEED)``, ``ftruncate``): the frame goes
        back on the free list."""
        frame = entry.frame
        self._retire(entry, frame)
        self._free.append(frame)
        self.policy.on_release(frame)
