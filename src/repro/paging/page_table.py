"""Concurrent page-table hash table.

One hash table indexes the pages of *all* files in the page cache (§V):
keys are ``(file_id, file_page_number)`` pairs, values are page-cache
frame numbers plus a reference count.  Following the paper:

* the table has **16x more slots than frames**, which keeps the collision
  (probe) rate around 3 % at full cache occupancy;
* **reads are lock-free** — a lookup costs one global-memory load per
  probed slot;
* **insertions and removals take a per-bucket lock** (fine-grained:
  buckets are groups of slots sharing one lock).

The table is *functionally* a Python open-addressing table; every probe,
insert and refcount update also charges the simulated GPU for the global
memory traffic and atomics the real data structure would incur, using a
real device-memory allocation for its slot addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.gpu.instructions import TimedLock
from repro.gpu.kernel import WarpContext

ENTRY_BYTES = 16        # key word + value word, as packed on the GPU
HASH_COST_INSTRS = 6    # integer hash of (file_id, fpn)


class _Tombstone:
    """Marks a removed slot.  Removal must not relocate entries — a
    lock-free reader walking the probe chain concurrently would miss
    them — so removed slots become tombstones that probes skip."""

    def __repr__(self):  # pragma: no cover
        return "<tombstone>"


TOMBSTONE = _Tombstone()


@dataclass
class PageTableEntry:
    """One resident page: its frame and reference count."""

    file_id: int
    fpn: int
    frame: int
    refcount: int = 0
    dirty: bool = False
    ready: bool = True   # False while the page-in transfer is in flight
    removed: bool = False  # set (under the bucket lock) by eviction
    # Readahead state: a speculative page was brought in by the
    # readahead daemon and not yet touched by any warp; ``ready_at``
    # is the daemon-timeline completion time of its in-flight transfer
    # (None once the data has landed).
    speculative: bool = False
    ready_at: Optional[float] = None

    @property
    def key(self) -> tuple[int, int]:
        return (self.file_id, self.fpn)


class PageTable:
    """Open-addressing concurrent hash table with bucket locks."""

    def __init__(self, device, nframes: int, slots_per_frame: int = 16,
                 slots_per_lock: int = 8):
        self.nslots = max(16, nframes * slots_per_frame)
        self.base = device.alloc(self.nslots * ENTRY_BYTES)
        self._slots: list[Optional[PageTableEntry]] = [None] * self.nslots
        self._index: dict[tuple[int, int], int] = {}
        nlocks = max(1, self.nslots // slots_per_lock)
        self._locks = [TimedLock(f"pt-bucket-{i}") for i in range(nlocks)]
        self._slots_per_lock = slots_per_lock
        # Metrics.
        self.lookups = 0
        self.probes = 0
        self.inserts = 0
        self.removes = 0
        #: Untimed removals refused because the key's bucket lock was
        #: held (the ``ra_deferred``-style defer pattern) or the entry
        #: was dirty — either way the caller must not drop the page.
        self.deferred_removes = 0

    # ------------------------------------------------------------------
    # Pure helpers (no simulated time)
    # ------------------------------------------------------------------
    def _hash(self, file_id: int, fpn: int) -> int:
        h = (file_id * 0x9E3779B97F4A7C15 + fpn * 0xBF58476D1CE4E5B9)
        return (h ^ (h >> 31)) % self.nslots

    def _slot_addr(self, slot: int) -> int:
        return self.base + slot * ENTRY_BYTES

    def _lock_for(self, slot: int) -> TimedLock:
        return self._locks[(slot // self._slots_per_lock) % len(self._locks)]

    def _probe_chain(self, file_id: int, fpn: int) -> Iterator[int]:
        slot = self._hash(file_id, fpn)
        for _ in range(self.nslots):
            yield slot
            slot = (slot + 1) % self.nslots

    def get(self, file_id: int, fpn: int) -> Optional[PageTableEntry]:
        """Functional lookup without timing (host-side / test use)."""
        slot = self._index.get((file_id, fpn))
        return None if slot is None else self._slots[slot]

    def entries(self) -> list[PageTableEntry]:
        """All resident entries (functional, host-side / test use)."""
        return [self._slots[s] for s in self._index.values()]

    def host_insert(self, entry: PageTableEntry) -> Optional[PageTableEntry]:
        """Untimed insert by the host readahead daemon.

        The daemon updates the table from the host side (its RPC cost
        is folded into the speculative transfer time), so no warp is
        charged.  If the key is already present the existing entry wins
        and the caller's is discarded, mirroring :meth:`insert`.

        Returns ``None`` (insert deferred) when the key's bucket lock
        is held: a warp may be mid-:meth:`insert` of this very key —
        its entry is unpublished until the scan completes, so racing
        past the lock could create two live entries for one key.  The
        daemon backs off and retries on a later access instead.
        """
        if self._lock_for(self._hash(entry.file_id,
                                     entry.fpn)).holder is not None:
            return None
        existing = self.get(entry.file_id, entry.fpn)
        if existing is not None:
            return existing
        free_slot = None
        for slot in self._probe_chain(entry.file_id, entry.fpn):
            current = self._slots[slot]
            if current is TOMBSTONE:
                if free_slot is None:
                    free_slot = slot
                continue
            if current is None:
                if free_slot is None:
                    free_slot = slot
                break
        if free_slot is None:
            raise RuntimeError("page table full")
        self._slots[free_slot] = entry
        self._index[entry.key] = free_slot
        self.inserts += 1
        return entry

    def host_remove(self, entry: PageTableEntry) -> bool:
        """Untimed removal by the host daemon (readahead reclaim,
        ``madvise(DONTNEED)``).

        Only succeeds on the exact entry while it is ready and
        unreferenced — the same eligibility the timed
        :meth:`remove_if_unreferenced` enforces, since the daemon must
        never yank a page out from under a faulting warp.  Two further
        refusals (both counted in ``deferred_removes``):

        * the key's bucket lock is held — a warp may be mid-fault on
          this very page, about to take a reference; removing under it
          would evict the page it is installing (mirrors the
          :meth:`host_insert` defer);
        * the entry is **dirty** — the untimed path cannot write the
          page back, so removing it would silently drop the write.
          The caller must defer to the timed eviction path (which
          flushes dirty victims) or flush first.
        """
        if self._lock_for(self._hash(entry.file_id,
                                     entry.fpn)).holder is not None:
            self.deferred_removes += 1
            return False
        if entry.dirty:
            self.deferred_removes += 1
            return False
        slot = self._index.get(entry.key)
        current = self._slots[slot] if slot is not None else None
        if current is not entry or entry.refcount > 0 or not entry.ready:
            return False
        entry.removed = True
        self._slots[slot] = TOMBSTONE
        del self._index[entry.key]
        self.removes += 1
        return True

    @property
    def load_factor(self) -> float:
        return len(self._index) / self.nslots

    def collision_rate(self) -> float:
        """Fraction of lookups that needed more than one probe."""
        if self.lookups == 0:
            return 0.0
        return (self.probes - self.lookups) / self.lookups

    # ------------------------------------------------------------------
    # Timed operations (kernel-coroutine generators)
    # ------------------------------------------------------------------
    def lookup(self, ctx: WarpContext, file_id: int, fpn: int):
        """Lock-free timed lookup; returns the entry or ``None``."""
        ctx.charge(HASH_COST_INSTRS, chain=HASH_COST_INSTRS)
        self.lookups += 1
        for slot in self._probe_chain(file_id, fpn):
            self.probes += 1
            yield from ctx.load_scalar(self._slot_addr(slot), "u8")
            entry = self._slots[slot]
            if entry is None:
                return None
            if entry is TOMBSTONE:
                continue
            if entry.key == (file_id, fpn):
                return entry
        return None

    def insert(self, ctx: WarpContext, entry: PageTableEntry):
        """Timed insert under the bucket lock.

        Returns the winning entry: if another warp inserted the same key
        while we waited for the lock, that entry is returned instead and
        the caller's is discarded (the standard concurrent-insert race).
        """
        home = self._hash(entry.file_id, entry.fpn)
        lock = self._lock_for(home)
        yield from ctx.lock(lock)
        ctx.charge(HASH_COST_INSTRS)
        while True:
            winner = None
            free_slot = None
            for slot in self._probe_chain(entry.file_id, entry.fpn):
                self.probes += 1
                yield from ctx.load_scalar(self._slot_addr(slot), "u8")
                existing = self._slots[slot]
                if existing is TOMBSTONE:
                    if free_slot is None:
                        free_slot = slot
                    continue
                if existing is None:
                    if free_slot is None:
                        free_slot = slot
                    break
                if existing.key == entry.key:
                    winner = existing
                    break
            if winner is not None:
                yield from ctx.unlock(lock)
                return winner
            if free_slot is None:
                yield from ctx.unlock(lock)
                raise RuntimeError("page table full")
            # The probe loads yielded, so the host readahead daemon may
            # have run meanwhile.  host_insert defers same-key inserts
            # while our lock is held, but a *different* key's chain can
            # land in the slot we picked — re-validate before
            # publishing and rescan if it was taken.
            if self._slots[free_slot] is not None \
                    and self._slots[free_slot] is not TOMBSTONE:
                continue
            self._slots[free_slot] = entry
            self._index[entry.key] = free_slot
            self.inserts += 1
            yield from ctx.store_scalar(
                self._slot_addr(free_slot),
                entry.frame & 0xFFFFFFFFFFFFFFFF, "u8")
            yield from ctx.unlock(lock)
            return entry

    def remove(self, ctx: WarpContext, file_id: int, fpn: int):
        """Timed removal under the bucket lock (used by eviction)."""
        key = (file_id, fpn)
        slot = self._index.get(key)
        if slot is None:
            return False
        lock = self._lock_for(self._hash(file_id, fpn))
        yield from ctx.lock(lock)
        slot = self._index.get(key)
        if slot is None:
            yield from ctx.unlock(lock)
            return False
        self._slots[slot] = TOMBSTONE
        del self._index[key]
        self.removes += 1
        yield from ctx.store_scalar(self._slot_addr(slot), 0, "u8")
        yield from ctx.unlock(lock)
        return True

    def remove_if_unreferenced(self, ctx: WarpContext,
                               victim: PageTableEntry):
        """Timed: atomically evict ``victim`` if it is still resident,
        ready, and unreferenced.

        All three conditions are re-checked under the bucket lock, and
        the check is by *entry identity*, not key: between the eviction
        scan and lock acquisition the page may have been removed and a
        fresh (possibly in-flight) entry inserted under the same key —
        removing that one by key would yank a page out from under its
        faulting warp.  The victim is marked ``removed`` so a concurrent
        ref-taker can detect that it lost and retry.
        """
        key = victim.key
        lock = self._lock_for(self._hash(victim.file_id, victim.fpn))
        yield from ctx.lock(lock)
        slot = self._index.get(key)
        entry = self._slots[slot] if slot is not None else None
        if (entry is not victim or entry.refcount > 0
                or not entry.ready):
            yield from ctx.unlock(lock)
            return False
        entry.removed = True
        self._slots[slot] = TOMBSTONE
        del self._index[key]
        self.removes += 1
        yield from ctx.store_scalar(self._slot_addr(slot), 0, "u8")
        yield from ctx.unlock(lock)
        return True

    def add_refs(self, ctx: WarpContext, entry: PageTableEntry, refs: int):
        """Timed atomic refcount adjustment (may be negative)."""
        slot = self._index.get(entry.key)
        addr = self._slot_addr(slot if slot is not None else 0) + 8
        yield from ctx.atomic_add(addr, refs)
        entry.refcount += refs
        if entry.refcount < 0:
            raise RuntimeError(
                f"negative refcount for page {entry.key}: {entry.refcount}")
        return entry.refcount

