"""Eviction policies for the page cache.

The paper's page cache needs *some* replacement policy for unreferenced
pages (§V mentions swapping for large files without prescribing one).
The default is a clock sweep; this module provides alternatives so the
choice can be studied (see ``benchmarks/bench_ablations.py``):

* :class:`ClockPolicy` — cyclic scan, evict the first eligible frame;
* :class:`FifoPolicy` — evict in frame-allocation order;
* :class:`LruPolicy` — least-recently-*referenced* first (touch events
  come from the fault path, the only place software can observe reuse);
* :class:`RandomPolicy` — uniform random eligible frame (seeded).

A policy only *orders candidates*; eligibility (refcount == 0, ready,
not removed) is still enforced by the page cache, and the final check
happens under the bucket lock.
"""

from __future__ import annotations

import random
from typing import Iterator


class EvictionPolicy:
    """Strategy interface: propose victim frames, newest info first.

    Frames can additionally be marked *low priority* (speculative
    readahead pages that no warp has touched yet): every policy prefers
    evicting those before any normal frame, in its own candidate order.
    The page cache clears the mark when the page is promoted on first
    touch, evicted, or its frame is released.
    """

    name = "?"

    def __init__(self, num_frames: int):
        self.num_frames = num_frames
        self.low_priority: set[int] = set()

    def candidates(self) -> Iterator[int]:
        """Yield frame indices in preferred eviction order."""
        raise NotImplementedError

    def set_low_priority(self, frame: int, low: bool) -> None:
        """Mark/unmark ``frame`` as preferred for eviction."""
        if low:
            self.low_priority.add(frame)
        else:
            self.low_priority.discard(frame)

    def on_bind(self, frame: int) -> None:
        """A page was installed into ``frame``."""

    def on_touch(self, frame: int) -> None:
        """A resident page in ``frame`` was referenced (fault path)."""

    def on_release(self, frame: int) -> None:
        """``frame`` returned to the free list unbound."""


class ClockPolicy(EvictionPolicy):
    """Cyclic sweep starting after the previous victim."""

    name = "clock"

    def __init__(self, num_frames: int):
        super().__init__(num_frames)
        self._hand = 0

    def candidates(self) -> Iterator[int]:
        n = self.num_frames
        for i in range(n):
            frame = (self._hand + i) % n
            yield frame
        # advance the hand past the last candidate we proposed

    def on_bind(self, frame: int) -> None:
        self._hand = (frame + 1) % self.num_frames


class FifoPolicy(EvictionPolicy):
    """Evict pages in the order their frames were (re)bound."""

    name = "fifo"

    def __init__(self, num_frames: int):
        super().__init__(num_frames)
        self._order: list[int] = []

    def candidates(self) -> Iterator[int]:
        # A rebind refreshes a frame's position, so only the *last*
        # occurrence in the log counts.
        ordered = self._last_occurrence_order()
        yield from ordered
        seen = set(ordered)
        for frame in range(self.num_frames):
            if frame not in seen:
                yield frame

    def on_bind(self, frame: int) -> None:
        self._order.append(frame)
        if len(self._order) > 4 * self.num_frames:
            self._order = self._last_occurrence_order()

    def _last_occurrence_order(self) -> list[int]:
        seen: set[int] = set()
        kept: list[int] = []
        for frame in reversed(self._order):
            if frame not in seen:
                seen.add(frame)
                kept.append(frame)
        kept.reverse()
        return kept


class LruPolicy(EvictionPolicy):
    """Least recently referenced first (touches from the fault path)."""

    name = "lru"

    def __init__(self, num_frames: int):
        super().__init__(num_frames)
        self._stamp = 0
        self._last: dict[int, int] = {}

    def _tick(self) -> int:
        self._stamp += 1
        return self._stamp

    def candidates(self) -> Iterator[int]:
        ordered = sorted(range(self.num_frames),
                         key=lambda f: self._last.get(f, -1))
        yield from ordered

    def on_bind(self, frame: int) -> None:
        self._last[frame] = self._tick()

    def on_touch(self, frame: int) -> None:
        self._last[frame] = self._tick()

    def on_release(self, frame: int) -> None:
        self._last.pop(frame, None)


class RandomPolicy(EvictionPolicy):
    """Uniformly random eligible frame (deterministic via seed)."""

    name = "random"

    def __init__(self, num_frames: int, seed: int = 0):
        super().__init__(num_frames)
        self._rng = random.Random(seed)

    def candidates(self) -> Iterator[int]:
        frames = list(range(self.num_frames))
        self._rng.shuffle(frames)
        yield from frames


POLICIES = {
    "clock": ClockPolicy,
    "fifo": FifoPolicy,
    "lru": LruPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, num_frames: int) -> EvictionPolicy:
    try:
        return POLICIES[name](num_frames)
    except KeyError:
        raise ValueError(
            f"unknown eviction policy {name!r}; "
            f"choose from {sorted(POLICIES)}") from None
