"""Host-to-GPU transfer staging and batching.

With small 4 KB pages, the fixed per-transaction cost of a PCIe DMA
dominates the transfer itself.  GPUfs therefore batches: "upon every
request to read from a file, the system aggregates several host-to-GPU
transfers on the host, and then issues a single call to copy data into
the GPU staging area" (§V).  GPU threads then move the bytes from the
staging area into their page-cache frames.

The batcher models that aggregation window: a fetch that arrives while a
batch window is open joins it and pays only its share of PCIe bandwidth;
the first fetch of a window pays the fixed transaction cost too.  The
copy from staging to the frame is a real device-to-device move — the
fetched bytes land in a staging slot and a warp-wide timed copy carries
them into the page frame.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.kernel import WarpContext


@dataclass
class BatcherStats:
    transfers: int = 0
    batches: int = 0
    bytes_moved: int = 0

    def mean_batch_size(self) -> float:
        return self.transfers / self.batches if self.batches else 0.0


class TransferBatcher:
    """Aggregates concurrent host->GPU page transfers into DMA batches."""

    def __init__(self, device, page_size: int, max_batch: int = 32,
                 enabled: bool = True,
                 aggregation_cycles: float = 4000.0):
        self._device = device
        self.page_size = page_size
        self.max_batch = max_batch
        self.enabled = enabled
        # The host daemon keeps collecting requests for this long after
        # a batch opens before issuing the DMA (§V batching).
        self.aggregation_cycles = aggregation_cycles
        self.stats = BatcherStats()
        # Staging ring: enough slots that an in-flight copy can never be
        # clobbered by later fetches reusing its slot.
        self.num_slots = max_batch * 4
        self.staging_base = device.alloc(self.num_slots * page_size)
        self._next_slot = 0
        self._window_end = -1.0
        self._window_count = 0

    @property
    def spec(self):
        """The device's current spec (respects later overrides)."""
        return self._device.spec

    def fetch(self, ctx: WarpContext, handle, file_offset: int,
              nbytes: int, dst_addr: int):
        """Timed: read ``nbytes`` at ``file_offset`` of ``handle`` into
        device memory at ``dst_addr``, via the staging area."""
        if nbytes > self.page_size:
            raise ValueError("fetch larger than a page")
        data = handle.pread(file_offset, nbytes)
        self.stats.transfers += 1
        self.stats.bytes_moved += nbytes
        joined = (self.enabled
                  and ctx.now <= self._window_end
                  and self._window_count < self.max_batch)
        if joined:
            # Ride the batch the host daemon is already assembling: no
            # host RPC handling cost, just DMA latency and bandwidth.
            self._window_count += 1
            self._window_end += nbytes / self.spec.pcie_bytes_per_cycle()
            yield from ctx.pcie(nbytes, to_device=True, latency_free=True)
            yield from ctx.sleep(self.spec.pcie_latency_cycles(),
                                 io_wait=True)
        else:
            # Open a new batch: pay the host daemon's per-RPC handling
            # (serialises on the host CPU — the Figure 1 bottleneck),
            # then the DMA itself.
            self.stats.batches += 1
            self._window_count = 1
            self._window_end = (ctx.now + self.aggregation_cycles
                                + self.spec.pcie_latency_cycles()
                                + nbytes / self.spec.pcie_bytes_per_cycle())
            yield from ctx.host_compute(self.spec.host_rpc_s)
            yield from ctx.pcie(nbytes, to_device=True)
        slot_addr = self._claim_slot(ctx, data, nbytes)
        yield from self._device_copy(ctx, slot_addr, dst_addr, nbytes)

    def writeback(self, ctx: WarpContext, handle, file_offset: int,
                  src_addr: int, nbytes: int, data=None):
        """Timed: flush a dirty page back to the host file.

        ``data`` overrides the frame contents — used when a page-out
        filter transformed the bytes without touching the resident copy.
        """
        if data is None:
            data = ctx.memory.read(src_addr, nbytes).copy()
        handle.pwrite(file_offset, data)
        self.stats.transfers += 1
        self.stats.bytes_moved += nbytes
        yield from ctx.pcie(nbytes, to_device=False)

    # ------------------------------------------------------------------
    def _claim_slot(self, ctx: WarpContext, data: np.ndarray,
                    nbytes: int) -> int:
        slot = self._next_slot
        self._next_slot = (self._next_slot + 1) % self.num_slots
        addr = self.staging_base + slot * self.page_size
        if data.size < nbytes:
            padded = np.zeros(nbytes, dtype=np.uint8)
            padded[:data.size] = data
            data = padded
        ctx.memory.write(addr, data)  # the DMA landing in staging
        return addr

    def _device_copy(self, ctx: WarpContext, src_addr: int,
                     dst_addr: int, nbytes: int):
        """Warp-wide timed copy: staging slot -> page frame."""
        width = 8
        step = width * ctx.warp_size
        for off in range(0, nbytes, step):
            lane_off = off + ctx.lane * width
            mask = lane_off + width <= nbytes
            ctx.charge(4)
            vals = yield from ctx.load(src_addr + lane_off, "u8", mask=mask)
            yield from ctx.store(dst_addr + lane_off, vals, "u8", mask=mask)
        tail = nbytes % width
        if tail:
            base = nbytes - tail
            ctx.memory.write(
                dst_addr + base, ctx.memory.read(src_addr + base, tail))
