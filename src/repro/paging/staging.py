"""Host-to-GPU transfer staging and batching.

With small 4 KB pages, the fixed per-transaction cost of a PCIe DMA
dominates the transfer itself.  GPUfs therefore batches: "upon every
request to read from a file, the system aggregates several host-to-GPU
transfers on the host, and then issues a single call to copy data into
the GPU staging area" (§V).  GPU threads then move the bytes from the
staging area into their page-cache frames.

The batcher models that aggregation window: a fetch that arrives while a
batch window is open joins it and pays only its share of PCIe bandwidth;
the first fetch of a window pays the fixed transaction cost too.  The
copy from staging to the frame is a real device-to-device move — the
fetched bytes land in a staging slot and a warp-wide timed copy carries
them into the page frame.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.kernel import WarpContext


@dataclass
class BatcherStats:
    transfers: int = 0
    batches: int = 0
    bytes_moved: int = 0
    #: Of ``transfers``, how many were speculative (readahead daemon).
    speculative: int = 0
    #: Times a fetch had to wait for a staging slot to free up.
    slot_waits: int = 0

    def mean_batch_size(self) -> float:
        return self.transfers / self.batches if self.batches else 0.0


class TransferBatcher:
    """Aggregates concurrent host->GPU page transfers into DMA batches."""

    def __init__(self, device, page_size: int, max_batch: int = 32,
                 enabled: bool = True,
                 aggregation_cycles: float = 4000.0):
        self._device = device
        self.page_size = page_size
        self.max_batch = max_batch
        self.enabled = enabled
        # The host daemon keeps collecting requests for this long after
        # a batch opens before issuing the DMA (§V batching).
        self.aggregation_cycles = aggregation_cycles
        self.stats = BatcherStats()
        # Staging ring: sized so slot reuse is rare, with per-slot
        # busy tracking so an in-flight copy is never clobbered even
        # when concurrent fetches outnumber the slots.
        self.num_slots = max_batch * 4
        self.staging_base = device.alloc(self.num_slots * page_size)
        self._next_slot = 0
        self._slot_busy = [False] * self.num_slots
        self._window_end = -1.0
        self._window_count = 0

    #: Spin interval while every staging slot holds an in-flight copy.
    SLOT_RETRY_CYCLES = 400.0

    @property
    def spec(self):
        """The device's current spec (respects later overrides)."""
        return self._device.spec

    def ring_utilization(self) -> float:
        """Fraction of staging-ring slots holding an in-flight copy."""
        return sum(self._slot_busy) / self.num_slots

    def gauges(self) -> dict:
        """Instantaneous-level probes for the time-series sampler."""
        return {
            "staging.ring_utilization": self.ring_utilization,
            "staging.busy_slots":
                lambda: float(sum(self._slot_busy)),
        }

    def fetch(self, ctx: WarpContext, handle, file_offset: int,
              nbytes: int, dst_addr: int):
        """Timed: read ``nbytes`` at ``file_offset`` of ``handle`` into
        device memory at ``dst_addr``, via the staging area."""
        if nbytes > self.page_size:
            raise ValueError("fetch larger than a page")
        data = handle.pread(file_offset, nbytes)
        self.stats.transfers += 1
        self.stats.bytes_moved += nbytes
        t0 = ctx.now
        joined = (self.enabled
                  and ctx.now <= self._window_end
                  and self._window_count < self.max_batch)
        if joined:
            # Ride the batch the host daemon is already assembling: no
            # host RPC handling cost, just DMA latency and bandwidth.
            self._window_count += 1
            self._window_end += nbytes / self.spec.pcie_bytes_per_cycle()
            yield from ctx.pcie(nbytes, to_device=True, latency_free=True)
            yield from ctx.sleep(self.spec.pcie_latency_cycles(),
                                 io_wait=True)
        else:
            # Open a new batch: pay the host daemon's per-RPC handling
            # (serialises on the host CPU — the Figure 1 bottleneck),
            # then the DMA itself.
            self.stats.batches += 1
            self._window_count = 1
            self._window_end = (ctx.now + self.aggregation_cycles
                                + self.spec.pcie_latency_cycles()
                                + nbytes / self.spec.pcie_bytes_per_cycle())
            yield from ctx.host_compute(self.spec.host_rpc_s)
            yield from ctx.pcie(nbytes, to_device=True)
        slot = yield from self._claim_slot(ctx, data, nbytes)
        try:
            yield from self._device_copy(ctx, self._slot_addr(slot),
                                         dst_addr, nbytes)
        finally:
            self._slot_busy[slot] = False
        if ctx.tracer is not None:
            ctx.trace_span("pcie_staging", t0, ctx.now,
                           f"bytes={nbytes} "
                           f"{'joined' if joined else 'batch'}")

    def fetch_async(self, now: float, handle, file_offset: int,
                    nbytes: int, dst_addr: int) -> float:
        """Speculative daemon-side fetch; returns its completion time.

        Called by the readahead engine: no warp is charged — the cost
        lives entirely in the returned ``done_at`` timestamp.  The
        request shares the demand path's batching window, so
        speculative and demand transfers coalesce into the same DMA
        batches (a speculative fetch landing inside an open window
        rides it; one landing outside opens a window that subsequent
        demand fetches can join).  The daemon's staging-to-frame copy
        is folded into the completion time rather than claiming a ring
        slot, since no warp performs it.
        """
        if nbytes > self.page_size:
            raise ValueError("fetch larger than a page")
        data = handle.pread(file_offset, nbytes)
        self.stats.transfers += 1
        self.stats.speculative += 1
        self.stats.bytes_moved += nbytes
        spec = self.spec
        dma_cycles = nbytes / spec.pcie_bytes_per_cycle()
        if (self.enabled and now <= self._window_end
                and self._window_count < self.max_batch):
            self._window_count += 1
            self._window_end += dma_cycles
            done_at = now + spec.pcie_latency_cycles() + dma_cycles
        else:
            self.stats.batches += 1
            self._window_count = 1
            self._window_end = (now + self.aggregation_cycles
                                + spec.pcie_latency_cycles()
                                + dma_cycles)
            done_at = (now + spec.host_rpc_s * spec.clock_hz
                       + spec.pcie_latency_cycles() + dma_cycles)
        if data.size < nbytes:
            padded = np.zeros(nbytes, dtype=np.uint8)
            padded[:data.size] = data
            data = padded
        self._device.memory.write(dst_addr, data)
        return done_at

    def writeback(self, ctx: WarpContext, handle, file_offset: int,
                  src_addr: int, nbytes: int, data=None):
        """Timed: flush a dirty page back to the host file.

        ``data`` overrides the frame contents — used when a page-out
        filter transformed the bytes without touching the resident copy.
        """
        if data is None:
            data = ctx.memory.read(src_addr, nbytes).copy()
        handle.pwrite(file_offset, data)
        self.stats.transfers += 1
        self.stats.bytes_moved += nbytes
        yield from ctx.pcie(nbytes, to_device=False)

    # ------------------------------------------------------------------
    def _slot_addr(self, slot: int) -> int:
        return self.staging_base + slot * self.page_size

    def _claim_slot(self, ctx: WarpContext, data: np.ndarray,
                    nbytes: int):
        """Timed: claim a free staging slot and land the DMA bytes.

        The slot stays busy until the claimant's staging-to-frame copy
        completes, so a burst of concurrent fetches larger than the
        ring can never clobber an in-flight slot — late arrivals wait
        for a slot to free instead.
        """
        while True:
            for i in range(self.num_slots):
                slot = (self._next_slot + i) % self.num_slots
                if self._slot_busy[slot]:
                    continue
                self._next_slot = (slot + 1) % self.num_slots
                self._slot_busy[slot] = True
                if data.size < nbytes:
                    padded = np.zeros(nbytes, dtype=np.uint8)
                    padded[:data.size] = data
                    data = padded
                # The DMA landing in staging.
                ctx.memory.write(self._slot_addr(slot), data)
                return slot
            self.stats.slot_waits += 1
            yield from ctx.sleep(self.SLOT_RETRY_CYCLES, io_wait=True)

    def _device_copy(self, ctx: WarpContext, src_addr: int,
                     dst_addr: int, nbytes: int):
        """Warp-wide timed copy: staging slot -> page frame."""
        width = 8
        step = width * ctx.warp_size
        for off in range(0, nbytes, step):
            lane_off = off + ctx.lane * width
            mask = lane_off + width <= nbytes
            ctx.charge(4)
            vals = yield from ctx.load(src_addr + lane_off, "u8", mask=mask)
            yield from ctx.store(dst_addr + lane_off, vals, "u8", mask=mask)
        tail = nbytes % width
        if tail:
            base = nbytes - tail
            ctx.memory.write(
                dst_addr + base, ctx.memory.read(src_addr + base, tail))
