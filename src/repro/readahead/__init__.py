"""Asynchronous page readahead for the GPUfs paging stack.

The paper's file-backed workloads (§V–§VI) pay a host RPC plus a PCIe
DMA for every cold page; fault-time batching
(:class:`~repro.paging.staging.TransferBatcher`) amortises the fixed
cost but the latency still lands on the faulting warp.  This package
adds the mechanism real GPUfs-style systems (and every data pipeline)
use to hide it: **speculative page-granularity readahead** —
application-invisible, off by default, and wired behind
``GPUfsConfig(readahead=True)``.

* :class:`~repro.readahead.stream.StreamDetector` — recognises
  sequential and strided access streams from the fault address
  sequence, one stream per (file, warp) with LRU recycling;
* :class:`~repro.readahead.engine.ReadaheadEngine` — the host-side
  daemon: issues background page-ins through the shared transfer
  batching window, with adaptive per-stream windows and polite
  page-cache integration (non-blocking allocation, low-priority
  frames, promotion on first touch);
* :class:`~repro.readahead.engine.ReadaheadStats` — issued / hits /
  wasted / cancelled counters plus a window histogram, exported
  through ``repro.telemetry`` LaunchProfiles.

See ``docs/paging.md`` for the full paging-stack walkthrough and the
counter glossary.
"""

from repro.readahead.engine import (
    ReadaheadConfig,
    ReadaheadEngine,
    ReadaheadStats,
)
from repro.readahead.stream import (
    DetectorParams,
    Stream,
    StreamDetector,
)

__all__ = [
    "DetectorParams",
    "ReadaheadConfig",
    "ReadaheadEngine",
    "ReadaheadStats",
    "Stream",
    "StreamDetector",
]
