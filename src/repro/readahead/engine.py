"""The asynchronous readahead engine.

Sits between GPUfs fault handling and the page cache, modelling the
host-side readahead daemon of a GPUfs-style system.  On every paging
access the engine feeds the page number to the per-file
:class:`~repro.readahead.stream.StreamDetector`; once a sequential or
strided stream is confirmed it issues background page-ins for the pages
ahead, through the *same* batching window the demand
:class:`~repro.paging.staging.TransferBatcher` uses — speculative and
demand transfers coalesce into the same DMA batches, and the
speculative latency overlaps kernel compute instead of stalling a warp.

Timing model: a speculative page-in occupies no warp.  Its cost lives
on the daemon timeline as a *completion timestamp* (``ready_at`` on the
page-table entry) computed from the batcher's shared window state.  A
demand fault that lands on an in-flight speculative page waits only for
the remaining transfer time; a fault after completion is an ordinary
minor fault (a *readahead hit*).

Page-cache contract (the "polite speculator" rules):

* speculative frames are allocated **non-blocking** — when no free or
  reclaimable-speculative frame exists, the engine backs off
  (``cancelled``) and shrinks the stream's window rather than evicting
  a demand page;
* speculative frames are **low priority** — eviction prefers them over
  demand pages until first touch promotes them to normal;
* a speculative frame evicted untouched counts as ``wasted`` and
  shrinks the issuing stream's window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.paging.page_table import PageTableEntry
from repro.readahead.stream import DetectorParams, Stream, StreamDetector


@dataclass(frozen=True)
class ReadaheadConfig:
    """Knobs of the readahead daemon."""

    initial_window: int = 4     # pages issued when a stream is confirmed
    min_window: int = 2         # floor after repeated shrinks
    max_window: int = 64        # ceiling after repeated doublings
    max_streams: int = 64       # concurrent streams tracked per GPUfs
    max_stride: int = 64        # largest page stride recognised
    min_run: int = 2            # accesses before a stream is confirmed
    #: Instruction cost billed to the triggering warp per issue event —
    #: the fault handler's "kick the daemon" doorbell write, not the
    #: transfer itself.
    issue_cost_instrs: float = 20.0

    def detector_params(self) -> DetectorParams:
        return DetectorParams(
            max_streams=self.max_streams,
            max_stride=self.max_stride,
            min_run=self.min_run,
            initial_window=self.initial_window,
            min_window=self.min_window,
            max_window=self.max_window,
        )


@dataclass
class ReadaheadStats:
    """Counters of one readahead engine (telemetry-exported)."""

    issued: int = 0             # speculative page-ins started
    hits: int = 0               # demand touches of a speculative page
    inflight_hits: int = 0      # of those, transfer still in flight
    wasted: int = 0             # speculative frames evicted untouched
    cancelled: int = 0          # issues dropped: no non-blocking frame
    deferred: int = 0           # issues skipped: bucket lock held / raced
    window_grows: int = 0
    window_shrinks: int = 0
    streams_created: int = 0
    streams_recycled: int = 0
    #: Window size at each issue event -> count (telemetry flattens
    #: this to ``window_hist_<n>`` keys).
    window_hist: dict = field(default_factory=dict)

    def hit_rate(self) -> float:
        return self.hits / self.issued if self.issued else 0.0


class ReadaheadEngine:
    """Stream detection + async issue queue for one GPUfs instance."""

    def __init__(self, cache, batcher, handle_for, page_size: int,
                 config: ReadaheadConfig = ReadaheadConfig()):
        self.cache = cache
        self.table = cache.table
        self.batcher = batcher
        self.page_size = page_size
        self.config = config
        self.stats = ReadaheadStats()
        self.detector = StreamDetector(config.detector_params(),
                                       counters=self.stats)
        self._handle_for = handle_for
        self._device = cache.device
        #: In-flight speculative page-ins: (entry, done_at, launch_no).
        self._inflight: list[tuple[PageTableEntry, float, int]] = []
        #: Which stream issued each outstanding speculative page.
        self._origin: dict[tuple[int, int], Stream] = {}

    # ------------------------------------------------------------------
    # Completion polling
    # ------------------------------------------------------------------
    def poll(self, now: float) -> None:
        """Mark in-flight speculative pages whose transfer finished.

        A launch boundary also completes everything outstanding: the
        daemon keeps running while the GPU is idle between kernels, and
        simulated time restarts at zero each launch.
        """
        if not self._inflight:
            return
        launch_no = self._device.launches
        still: list[tuple[PageTableEntry, float, int]] = []
        for entry, done_at, launch in self._inflight:
            if not entry.speculative or entry.removed:
                # Promoted (on_hit) or retired (eviction): those paths
                # already popped ``_origin``; the defensive pop keeps
                # the map clean even if a future path forgets.
                self._origin.pop((entry.file_id, entry.fpn), None)
                continue
            if entry.ready:
                # A demand touch flipped it via GPUfs._wait_ready; the
                # imminent on_hit owns the ``_origin`` entry (it feeds
                # the window-grow decision), so only drop it from the
                # in-flight list.
                continue
            if launch != launch_no or done_at <= now:
                entry.ready = True
                entry.ready_at = None
            else:
                still.append((entry, done_at, launch))
        self._inflight = still

    @property
    def inflight_pages(self) -> int:
        return len(self._inflight)

    def gauges(self) -> dict:
        """Instantaneous-level probes for the time-series sampler."""
        return {
            "readahead.inflight_pages":
                lambda: float(self.inflight_pages),
        }

    # ------------------------------------------------------------------
    # Fault-path hooks (called by GPUfs)
    # ------------------------------------------------------------------
    def on_demand_access(self, ctx, file_id: int, fpn: int) -> None:
        """Observe one paging access; maybe issue speculative page-ins.

        Untimed except for a small doorbell charge on issue — the
        daemon does the heavy lifting off the warp's critical path.
        """
        self.poll(ctx.now)
        stream = self.detector.observe(file_id, fpn, hint=ctx.warp_id)
        if stream is not None and stream.confirmed:
            self._issue(ctx, stream, trigger=(file_id, fpn))

    def on_hit(self, ctx, entry: PageTableEntry,
               waited: bool = False) -> None:
        """A demand access touched a speculative page: promote it."""
        entry.speculative = False
        self.cache.promote_frame(entry.frame)
        self.stats.hits += 1
        if waited:
            self.stats.inflight_hits += 1
        stream = self._origin.pop((entry.file_id, entry.fpn), None)
        if stream is None or not stream.confirmed:
            return
        # Grow when the consumer caught the pipeline: either it had to
        # wait on an in-flight transfer (the window is too shallow to
        # hide the latency), or it consumed the furthest page issued.
        caught_up = (stream.next_ra is not None
                     and entry.fpn + stream.stride >= stream.next_ra)
        if ((waited or caught_up) and self.detector.grow(stream)):
            self.stats.window_grows += 1

    def on_spec_evicted(self, entry: PageTableEntry) -> None:
        """Cache listener: a speculative frame was evicted untouched."""
        self.stats.wasted += 1
        stream = self._origin.pop((entry.file_id, entry.fpn), None)
        if stream is not None and self.detector.shrink(stream):
            self.stats.window_shrinks += 1

    # ------------------------------------------------------------------
    # Issue path
    # ------------------------------------------------------------------
    def _issue(self, ctx, stream: Stream,
               trigger: tuple[int, int]) -> None:
        handle = self._handle_for(stream.file_id)
        npages = -(-handle.size() // self.page_size)
        stride = stream.stride
        window_end = stream.last_fpn + stride * stream.window
        fpn = stream.last_fpn + stride
        if stream.next_ra is not None:
            fpn = max(fpn, stream.next_ra)
        issued = 0
        first = fpn
        last_done = ctx.now
        # Never reclaim the page the triggering fault is about to
        # consume (we run before its table lookup, so a ready
        # speculative entry for it is a guaranteed hit), nor this
        # stream's own outstanding speculative pages — churning them to
        # read further ahead trades hits for wasted evictions.  Under
        # pressure the daemon backs off instead.
        protect = {trigger}
        protect.update(k for k, s in self._origin.items() if s is stream)
        while fpn <= window_end and fpn < npages:
            if self.table.get(stream.file_id, fpn) is None:
                frame = self.cache.allocate_speculative(protect)
                if frame is None:
                    # Cache pressure: back off instead of evicting a
                    # demand page; try again with a smaller window.
                    self.stats.cancelled += 1
                    if self.detector.shrink(stream):
                        self.stats.window_shrinks += 1
                    break
                done_at = self._start_transfer(ctx, stream, fpn, frame,
                                               handle)
                if done_at is None:
                    # host_insert deferred (a warp holds the bucket
                    # lock, likely mid-fault on this very page) or the
                    # key appeared since the residency check: skip it.
                    fpn += stride
                    continue
                last_done = max(last_done, done_at)
                issued += 1
            fpn += stride
        stream.next_ra = fpn
        if issued:
            ctx.charge(self.config.issue_cost_instrs)
            hist = self.stats.window_hist
            hist[stream.window] = hist.get(stream.window, 0) + 1
            if ctx.tracer is not None:
                ctx.trace_span(
                    "readahead", ctx.now, last_done,
                    f"file={stream.file_id} fpn={first}.. "
                    f"x{issued} stride={stride} w={stream.window}")

    def _start_transfer(self, ctx, stream: Stream, fpn: int, frame: int,
                        handle):
        """Returns the transfer's completion time, or ``None`` if the
        table insert was deferred/raced and no transfer started."""
        entry = PageTableEntry(stream.file_id, fpn, frame=frame,
                               ready=False, speculative=True)
        if self.table.host_insert(entry) is not entry:
            # Deferred (a warp holds the key's bucket lock mid-insert)
            # or the key is suddenly resident: hand the frame back —
            # it was never bound — and let the demand path win.
            self.cache.release_frame(frame)
            self.stats.deferred += 1
            return None
        self.cache.bind(entry)
        self.cache.mark_speculative(frame)
        done_at = self.batcher.fetch_async(
            ctx.now, handle, fpn * self.page_size, self.page_size,
            self.cache.frame_addr(frame))
        entry.ready_at = done_at
        self._inflight.append((entry, done_at, self._device.launches))
        self._origin[(stream.file_id, fpn)] = stream
        self.stats.issued += 1
        return done_at
