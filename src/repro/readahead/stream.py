"""Per-file access-stream detection for the readahead daemon.

The detector watches the sequence of page faults a file receives and
recognises *streams*: runs of accesses separated by a constant page
stride.  Sequential reads are the stride-1 special case; GPU kernels
commonly produce strided streams instead, because each warp walks the
file at a stride of the warp count.  A stream therefore carries a
*hint* — here the faulting warp id — so concurrent warps reading
disjoint regions each get their own stream state instead of shredding
one global sequence (the same reason Linux keeps readahead state per
open file descriptor).

Each stream owns an adaptive readahead window, grown when speculation
pays off and shrunk when speculative frames go to waste — see
:class:`~repro.readahead.engine.ReadaheadEngine` for the feedback
edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class Stream:
    """One detected access stream within a file."""

    file_id: int
    hint: int                  # stream key (the observing warp's id)
    last_fpn: int              # most recent page of the stream
    stride: int = 0            # pages per step; 0 = not yet confirmed
    run: int = 1               # consecutive accesses matching the stride
    window: int = 0            # current readahead window, in pages
    next_ra: Optional[int] = None   # first fpn not yet issued speculatively
    last_used: int = 0         # detector LRU tick

    @property
    def confirmed(self) -> bool:
        return self.stride != 0


@dataclass
class DetectorParams:
    """Stream-detection knobs (a subset of ``ReadaheadConfig``)."""

    max_streams: int = 64
    max_stride: int = 64
    min_run: int = 2
    initial_window: int = 4
    min_window: int = 2
    max_window: int = 64


@dataclass
class DetectorCounters:
    streams_created: int = 0
    streams_recycled: int = 0


class StreamDetector:
    """Tracks up to ``max_streams`` concurrent streams per file system.

    :meth:`observe` feeds one page access in; it returns the stream the
    access extended once that stream is *confirmed* (``min_run``
    consecutive accesses at a constant stride), or ``None`` while the
    pattern is still ambiguous.  Random access therefore never returns
    a stream and costs only the per-access bookkeeping.
    """

    def __init__(self, params: DetectorParams = DetectorParams(),
                 counters: Optional[DetectorCounters] = None):
        self.params = params
        self.counters = counters if counters is not None \
            else DetectorCounters()
        self._streams: dict[tuple[int, int], Stream] = {}
        self._tick = 0

    # ------------------------------------------------------------------
    def observe(self, file_id: int, fpn: int,
                hint: int = 0) -> Optional[Stream]:
        """Feed one page access; returns the confirmed stream it
        extends, or ``None``."""
        self._tick += 1
        key = (file_id, hint)
        stream = self._streams.get(key)
        if stream is None:
            stream = self._new_stream(key, fpn)
            return None
        stream.last_used = self._tick
        if fpn == stream.last_fpn:
            # Re-fault of the same page (other lanes / refault): no new
            # pattern information.
            return stream if stream.confirmed else None
        delta = fpn - stream.last_fpn
        if stream.confirmed and delta == stream.stride:
            stream.last_fpn = fpn
            stream.run += 1
            return stream
        if not stream.confirmed and 0 < delta <= self.params.max_stride:
            # Second access of an embryo stream fixes its stride.
            stream.stride = delta
            stream.last_fpn = fpn
            stream.run = 2
            if stream.window == 0:
                stream.window = self.params.initial_window
            return stream if stream.run >= self.params.min_run else None
        # The pattern broke: restart the stream at the new position.
        # Keep the learnt window — a seek within the same logical
        # stream (e.g. a new record) should not forfeit its history.
        stream.last_fpn = fpn
        stream.stride = 0
        stream.run = 1
        stream.next_ra = None
        return None

    # ------------------------------------------------------------------
    def _new_stream(self, key: tuple[int, int], fpn: int) -> Stream:
        if len(self._streams) >= self.params.max_streams:
            lru = min(self._streams, key=lambda k:
                      self._streams[k].last_used)
            del self._streams[lru]
            self.counters.streams_recycled += 1
        stream = Stream(file_id=key[0], hint=key[1], last_fpn=fpn,
                        last_used=self._tick)
        self._streams[key] = stream
        self.counters.streams_created += 1
        return stream

    # ------------------------------------------------------------------
    # Window feedback (called by the engine)
    # ------------------------------------------------------------------
    def grow(self, stream: Stream) -> bool:
        """Speculation paid off: double the stream's window."""
        new = min(max(stream.window * 2, self.params.min_window),
                  self.params.max_window)
        changed = new != stream.window
        stream.window = new
        return changed

    def shrink(self, stream: Stream) -> bool:
        """Speculation wasted or cache pressure: halve the window."""
        new = max(stream.window // 2, self.params.min_window)
        changed = new != stream.window
        stream.window = new
        return changed

    # ------------------------------------------------------------------
    @property
    def streams(self) -> list[Stream]:
        """Live streams (test / introspection use)."""
        return list(self._streams.values())
