"""Warp-level GPU syscalls (the arXiv 1705.06965 §3 taxonomy) over
GPUfs: ``pread`` / ``pwrite`` / ``msync`` / ``madvise`` / ``ftruncate``
plus the non-blocking ``*_async`` ticketed variants."""

from repro.syscalls.layer import (
    MADV_DONTNEED,
    MADV_WILLNEED,
    ORDER_RELAXED,
    ORDER_STRONG,
    SYSCALL_INSTRS,
    SYSCALLS,
    SyscallLayer,
    SyscallSpec,
    SyscallStats,
    SyscallTicket,
)

__all__ = [
    "MADV_DONTNEED",
    "MADV_WILLNEED",
    "ORDER_RELAXED",
    "ORDER_STRONG",
    "SYSCALL_INSTRS",
    "SYSCALLS",
    "SyscallLayer",
    "SyscallSpec",
    "SyscallStats",
    "SyscallTicket",
]
