"""Generic warp-level GPU syscall layer.

ActivePointers' fault path is, in effect, one hard-coded GPU syscall:
a warp traps on a missing page and GPUfs services a ``read``.  "GPU
System Calls" (Vesely et al., arXiv 1705.06965) generalises the pattern
into a warp-granularity syscall interface whose calls are classified
along two axes (their §3 taxonomy):

* **ordering** — *strong-ordered* calls fence the warp's prior memory
  operations before the call proceeds and fence again before control
  returns, so the call is a two-sided memory barrier; *relaxed* calls
  impose no ordering beyond their own data movement.
* **blocking** — *blocking* calls return only once their effect is
  complete (the warp's wait shows up in ``blocked_cycles``);
  *non-blocking* calls return immediately, either fire-and-forget
  (``madvise``) or with a :class:`SyscallTicket` the warp can
  :meth:`~SyscallLayer.wait` on later (``pread_async`` /
  ``pwrite_async``).

The dispatch table (:data:`SYSCALLS`) classifies every call:

========== ========= ============
 call       ordering  blocking
========== ========= ============
pread       relaxed   blocking
pwrite      relaxed   blocking
msync       strong    blocking
madvise     relaxed   non-blocking
ftruncate   strong    blocking
pread_async relaxed   non-blocking
pwrite_async relaxed  non-blocking
========== ========= ============

All calls are serviced by the *existing* GPUfs plumbing — page faults
via :meth:`~repro.paging.gpufs.GPUfs.handle_fault`, transfers via the
shared :class:`~repro.paging.staging.TransferBatcher` windows, write
back through the PCIe model — so the syscall layer adds semantics, not
a second staging path.  ``pread``/``pwrite`` move bytes through the
coherent page cache (a ``pwrite`` dirties the spanned pages; eviction
or ``msync`` writes them back); the ``*_async`` variants model the
paper's direct-I/O flavour that bypasses the cache entirely, so mixing
them with resident dirty pages of the same range requires an ``msync``
first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.gpu.kernel import WarpContext
from repro.host.ramfs import FileSystemError
from repro.paging.page_table import PageTableEntry

#: Per-call bookkeeping (argument marshalling, dispatch-table lookup).
SYSCALL_INSTRS = 20

ORDER_STRONG = "strong"
ORDER_RELAXED = "relaxed"

#: ``madvise`` advice values (the two the page cache can act on).
MADV_WILLNEED = 3
MADV_DONTNEED = 4


@dataclass(frozen=True)
class SyscallSpec:
    """One syscall's classification in the §3 taxonomy."""

    name: str
    ordering: str            # ORDER_STRONG | ORDER_RELAXED
    blocking: bool


#: The dispatch table: every warp-level syscall the layer services,
#: keyed by name.  :meth:`SyscallLayer.invoke` resolves calls through
#: it; the specs drive the fencing and blocked-cycle accounting.
SYSCALLS: dict[str, SyscallSpec] = {
    spec.name: spec for spec in (
        SyscallSpec("pread", ORDER_RELAXED, blocking=True),
        SyscallSpec("pwrite", ORDER_RELAXED, blocking=True),
        SyscallSpec("msync", ORDER_STRONG, blocking=True),
        SyscallSpec("madvise", ORDER_RELAXED, blocking=False),
        SyscallSpec("ftruncate", ORDER_STRONG, blocking=True),
        SyscallSpec("pread_async", ORDER_RELAXED, blocking=False),
        SyscallSpec("pwrite_async", ORDER_RELAXED, blocking=False),
    )
}


@dataclass
class SyscallStats:
    """Per-layer syscall counters (telemetry ``components.syscalls``)."""

    pread: int = 0
    pwrite: int = 0
    msync: int = 0
    madvise: int = 0
    ftruncate: int = 0
    pread_async: int = 0
    pwrite_async: int = 0
    #: Warp-cycles spent inside blocking calls (and ticket waits).
    blocked_cycles: float = 0.0
    #: Bytes written back to the host through the PCIe model — by
    #: ``msync``, dirty-page eviction, and ``flush`` alike.
    writeback_bytes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    tickets_issued: int = 0
    tickets_waited: int = 0
    #: madvise(WILLNEED) pages prefetched / skipped under pressure.
    advise_prefetched: int = 0
    advise_deferred: int = 0
    #: madvise(DONTNEED) pages dropped from the cache.
    advise_dropped: int = 0
    #: WILLNEED frames evicted before any touch (wasted prefetch).
    advise_wasted: int = 0


@dataclass
class SyscallTicket:
    """Completion handle of a non-blocking ``*_async`` call."""

    name: str
    nbytes: int
    done_at: float
    waited: bool = False


class SyscallLayer:
    """Warp-level syscall dispatch over one GPUfs instance.

    Every public method is a timed kernel-coroutine generator invoked
    with ``yield from`` and the warp converged, mirroring
    :meth:`~repro.paging.gpufs.GPUfs.handle_fault`.
    """

    def __init__(self, gpufs):
        self.gpufs = gpufs
        self.stats = SyscallStats()
        #: In-flight madvise(WILLNEED) transfers when no readahead
        #: engine is attached: (entry, done_at, launch_no), polled with
        #: the same semantics as ``ReadaheadEngine.poll``.
        self._inflight: list[tuple[PageTableEntry, float, int]] = []

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def invoke(self, ctx: WarpContext, name: str, *args, **kwargs):
        """Timed: dispatch a syscall by name through :data:`SYSCALLS`."""
        if name not in SYSCALLS:
            raise ValueError(f"unknown GPU syscall {name!r}")
        return (yield from getattr(self, name)(ctx, *args, **kwargs))

    # ------------------------------------------------------------------
    # pread / pwrite: byte ranges through the coherent page cache
    # ------------------------------------------------------------------
    def pread(self, ctx: WarpContext, file_id: int, offset: int,
              nbytes: int, dst_addr: int):
        """Timed: read ``nbytes`` at ``offset`` into device memory at
        ``dst_addr``.  Relaxed, blocking: returns once the bytes have
        landed, with no fence on the warp's other traffic."""
        if nbytes <= 0:
            raise ValueError("pread of non-positive size")
        spec = SYSCALLS["pread"]
        t0 = yield from self._enter(ctx, spec)
        try:
            self.stats.bytes_read += nbytes
            yield from self._for_each_page(ctx, file_id, offset, nbytes,
                                           dst_addr, write=False)
        finally:
            yield from self._exit(ctx, spec, t0)
        return nbytes

    def pwrite(self, ctx: WarpContext, file_id: int, offset: int,
               nbytes: int, src_addr: int):
        """Timed: write ``nbytes`` from device memory at ``src_addr``
        into the file at ``offset``.  Completes into the page cache
        (the spanned pages are dirtied); durability comes from
        :meth:`msync`, dirty eviction, or ``GPUfs.flush``."""
        if nbytes <= 0:
            raise ValueError("pwrite of non-positive size")
        self._require_writable(file_id, "pwrite")
        spec = SYSCALLS["pwrite"]
        t0 = yield from self._enter(ctx, spec)
        try:
            self.stats.bytes_written += nbytes
            yield from self._for_each_page(ctx, file_id, offset, nbytes,
                                           src_addr, write=True)
        finally:
            yield from self._exit(ctx, spec, t0)
        return nbytes

    # ------------------------------------------------------------------
    # msync: strong-ordered write-back of dirty resident pages
    # ------------------------------------------------------------------
    def msync(self, ctx: WarpContext, file_id: Optional[int] = None,
              offset: int = 0, nbytes: Optional[int] = None):
        """Timed: write every dirty resident page of ``file_id`` in
        ``[offset, offset + nbytes)`` back to the host (``file_id=None``
        flushes all files, ``nbytes=None`` the whole file).  Strong
        ordered: prior stores are fenced before the flush begins and
        the flush completes before control returns."""
        spec = SYSCALLS["msync"]
        t0 = yield from self._enter(ctx, spec)
        flushed = 0
        try:
            gpufs = self.gpufs
            page = gpufs.page_size
            lo = offset // page
            hi = None if nbytes is None else -(-(offset + nbytes) // page)
            for entry in list(gpufs.cache.table.entries()):
                if not entry.dirty or not entry.ready:
                    continue
                if file_id is not None and entry.file_id != file_id:
                    continue
                if entry.fpn < lo or (hi is not None and entry.fpn >= hi):
                    continue
                # Clear dirty *before* the write-back: the host write
                # lands at initiation, so a store arriving during the
                # PCIe sleep re-marks the entry and a later msync
                # flushes it.  Clearing after the sleep would wipe
                # that re-mark and lose the write.
                entry.dirty = False
                yield from gpufs._writeback(
                    ctx, entry, gpufs.cache.frame_addr(entry.frame))
                flushed += 1
        finally:
            yield from self._exit(ctx, spec, t0)
        return flushed

    # ------------------------------------------------------------------
    # madvise: non-blocking page-cache hints
    # ------------------------------------------------------------------
    def madvise(self, ctx: WarpContext, file_id: int, offset: int,
                nbytes: int, advice: int):
        """Timed: advise the cache about ``[offset, offset + nbytes)``.

        Relaxed, non-blocking — the warp never waits on a transfer:

        * ``MADV_WILLNEED`` starts daemon-side prefetches of absent
          pages into *free* frames (never evicting for a hint; backs
          off under pressure);
        * ``MADV_DONTNEED`` drops resident pages that are clean,
          ready, and unreferenced (advice never discards data).
        """
        spec = SYSCALLS["madvise"]
        t0 = yield from self._enter(ctx, spec)
        try:
            page = self.gpufs.page_size
            lo = offset // page
            hi = -(-(offset + max(nbytes, 0)) // page)
            if advice == MADV_WILLNEED:
                acted = self._advise_willneed(ctx, file_id, lo, hi)
            elif advice == MADV_DONTNEED:
                acted = self._advise_dontneed(file_id, lo, hi)
            else:
                raise ValueError(f"unknown madvise advice {advice}")
        finally:
            yield from self._exit(ctx, spec, t0)
        return acted

    def _advise_willneed(self, ctx: WarpContext, file_id: int,
                         lo: int, hi: int) -> int:
        gpufs = self.gpufs
        cache = gpufs.cache
        handle = gpufs.handle_for(file_id)
        npages = -(-handle.size() // gpufs.page_size)
        issued = 0
        for fpn in range(lo, min(hi, npages)):
            if cache.table.get(file_id, fpn) is not None:
                continue
            if cache.frames_in_use >= cache.config.num_frames:
                # A hint never evicts: only free frames are used.
                break
            frame = cache.allocate_speculative()
            if frame is None:
                break
            entry = PageTableEntry(file_id, fpn, frame=frame,
                                   ready=False, speculative=True)
            if cache.table.host_insert(entry) is not entry:
                # Bucket lock held (a warp is mid-fault on this page)
                # or the key just became resident: skip the hint.
                cache.release_frame(frame)
                self.stats.advise_deferred += 1
                continue
            cache.bind(entry)
            cache.mark_speculative(frame)
            done_at = gpufs.batcher.fetch_async(
                ctx.now, handle, fpn * gpufs.page_size,
                gpufs.page_size, cache.frame_addr(frame))
            entry.ready_at = done_at
            record = (entry, done_at, gpufs.device.launches)
            if gpufs.readahead is not None:
                # The engine's poll already completes in-flight
                # transfers at the right times; ride its list rather
                # than running a second one.
                gpufs.readahead._inflight.append(record)
            else:
                self._inflight.append(record)
            self.stats.advise_prefetched += 1
            issued += 1
        return issued

    def _advise_dontneed(self, file_id: int, lo: int, hi: int) -> int:
        gpufs = self.gpufs
        dropped = 0
        for entry in list(gpufs.cache.table.entries()):
            if entry.file_id != file_id or not lo <= entry.fpn < hi:
                continue
            if entry.refcount > 0 or not entry.ready:
                continue
            if entry.dirty:
                # Dropping would lose the write; the caller must msync
                # first (counted so the hint's failure is observable).
                self.stats.advise_deferred += 1
                continue
            if not gpufs.cache.table.host_remove(entry):
                self.stats.advise_deferred += 1
                continue
            gpufs.cache.discard_frame(entry)
            dropped += 1
        self.stats.advise_dropped += dropped
        return dropped

    # ------------------------------------------------------------------
    # Speculative-frame listener (when no readahead engine is attached)
    # ------------------------------------------------------------------
    def poll(self, now: float) -> None:
        """Complete madvise(WILLNEED) transfers whose time has passed.

        Same contract as ``ReadaheadEngine.poll``: a launch boundary
        completes everything outstanding, since simulated time restarts
        at zero each launch while the daemon keeps running.
        """
        if not self._inflight:
            return
        launch_no = self.gpufs.device.launches
        still: list[tuple[PageTableEntry, float, int]] = []
        for entry, done_at, launch in self._inflight:
            if entry.removed or not entry.speculative or entry.ready:
                continue
            if launch != launch_no or done_at <= now:
                entry.ready = True
                entry.ready_at = None
            else:
                still.append((entry, done_at, launch))
        self._inflight = still

    def on_spec_evicted(self, entry: PageTableEntry) -> None:
        """Cache listener: a prefetched frame was evicted untouched."""
        self.stats.advise_wasted += 1

    # ------------------------------------------------------------------
    # ftruncate: strong-ordered file resize
    # ------------------------------------------------------------------
    def ftruncate(self, ctx: WarpContext, file_id: int, new_size: int):
        """Timed: resize the file to ``new_size`` bytes.

        Resident pages wholly beyond the new EOF are dropped (their
        dirty data is legitimately discarded — that is what truncation
        means); a pinned page beyond EOF raises, since a linked
        apointer still holds its mapping.  The resident page straddling
        EOF has its tail zeroed, so a later write-back regrows the file
        with zeros, as POSIX reads after extension would see.
        """
        if new_size < 0:
            raise ValueError("negative ftruncate size")
        self._require_writable(file_id, "ftruncate")
        spec = SYSCALLS["ftruncate"]
        t0 = yield from self._enter(ctx, spec)
        try:
            gpufs = self.gpufs
            page = gpufs.page_size
            keep = -(-new_size // page)
            for entry in list(gpufs.cache.table.entries()):
                if entry.file_id != file_id or entry.fpn < keep:
                    continue
                if entry.refcount > 0:
                    raise RuntimeError(
                        f"ftruncate({new_size}) of file {file_id}: page "
                        f"{entry.fpn} is pinned (refcount "
                        f"{entry.refcount})")
                yield from gpufs._wait_ready(ctx, entry)
                entry.dirty = False
                removed = yield from gpufs.cache.table \
                    .remove_if_unreferenced(ctx, entry)
                if removed:
                    gpufs.cache.discard_frame(entry)
            # The resize itself is a host-daemon metadata RPC.
            yield from ctx.host_compute(gpufs.batcher.spec.host_rpc_s)
            gpufs.handle_for(file_id).truncate(new_size)
            tail = new_size % page
            if tail:
                entry = gpufs.cache.table.get(file_id, new_size // page)
                if entry is not None and entry.ready:
                    addr = gpufs.cache.frame_addr(entry.frame) + tail
                    ctx.memory.write(
                        addr, np.zeros(page - tail, dtype=np.uint8))
        finally:
            yield from self._exit(ctx, spec, t0)
        return new_size

    # ------------------------------------------------------------------
    # Non-blocking direct I/O: pread_async / pwrite_async + wait
    # ------------------------------------------------------------------
    def pread_async(self, ctx: WarpContext, file_id: int, offset: int,
                    nbytes: int, dst_addr: int):
        """Timed: start a direct-I/O read that bypasses the page cache;
        returns a :class:`SyscallTicket` to :meth:`wait` on.  The
        transfer rides the batcher's DMA windows on the daemon
        timeline, charging no warp until the wait."""
        if nbytes <= 0:
            raise ValueError("pread_async of non-positive size")
        spec = SYSCALLS["pread_async"]
        t0 = yield from self._enter(ctx, spec)
        try:
            gpufs = self.gpufs
            handle = gpufs.handle_for(file_id)
            page = gpufs.page_size
            done_at = ctx.now
            pos, end, dst = offset, offset + nbytes, dst_addr
            while pos < end:
                chunk = min(end - pos, page - pos % page)
                done_at = max(done_at, gpufs.batcher.fetch_async(
                    ctx.now, handle, pos, chunk, dst))
                pos += chunk
                dst += chunk
            self.stats.bytes_read += nbytes
            self.stats.tickets_issued += 1
            ticket = SyscallTicket("pread", nbytes, done_at)
        finally:
            yield from self._exit(ctx, spec, t0)
        return ticket

    def pwrite_async(self, ctx: WarpContext, file_id: int, offset: int,
                     nbytes: int, src_addr: int):
        """Timed: start a direct-I/O write that bypasses the page
        cache; returns a :class:`SyscallTicket`.  Resident dirty pages
        of the range are *not* consulted — ``msync`` first when
        mixing cached writes with direct I/O."""
        if nbytes <= 0:
            raise ValueError("pwrite_async of non-positive size")
        self._require_writable(file_id, "pwrite_async")
        spec = SYSCALLS["pwrite_async"]
        t0 = yield from self._enter(ctx, spec)
        try:
            gpufs = self.gpufs
            handle = gpufs.handle_for(file_id)
            data = ctx.memory.read(src_addr, nbytes).copy()
            handle.pwrite(offset, data)
            dev = gpufs.batcher.spec
            done_at = (ctx.now + dev.host_rpc_s * dev.clock_hz
                       + dev.pcie_latency_cycles()
                       + nbytes / dev.pcie_bytes_per_cycle())
            gpufs.batcher.stats.transfers += 1
            gpufs.batcher.stats.bytes_moved += nbytes
            self.stats.bytes_written += nbytes
            self.stats.tickets_issued += 1
            ticket = SyscallTicket("pwrite", nbytes, done_at)
        finally:
            yield from self._exit(ctx, spec, t0)
        return ticket

    def wait(self, ctx: WarpContext, ticket: SyscallTicket):
        """Timed: block until a non-blocking call's ticket completes;
        returns the call's byte count.  Idempotent."""
        if ticket.waited:
            return ticket.nbytes
        t0 = ctx.now
        ctx.push_activity("syscall")
        try:
            remaining = ticket.done_at - ctx.now
            if remaining > 0:
                yield from ctx.sleep(remaining, io_wait=True)
            ticket.waited = True
            self.stats.tickets_waited += 1
            self.stats.blocked_cycles += ctx.now - t0
        finally:
            ctx.pop_activity()
        return ticket.nbytes

    # ------------------------------------------------------------------
    # Shared mechanics
    # ------------------------------------------------------------------
    def _require_writable(self, file_id: int, call: str) -> None:
        handle = self.gpufs.handle_for(file_id)
        if not handle.writable:
            raise FileSystemError(
                f"{call} on fd {file_id} ({handle.name!r}) "
                f"opened read-only")

    def _enter(self, ctx: WarpContext, spec: SyscallSpec):
        """Timed: common call prologue — count, charge, maybe fence."""
        setattr(self.stats, spec.name,
                getattr(self.stats, spec.name) + 1)
        ctx.begin_request()
        ctx.push_activity("syscall")
        ctx.charge(SYSCALL_INSTRS)
        if spec.ordering == ORDER_STRONG:
            yield from ctx.fence()
        return ctx.now

    def _exit(self, ctx: WarpContext, spec: SyscallSpec, t0: float):
        """Timed: common call epilogue — maybe fence, account, trace."""
        if spec.ordering == ORDER_STRONG:
            yield from ctx.fence()
        if spec.blocking:
            self.stats.blocked_cycles += ctx.now - t0
        if ctx.tracer is not None:
            ctx.trace_span("syscall", t0, ctx.now, spec.name)
        ctx.pop_activity()
        ctx.end_request()

    def _for_each_page(self, ctx: WarpContext, file_id: int, offset: int,
                       nbytes: int, buf_addr: int, write: bool):
        """Timed: fault, copy, and release each page of a byte range —
        the Listing-1 loop generalised to both directions."""
        gpufs = self.gpufs
        page = gpufs.page_size
        pos = offset
        end = offset + nbytes
        while pos < end:
            fpn = pos // page
            in_page = pos % page
            chunk = min(end - pos, page - in_page)
            frame_addr = yield from gpufs.handle_fault(
                ctx, file_id, fpn, refs=1, write=write)
            if write:
                yield from self._warp_copy(ctx, buf_addr + (pos - offset),
                                           frame_addr + in_page, chunk)
            else:
                yield from self._warp_copy(ctx, frame_addr + in_page,
                                           buf_addr + (pos - offset),
                                           chunk)
            # Re-mark dirty at release: a concurrent msync may have
            # flushed (and cleaned) the page mid-copy.
            yield from gpufs.release_page(ctx, file_id, fpn, refs=1,
                                          dirty=write)
            pos += chunk

    def _warp_copy(self, ctx: WarpContext, src: int, dst: int,
                   nbytes: int):
        """Warp-cooperative copy between a frame and a warp buffer."""
        step = 16 * ctx.warp_size
        for off in range(0, nbytes - nbytes % step, step):
            lane = off + ctx.lane * 16
            ctx.charge(4)
            vals = yield from ctx.load_wide(src + lane, "f4", 4,
                                            nonblocking=True)
            yield from ctx.store_wide(dst + lane, vals, "f4")
        yield from ctx.fence()
        tail = nbytes % step
        if tail:
            base = nbytes - tail
            ctx.charge(4)
            ctx.memory.write(dst + base, ctx.memory.read(src + base,
                                                         tail).copy())
            yield from ctx.compute(tail / 8)
