"""Unified telemetry for the simulated stack.

Every layer of the reproduction keeps counters — ``APStats`` in the
translation layer, ``PagingStats`` in GPUfs, ``EngineStats`` in the
scheduler, the :class:`~repro.gpu.trace.Tracer` event log.  This package
turns them into one structured, exportable view of a launch:

* :class:`Profiler` / :func:`capture` — observe launches and reduce each
  to a :class:`LaunchProfile` (per-SM utilisation, DRAM/PCIe occupancy,
  stall-reason breakdown, component counter deltas).
* :class:`MetricsRegistry` — aggregates component stats objects and
  snapshots per-launch deltas.
* ``Tracer.to_chrome_trace()`` — Chrome ``trace_event`` export, loadable
  in Perfetto, with paging spans (page-in, fault filters, warp fault
  handling) on the timeline next to the engine's macro-ops.
* :func:`validate_profile` — schema check for the profile JSON.
* :func:`attribute_tracer` / :func:`attribute_events` — the cycle
  attribution analyzer (:mod:`repro.telemetry.attribution`): per-warp
  stall accounting, the launch critical path, and the hidden-vs-exposed
  decomposition of translation cycles (``repro-attr`` CLI).
* :mod:`repro.telemetry.trend` — the append-only ``BENCH_trend.json``
  performance record and the ``repro-attr --compare`` regression gate.

See ``docs/observability.md`` for the counter glossary and a worked
diagnosis example.
"""

from repro.telemetry import hooks
from repro.telemetry.attribution import (
    AttributionReport,
    TruncatedTraceError,
    attribute_chrome_trace,
    attribute_events,
    attribute_tracer,
)
from repro.telemetry.profile import (
    PROFILE_SCHEMA,
    SCHEMA_NAME,
    SCHEMA_VERSION,
    LaunchProfile,
    MetricsRegistry,
    merge_profiles,
    validate_profile,
)
from repro.telemetry.profiler import Profiler, capture, write_profile_docs
from repro.telemetry.timeseries import (
    DEFAULT_WINDOW_CYCLES,
    JsonlSink,
    TimeseriesSampler,
    merge_series,
    prometheus_lines,
    write_prometheus,
)
from repro.telemetry.trend import append_run, compare, load_trend

__all__ = [
    "AttributionReport",
    "DEFAULT_WINDOW_CYCLES",
    "JsonlSink",
    "LaunchProfile",
    "MetricsRegistry",
    "Profiler",
    "PROFILE_SCHEMA",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "TimeseriesSampler",
    "TruncatedTraceError",
    "append_run",
    "attribute_chrome_trace",
    "attribute_events",
    "attribute_tracer",
    "capture",
    "compare",
    "hooks",
    "load_trend",
    "merge_profiles",
    "merge_series",
    "prometheus_lines",
    "validate_profile",
    "write_profile_docs",
    "write_prometheus",
]
