"""Cycle attribution: critical-path and latency-hiding analysis.

The engine records, when a tracer is attached, three overlay event kinds
on top of its macro-op trace (see ``ATTRIBUTION_KINDS`` in
:mod:`repro.gpu.trace`):

``issue``
    intervals in which a warp occupied its SM's issue server;

``stall``
    every non-issuing interval of a warp, tagged with its reason —
    either the activity that caused it ("translation", "tlb_miss",
    "fault_wait") or the mechanical resource it waited on ("memory",
    "io", "lock", "atomic", "issue_queue", "exec_dependency", ...);

``translation``
    per-request decompositions of apointer translation work, with a
    ``iss=..;lat=..;hid=..`` detail: issue slots consumed, warp-visible
    latency the translation chains added, and chain cycles already
    absorbed by the memory bubble at warp level.

This module reconstructs per-warp timelines from those events and
answers the paper's §VI-A question as a *measured* quantity: how much
translation work was hidden inside the memory-latency bubble, and how
much landed on the launch critical path?  Three views are produced:

* **per-warp accounting** — issue + hidden stall + exposed stall + idle
  for every warp, tiling the launch span exactly (a stall interval is
  *hidden* where some other warp on the same SM was issuing — the SM was
  doing useful work — and *exposed* where no warp issued);
* **launch critical path** — intervals with no concurrently-issuing
  warp on the SM, attributed to the stall reasons of the warps covering
  them (proportionally when several reasons overlap a gap);
* **translation hidden-vs-exposed** — warp-visible translation latency
  is reclassified at launch level: latency covered by other warps'
  issue intervals was free (the paper's free-computation bubble);
  issue slots contended by other warps (their ``issue_queue`` stalls
  overlap the event) were not.

Traces truncated by the :class:`~repro.gpu.trace.Tracer` event cap are
refused with :class:`TruncatedTraceError` — attribution over a partial
timeline would silently produce wrong numbers.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.gpu.trace import (
    ATTRIBUTION_KINDS,
    TraceEvent,
    Tracer,
    events_from_chrome_trace,
)

__all__ = [
    "AttributionReport",
    "TranslationSplit",
    "TruncatedTraceError",
    "attribute_chrome_trace",
    "attribute_events",
    "attribute_tracer",
]


class TruncatedTraceError(RuntimeError):
    """The trace overflowed ``Tracer.max_events``; attribution refused.

    A truncated trace is missing an unknown suffix of every warp's
    timeline, so coverage fractions and the critical path would be
    systematically wrong rather than merely noisy.
    """


# ----------------------------------------------------------------------
# Interval helpers
# ----------------------------------------------------------------------
def _union(intervals: list) -> list:
    """Merge ``(start, end)`` pairs into a sorted disjoint list."""
    out: list = []
    for s, e in sorted(intervals):
        if e <= s:
            continue
        if out and s <= out[-1][1]:
            if e > out[-1][1]:
                out[-1][1] = e
        else:
            out.append([s, e])
    return [(s, e) for s, e in out]


def _complement(union: list, t0: float, t1: float) -> list:
    """Gaps of a disjoint sorted ``union`` within ``[t0, t1]``."""
    gaps = []
    cursor = t0
    for s, e in union:
        if s > cursor:
            gaps.append((cursor, min(s, t1)))
        cursor = max(cursor, e)
        if cursor >= t1:
            break
    if cursor < t1:
        gaps.append((cursor, t1))
    return [(s, e) for s, e in gaps if e > s]


class _SMIntervals:
    """Per-SM interval set answering exclusion coverage queries.

    Holds ``(start, end, warp)`` triples; ``coverage(s, e, exclude)``
    returns the measure of ``[s, e)`` covered by the union of intervals
    belonging to any warp other than ``exclude``.
    """

    __slots__ = ("items", "_starts", "_maxlen")

    def __init__(self) -> None:
        self.items: list = []
        self._starts: list = []
        self._maxlen = 0.0

    def add(self, start: float, end: float, warp: int) -> None:
        if end > start:
            self.items.append((start, end, warp))

    def freeze(self) -> None:
        self.items.sort()
        self._starts = [it[0] for it in self.items]
        self._maxlen = max((e - s for s, e, _ in self.items),
                           default=0.0)

    def coverage(self, s: float, e: float, exclude: int = -1) -> float:
        if e <= s or not self.items:
            return 0.0
        lo = bisect_left(self._starts, s - self._maxlen)
        cov = 0.0
        cur_s = cur_e = None
        for idx in range(lo, len(self.items)):
            st, en, w = self.items[idx]
            if st >= e:
                break
            if w == exclude or en <= s:
                continue
            a, b = max(st, s), min(en, e)
            if cur_e is None:
                cur_s, cur_e = a, b
            elif a <= cur_e:
                if b > cur_e:
                    cur_e = b
            else:
                cov += cur_e - cur_s
                cur_s, cur_e = a, b
        if cur_e is not None:
            cov += cur_e - cur_s
        return cov


def _parse_translation_detail(detail: str) -> tuple:
    """Parse the engine's ``iss=..;lat=..;hid=..`` event detail."""
    vals = {"iss": 0.0, "lat": 0.0, "hid": 0.0}
    for part in detail.split(";"):
        key, _, raw = part.partition("=")
        if key in vals and raw:
            vals[key] = float(raw)
    return vals["iss"], vals["lat"], vals["hid"]


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass
class TranslationSplit:
    """Launch-level decomposition of translation cycles."""

    total: float = 0.0       # issue slots + chain cycles, all requests
    hidden: float = 0.0      # absorbed by the memory bubble / overlap
    exposed: float = 0.0     # landed on the warp with no cover
    issue_slots: float = 0.0  # issue-server share of ``total``
    events: int = 0

    @property
    def hidden_fraction(self) -> float:
        return self.hidden / self.total if self.total > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "hidden": self.hidden,
            "exposed": self.exposed,
            "issue_slots": self.issue_slots,
            "events": self.events,
            "hidden_fraction": self.hidden_fraction,
        }


@dataclass
class AttributionReport:
    """Everything the analyzer derives from one launch's trace."""

    launch_cycles: float = 0.0
    warps: int = 0
    sms: int = 0
    events: int = 0
    dropped: int = 0
    issue_cycles: float = 0.0
    stall_cycles: dict = field(default_factory=dict)
    idle_cycles: float = 0.0
    warp_rows: list = field(default_factory=list)
    critical_path: dict = field(default_factory=dict)
    critical_path_cycles: float = 0.0
    translation: TranslationSplit = field(
        default_factory=TranslationSplit)

    def to_dict(self) -> dict:
        return {
            "launch_cycles": self.launch_cycles,
            "warps": self.warps,
            "sms": self.sms,
            "events": self.events,
            "dropped": self.dropped,
            "issue_cycles": self.issue_cycles,
            "stall_cycles": dict(self.stall_cycles),
            "idle_cycles": self.idle_cycles,
            "warp_rows": [dict(r) for r in self.warp_rows],
            "critical_path": dict(self.critical_path),
            "critical_path_cycles": self.critical_path_cycles,
            "translation": self.translation.to_dict(),
        }

    def to_component(self) -> dict:
        """The ``components.attribution`` section of a schema-v5
        launch profile (flat numbers so profiles stay mergeable)."""
        t = self.translation
        return {
            "translation_cycles": t.total,
            "translation_hidden": t.hidden,
            "translation_exposed": t.exposed,
            "hidden_fraction": t.hidden_fraction,
            "critical_path_cycles": self.critical_path_cycles,
            "attributed": 1,
        }


# ----------------------------------------------------------------------
# Analyzer
# ----------------------------------------------------------------------
def attribute_events(events: Iterable[TraceEvent], *,
                     dropped: int = 0,
                     launch_cycles: Optional[float] = None,
                     ) -> AttributionReport:
    """Attribute one launch's trace events.

    ``dropped`` is the tracer's overflow count; a nonzero value raises
    :class:`TruncatedTraceError`.  ``launch_cycles`` overrides the span
    inferred from the events (useful when the caller knows the true
    launch length).
    """
    if dropped:
        raise TruncatedTraceError(
            f"trace dropped {dropped} events at the Tracer cap; "
            "attribution over a truncated timeline would be wrong — "
            "raise Tracer(max_events=...) or shrink the launch")
    events = list(events)
    report = AttributionReport(dropped=0, events=len(events))
    if not events:
        return report

    t0 = min(e.start for e in events)
    t1 = max(e.end for e in events)
    if launch_cycles is not None:
        t1 = max(t1, t0 + launch_cycles)
    span = t1 - t0
    report.launch_cycles = span

    issue_by_sm: dict = {}
    queue_by_sm: dict = {}
    stalls_by_sm: dict = {}
    per_warp: dict = {}
    translations: list = []
    warp_sm: dict = {}

    for e in events:
        warp_sm.setdefault(e.warp, e.sm)
        if e.kind == "issue":
            issue_by_sm.setdefault(e.sm, _SMIntervals()).add(
                e.start, e.end, e.warp)
            w = per_warp.setdefault(e.warp, {"issue": 0.0, "stalls": []})
            w["issue"] += e.duration
        elif e.kind == "stall":
            reason = e.detail or "unknown"
            if reason == "issue_queue":
                queue_by_sm.setdefault(e.sm, _SMIntervals()).add(
                    e.start, e.end, e.warp)
            stalls_by_sm.setdefault(e.sm, []).append(
                (e.start, e.end, reason))
            w = per_warp.setdefault(e.warp, {"issue": 0.0, "stalls": []})
            w["stalls"].append(e)
        elif e.kind == "translation":
            translations.append(e)

    for idx in issue_by_sm.values():
        idx.freeze()
    for idx in queue_by_sm.values():
        idx.freeze()

    report.warps = len(per_warp)
    report.sms = len({sm for sm in warp_sm.values()})

    # -- per-warp accounting ------------------------------------------
    stall_totals: dict = {}
    empty = _SMIntervals()
    for warp, acc in sorted(per_warp.items()):
        sm = warp_sm.get(warp, -1)
        issue_idx = issue_by_sm.get(sm, empty)
        issue = acc["issue"]
        stall_total = 0.0
        hidden_stall = 0.0
        for e in acc["stalls"]:
            reason = e.detail or "unknown"
            stall_total += e.duration
            stall_totals[reason] = (stall_totals.get(reason, 0.0)
                                    + e.duration)
            hidden_stall += issue_idx.coverage(e.start, e.end,
                                               exclude=warp)
        idle = max(0.0, span - issue - stall_total)
        report.warp_rows.append({
            "warp": warp,
            "sm": sm,
            "cycles": span,
            "issue": issue,
            "stall": stall_total,
            "hidden": issue + hidden_stall,
            "exposed": stall_total - hidden_stall,
            "idle": idle,
        })
        report.issue_cycles += issue
    report.stall_cycles = dict(sorted(stall_totals.items()))
    report.idle_cycles = sum(r["idle"] for r in report.warp_rows)

    # -- launch critical path -----------------------------------------
    crit: dict = {}
    crit_cycles = 0.0
    for sm, idx in issue_by_sm.items():
        union = _union([(s, e) for s, e, _ in idx.items])
        gaps = _complement(union, t0, t1)
        if not gaps:
            continue
        gap_starts = [g[0] for g in gaps]
        gap_ends = [g[1] for g in gaps]
        weights: list = [{} for _ in gaps]
        for s, e, reason in stalls_by_sm.get(sm, []):
            gi = bisect_right(gap_ends, s)
            while gi < len(gaps) and gap_starts[gi] < e:
                ov = min(e, gap_ends[gi]) - max(s, gap_starts[gi])
                if ov > 0:
                    weights[gi][reason] = (weights[gi].get(reason, 0.0)
                                           + ov)
                gi += 1
        for (gs, ge), w in zip(gaps, weights):
            dur = ge - gs
            crit_cycles += dur
            total_w = sum(w.values())
            if total_w > 0:
                for reason, ov in w.items():
                    crit[reason] = (crit.get(reason, 0.0)
                                    + dur * ov / total_w)
            else:
                crit["idle"] = crit.get("idle", 0.0) + dur
    report.critical_path = dict(sorted(crit.items()))
    report.critical_path_cycles = crit_cycles

    # -- translation hidden-vs-exposed --------------------------------
    split = report.translation
    for e in translations:
        iss, lat, hid = _parse_translation_detail(e.detail)
        total = iss + lat + hid
        if total <= 0:
            continue
        span_len = e.duration
        sm = e.sm
        if span_len > 0:
            cov = issue_by_sm.get(sm, empty).coverage(
                e.start, e.end, exclude=e.warp) / span_len
            cont = queue_by_sm.get(sm, empty).coverage(
                e.start, e.end, exclude=e.warp) / span_len
            cov = min(1.0, cov)
            cont = min(1.0, cont)
        else:
            cov = cont = 0.0
        exposed = lat * (1.0 - cov) + iss * cont
        exposed = min(exposed, total)
        split.total += total
        split.exposed += exposed
        split.hidden += total - exposed
        split.issue_slots += iss
        split.events += 1
    return report


def attribute_tracer(tracer: Tracer, *,
                     launch_cycles: Optional[float] = None,
                     ) -> AttributionReport:
    """Attribute a live :class:`~repro.gpu.trace.Tracer`."""
    return attribute_events(tracer.events, dropped=tracer.dropped,
                            launch_cycles=launch_cycles)


def attribute_chrome_trace(trace: dict, *,
                           launch_cycles: Optional[float] = None,
                           ) -> AttributionReport:
    """Attribute an exported Chrome-trace dict (``--profile-dir``
    output, :meth:`Tracer.to_chrome_trace`)."""
    events, dropped = events_from_chrome_trace(trace)
    return attribute_events(events, dropped=dropped,
                            launch_cycles=launch_cycles)


def has_attribution_events(events: Iterable[TraceEvent]) -> bool:
    """Whether a trace carries the overlay kinds this module needs."""
    return any(e.kind in ATTRIBUTION_KINDS for e in events)
