"""``repro-attr`` — attribute traces and gate the perf trend record.

Two modes:

* **Attribution** (default): read trace JSON written by
  ``repro-experiments --profile-dir`` (or any
  :meth:`~repro.gpu.trace.Tracer.to_chrome_trace` export), run the
  cycle-attribution analyzer, and print the hidden-vs-exposed
  translation report.  Directories are scanned for ``trace-*.json``;
  ``--validate`` also schema-checks every ``profile-*.json`` found.
* **Trend compare** (``--compare``): diff the latest ``BENCH_trend.json``
  row against the previous one; exit 1 on a >10% regression of a
  tier-1 metric.  This is the CI perf gate.

Exit codes: 0 ok, 1 regression found, 2 usage / analysis error
(truncated trace, bad schema, missing files).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys


def _iter_inputs(paths: list) -> tuple[list, list]:
    """Expand CLI paths into (trace files, profile files)."""
    traces, profiles = [], []
    for path in paths:
        if os.path.isdir(path):
            traces.extend(sorted(glob.glob(
                os.path.join(path, "trace-*.json"))))
            profiles.extend(sorted(glob.glob(
                os.path.join(path, "profile-*.json"))))
        elif os.path.basename(path).startswith("profile-"):
            profiles.append(path)
        else:
            traces.append(path)
    return traces, profiles


def _cmd_attribute(args) -> int:
    from repro.harness.reporting import format_attribution
    from repro.telemetry.attribution import (
        TruncatedTraceError,
        attribute_chrome_trace,
    )
    from repro.telemetry.profile import validate_profile

    traces, profiles = _iter_inputs(args.paths)
    if args.validate:
        for path in profiles:
            with open(path) as f:
                doc = json.load(f)
            try:
                validate_profile(doc)
            except ValueError as exc:
                print(f"{path}: INVALID profile: {exc}",
                      file=sys.stderr)
                return 2
            note = ""
            series = doc.get("components", {}).get("timeseries", {})
            if series.get("enabled"):
                note = (f", {series.get('windows', 0)} sampled "
                        f"windows @ "
                        f"{series.get('window_cycles', 0):g} cycles")
            print(f"{path}: valid profile "
                  f"(schema v{doc.get('version')}{note})")
    if not traces:
        if args.validate and profiles:
            return 0
        print("repro-attr: no trace files found "
              "(expected trace-*.json; run repro-experiments with "
              "--profile-dir)", file=sys.stderr)
        return 2
    status = 0
    reports = []
    for path in traces:
        with open(path) as f:
            trace = json.load(f)
        try:
            report = attribute_chrome_trace(trace)
        except TruncatedTraceError as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            status = 2
            continue
        except ValueError as exc:
            print(f"{path}: cannot attribute: {exc}", file=sys.stderr)
            status = 2
            continue
        reports.append((path, report))
        if args.json:
            continue
        print(f"-- {path}")
        if report.events and not report.warp_rows:
            print("(trace has no attribution events; profile with "
                  "attribution enabled — repro-experiments "
                  "--attribute)")
        else:
            print(format_attribution(report, markdown=args.markdown))
        print()
    if args.json:
        json.dump({path: r.to_dict() for path, r in reports},
                  sys.stdout, indent=2, sort_keys=True)
        print()
    return status


def _cmd_compare(args) -> int:
    from repro.telemetry.trend import compare, load_trend

    try:
        doc = load_trend(args.trend_file)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"repro-attr: cannot read trend file "
              f"{args.trend_file}: {exc}", file=sys.stderr)
        return 2
    regressions, lines = compare(doc, threshold=args.threshold)
    print(f"trend file: {args.trend_file} "
          f"({len(doc.get('runs', []))} runs)")
    for line in lines:
        print(line)
    if regressions:
        print(f"\n{len(regressions)} tier-1 regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for reg in regressions:
            print(f"  {reg.describe()}", file=sys.stderr)
        return 1
    print("no tier-1 regressions")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-attr",
        description="Cycle attribution for profile/trace output, and "
                    "the benchmark trend gate.")
    parser.add_argument(
        "paths", nargs="*",
        help="trace JSON files or --profile-dir directories to "
             "attribute")
    parser.add_argument(
        "--markdown", action="store_true",
        help="render reports as Markdown instead of text")
    parser.add_argument(
        "--json", action="store_true",
        help="dump full reports as JSON instead of rendering")
    parser.add_argument(
        "--validate", action="store_true",
        help="schema-validate every profile-*.json found alongside "
             "the traces")
    parser.add_argument(
        "--compare", action="store_true",
        help="compare the two latest trend rows instead of "
             "attributing traces; exit 1 on a tier-1 regression")
    parser.add_argument(
        "--trend-file", default="BENCH_trend.json",
        help="trend record to compare (default: %(default)s)")
    parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="relative tier-1 regression that fails --compare "
             "(default: %(default)s)")
    args = parser.parse_args(argv)

    if args.compare:
        return _cmd_compare(args)
    if not args.paths:
        parser.error("give trace files / profile directories, "
                     "or --compare")
    return _cmd_attribute(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
