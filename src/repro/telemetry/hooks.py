"""Ambient profiler registration — the zero-cost-when-off switch.

The harness cannot thread a profiler argument through every experiment,
workload, and runner, so instrumented constructors (``AVM``, ``GPUfs``)
and :meth:`Device.launch_cfg` ask this module for the *current* profiler
instead.  When none is active — the default — ``current()`` returns
``None`` and every instrumentation site is a single pointer test.

The stack discipline supports nesting (a profiled experiment launching
a sub-profiled region); :func:`repro.telemetry.capture` is the public
entry point.
"""

from __future__ import annotations

_STACK: list = []


def current():
    """The innermost active profiler, or ``None``."""
    return _STACK[-1] if _STACK else None


def push(profiler) -> None:
    _STACK.append(profiler)


def pop(profiler) -> None:
    if not _STACK or _STACK[-1] is not profiler:
        raise RuntimeError("profiler deactivation out of order")
    _STACK.pop()


def gauge(name: str, fn) -> None:
    """Register an instantaneous-level probe (``fn()`` -> number) with
    the current profiler, if one is active and supports gauges.  The
    time-series sampler reads every registered gauge at each window
    close; with no active profiler this is a no-op — the zero-cost-
    when-off rule applies to gauges too."""
    profiler = current()
    register = getattr(profiler, "register_gauge", None)
    if register is not None:
        register(name, fn)
