"""The per-launch profile: schema, registry, and validation.

A :class:`LaunchProfile` is one kernel launch reduced to a stable,
JSON-serialisable document: launch geometry, engine counters, per-SM
utilisation, DRAM/PCIe server occupancy, a warp-stall-reason breakdown,
and the per-launch deltas of every registered component counter
(translation-layer :class:`~repro.core.metrics.APStats`, paging-layer
``PagingStats``, transfer-batcher stats, ...).

The document format is versioned (``schema`` / ``version`` keys) and
checked by :func:`validate_profile`, which is what the telemetry tests
assert against — downstream tooling can rely on the shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

SCHEMA_NAME = "repro.telemetry/launch-profile"
#: v2 added the ``components.readahead`` section (always present, like
#: ``translation``/``paging``) and flattened-histogram counters.
#: v3 added the ``components.sanitizer`` section (runtime invariant
#: checker, ``repro.analysis.sanitizer``).
#: v4 added the optional ``run`` section carried by *merged* suite
#: profiles (:func:`merge_profiles`): ``run.workers`` records how the
#: parallel runner distributed the suite.  Per-launch profiles omit it.
#: v5 added the ``components.attribution`` section (cycle attribution,
#: :mod:`repro.telemetry.attribution`): translation hidden/exposed
#: cycles, the launch critical-path length, and an ``attributed`` flag
#: (0 when no tracer was attached or the trace was truncated).
#: v6 added the ``components.timeseries`` section (cycle-window
#: sampling, :mod:`repro.telemetry.timeseries`): ``enabled`` flag,
#: window width, window count, and the per-window ``series`` list
#: (empty when sampling was off for the launch).
#: v7 added the ``components.syscalls`` section (warp-level syscall
#: layer, :mod:`repro.syscalls`): per-syscall invocation counts,
#: cycles spent blocked inside blocking calls, and bytes written back
#: to the host through the PCIe model.
#: v8 added the ``components.spans`` section (causal request spans,
#: :mod:`repro.telemetry.spans`): distinct request ids minted at warp
#: fault / syscall entry, the count of trace spans carrying one, and
#: their summed span-cycles.  All zero when no tracer was attached.
SCHEMA_VERSION = 8

#: Versions ``validate_profile`` accepts: current plus archived ones
#: whose required sections are a subset of what we still emit.
ACCEPTED_VERSIONS = frozenset({2, 3, 4, 5, 6, 7, SCHEMA_VERSION})

#: Required integer counters of ``run.workers`` when a ``run`` section
#: is present (v4+).
_RUN_WORKER_KEYS = ("count", "jobs", "points", "launches", "errors")

#: components.* keys required per version (cumulative: version N
#: requires every entry with ``since <= N``).
_COMPONENT_KEYS = (
    ("translation", 1, ("tlb_hit_rate", "tlb_hits", "tlb_misses",
                        "translation_faults")),
    ("paging", 1, ("minor_faults", "major_faults")),
    ("readahead", 2, ("issued", "hits", "wasted", "cancelled",
                      "hit_rate")),
    ("sanitizer", 3, ("warps_watched", "lockstep_violations",
                      "torn_writes", "pin_leaks")),
    ("attribution", 5, ("translation_cycles", "translation_hidden",
                        "translation_exposed", "hidden_fraction",
                        "critical_path_cycles", "attributed")),
    ("timeseries", 6, ("enabled", "window_cycles", "windows")),
    ("syscalls", 7, ("pread", "pwrite", "msync", "madvise",
                     "ftruncate", "blocked_cycles",
                     "writeback_bytes")),
    ("spans", 8, ("requests", "spans", "span_cycles")),
)


def _numeric_fields(obj) -> dict:
    """Numeric attributes of a stats object (dataclass or plain).

    A ``dict``-valued attribute holding numeric values (a histogram,
    e.g. ``ReadaheadStats.window_hist``) is flattened to
    ``<attr>_<bucket>`` keys so registries can delta and export it like
    any scalar counter.
    """
    out = {}
    for key, value in vars(obj).items():
        if isinstance(value, bool) or key.startswith("_"):
            continue
        if isinstance(value, (int, float)):
            out[key] = value
        elif isinstance(value, dict):
            for bucket, count in value.items():
                if isinstance(count, (int, float)) \
                        and not isinstance(count, bool):
                    out[f"{key}_{bucket}"] = count
    return out


class MetricsRegistry:
    """Aggregates component stats objects into per-launch deltas.

    Components register once (``register("translation", avm.stats)``);
    the registry snapshots each object's numeric fields as a baseline.
    :meth:`collect` returns, per kind, the *sum of deltas* since the
    last collection — so stats objects that accumulate across launches
    (one ``AVM`` reused by several kernels) still yield per-launch
    numbers, and several instances of the same kind (one ``AVM`` per
    warp) aggregate naturally.
    """

    def __init__(self):
        self._components: list[tuple[str, Any, dict]] = []
        self._ids: set[int] = set()

    def register(self, kind: str, stats: Any) -> None:
        if id(stats) in self._ids:
            return
        self._ids.add(id(stats))
        self._components.append((kind, stats, _numeric_fields(stats)))

    def kinds(self) -> list[str]:
        return sorted({kind for kind, _, _ in self._components})

    def components(self) -> list:
        """Live ``(kind, stats_obj)`` pairs — what the time-series
        sampler probes by snapshot at window boundaries (with its own
        baselines, so probing never disturbs :meth:`collect`)."""
        return [(kind, stats) for kind, stats, _ in self._components]

    def collect(self) -> dict:
        """Summed per-kind deltas since the last collect; rebaselines."""
        out: dict[str, dict] = {}
        for i, (kind, stats, baseline) in enumerate(self._components):
            now = _numeric_fields(stats)
            agg = out.setdefault(kind, {})
            for key, value in now.items():
                delta = value - baseline.get(key, 0)
                agg[key] = agg.get(key, 0) + delta
            self._components[i] = (kind, stats, now)
        # Derived metrics the paper reports directly.
        tr = out.get("translation")
        if tr is not None:
            lookups = tr.get("tlb_hits", 0) + tr.get("tlb_misses", 0)
            tr["tlb_hit_rate"] = (tr.get("tlb_hits", 0) / lookups
                                  if lookups else 0.0)
        ra = out.get("readahead")
        if ra is not None:
            issued = ra.get("issued", 0)
            ra["hit_rate"] = (ra.get("hits", 0) / issued
                              if issued else 0.0)
        return out


@dataclass
class LaunchProfile:
    """One launch, fully accounted.  See module docstring."""

    index: int
    name: str
    spec: dict
    launch: dict
    engine: dict
    issue: dict
    sms: list = field(default_factory=list)
    dram: dict = field(default_factory=dict)
    pcie: dict = field(default_factory=dict)
    stalls: dict = field(default_factory=dict)
    components: dict = field(default_factory=dict)
    trace: dict | None = None

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_NAME,
            "version": SCHEMA_VERSION,
            "index": self.index,
            "name": self.name,
            "spec": self.spec,
            "launch": self.launch,
            "engine": self.engine,
            "issue": self.issue,
            "sms": self.sms,
            "dram": self.dram,
            "pcie": self.pcie,
            "stalls": self.stalls,
            "components": self.components,
            "trace": self.trace,
        }

    @property
    def cycles(self) -> float:
        return self.launch["cycles"]


#: Required keys and their value types, per section of the document.
#: ``validate_profile`` walks this — it doubles as the schema reference
#: quoted in ``docs/observability.md``.
PROFILE_SCHEMA = {
    "spec": {"name": str, "num_sms": int, "clock_hz": (int, float),
             "warp_size": int},
    "launch": {"grid": int, "block_threads": int, "blocks_per_sm": int,
               "cycles": (int, float), "seconds": (int, float)},
    "issue": {"slot_utilization": (int, float),
              "instructions_per_cycle": (int, float)},
    "dram": {"bytes": int, "transactions": int,
             "bandwidth_gbs": (int, float), "occupancy": (int, float),
             "queue_cycles": (int, float), "queued_accesses": int},
    "pcie": {"bytes": int, "transactions": int,
             "busy_cycles": (int, float), "occupancy": (int, float)},
}

_SM_SCHEMA = {"sm": int, "busy_cycles": (int, float),
              "idle_cycles": (int, float), "utilization": (int, float)}


def validate_profile(doc: dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a valid profile document."""
    if not isinstance(doc, dict):
        raise ValueError("profile must be a JSON object")
    if doc.get("schema") != SCHEMA_NAME:
        raise ValueError(f"bad schema marker: {doc.get('schema')!r}")
    version = doc.get("version")
    if version not in ACCEPTED_VERSIONS:
        raise ValueError(f"unsupported version: {version!r}")
    for section, fields in PROFILE_SCHEMA.items():
        sub = doc.get(section)
        if not isinstance(sub, dict):
            raise ValueError(f"missing section {section!r}")
        for key, types in fields.items():
            if key not in sub:
                raise ValueError(f"{section}.{key} missing")
            if not isinstance(sub[key], types) or isinstance(
                    sub[key], bool):
                raise ValueError(
                    f"{section}.{key} has type "
                    f"{type(sub[key]).__name__}, wanted {types}")
    sms = doc.get("sms")
    if not isinstance(sms, list):
        raise ValueError("sms must be a list")
    for entry in sms:
        for key, types in _SM_SCHEMA.items():
            if key not in entry or isinstance(entry[key], bool) \
                    or not isinstance(entry[key], types):
                raise ValueError(f"sms[].{key} missing or mistyped")
    for section in ("engine", "stalls", "components"):
        if not isinstance(doc.get(section), dict):
            raise ValueError(f"{section} must be an object")
    components = doc["components"]
    for kind, since, keys in _COMPONENT_KEYS:
        if version < since:
            continue
        sub = components.get(kind)
        if not isinstance(sub, dict):
            raise ValueError(f"components.{kind} missing")
        for key in keys:
            if not isinstance(sub.get(key), (int, float)) \
                    or isinstance(sub.get(key), bool):
                raise ValueError(
                    f"components.{kind}.{key} missing or mistyped")
    if version >= 6:
        # timeseries carries the one non-scalar component payload: the
        # per-window series list (possibly empty when sampling is off).
        series = components["timeseries"].get("series")
        if not isinstance(series, list):
            raise ValueError("components.timeseries.series must be "
                             "a list")
        for record in series:
            if not isinstance(record, dict) \
                    or not isinstance(record.get("window"), int) \
                    or not isinstance(record.get("sm_busy"), list):
                raise ValueError(
                    "components.timeseries.series[] records need "
                    "integer 'window' and list 'sm_busy' keys")
    for key, value in doc["stalls"].items():
        if not isinstance(value, (int, float)):
            raise ValueError(f"stalls.{key} must be numeric")
    trace = doc.get("trace")
    if trace is not None and not isinstance(trace, dict):
        raise ValueError("trace must be an object or null")
    run = doc.get("run")
    if run is not None:
        if version < 4:
            raise ValueError(f"run section requires version >= 4, "
                             f"got {version}")
        if not isinstance(run, dict) \
                or not isinstance(run.get("workers"), dict):
            raise ValueError("run.workers must be an object")
        workers = run["workers"]
        for key in _RUN_WORKER_KEYS:
            if not isinstance(workers.get(key), int) \
                    or isinstance(workers.get(key), bool):
                raise ValueError(f"run.workers.{key} missing or "
                                 f"mistyped")


def merge_profiles(docs: list, *, name: str = "suite",
                   workers: dict | None = None) -> dict:
    """Merge per-launch profile documents into one *suite profile*.

    This is how the parallel experiment runner folds the profiles its
    workers captured back into a single document: counters (engine,
    DRAM/PCIe traffic, stalls, component deltas) are summed; rates and
    occupancies are recomputed from the summed totals (occupancies are
    weighted by launch cycles, so a long launch counts for more than a
    short one); per-SM busy cycles are accumulated by SM id.  The
    result is a valid current-schema profile whose ``run.workers``
    section records the fan-out (worker/point/launch/error counts).

    ``docs`` may come from different schema versions; missing component
    sections are zero-filled so the merged document always carries the
    current version's full component set.
    """
    if not docs:
        raise ValueError("merge_profiles needs at least one profile")
    for doc in docs:
        validate_profile(doc)

    total_cycles = sum(d["launch"]["cycles"] for d in docs)
    total_seconds = sum(d["launch"]["seconds"] for d in docs)

    def wmean(getter) -> float:
        """Launch-cycle-weighted mean of a per-launch ratio."""
        if not total_cycles:
            return 0.0
        return sum(getter(d) * d["launch"]["cycles"]
                   for d in docs) / total_cycles

    engine: dict = {}
    stalls: dict = {}
    components: dict = {}
    sm_busy: dict = {}
    for doc in docs:
        for key, value in doc["engine"].items():
            engine[key] = engine.get(key, 0) + value
        for key, value in doc["stalls"].items():
            stalls[key] = stalls.get(key, 0) + value
        for kind, counters in doc["components"].items():
            if kind == "timeseries":
                continue      # concatenated below, not summed
            agg = components.setdefault(kind, {})
            for key, value in counters.items():
                agg[key] = agg.get(key, 0) + value
        for sm in doc["sms"]:
            sm_busy[sm["sm"]] = (sm_busy.get(sm["sm"], 0.0)
                                 + sm["busy_cycles"])

    # Worker time-series streams concatenate (each window keeps its
    # per-launch index and gains a ``launch`` source key) — summing
    # windows across launches would be meaningless.
    from repro.telemetry.timeseries import merge_series
    components["timeseries"] = merge_series(docs)

    # Zero-fill every component section the current schema requires,
    # then recompute the derived rates from the summed raw counters.
    for kind, _since, keys in _COMPONENT_KEYS:
        sub = components.setdefault(kind, {})
        for key in keys:
            sub.setdefault(key, 0)
    tr = components["translation"]
    lookups = tr.get("tlb_hits", 0) + tr.get("tlb_misses", 0)
    tr["tlb_hit_rate"] = (tr.get("tlb_hits", 0) / lookups
                          if lookups else 0.0)
    ra = components["readahead"]
    ra["hit_rate"] = (ra.get("hits", 0) / ra["issued"]
                      if ra.get("issued") else 0.0)
    attr = components["attribution"]
    attr["hidden_fraction"] = (
        attr.get("translation_hidden", 0)
        / attr["translation_cycles"]
        if attr.get("translation_cycles") else 0.0)

    dram_bytes = sum(d["dram"]["bytes"] for d in docs)
    dram_queue = sum(d["dram"].get("queue_cycles", 0) for d in docs)
    dram_accesses = sum(d["dram"].get("queued_accesses", 0)
                        for d in docs)
    pcie_busy = sum(d["pcie"]["busy_cycles"] for d in docs)
    total_instr = sum(d["issue"]["instructions_per_cycle"]
                      * d["launch"]["cycles"] for d in docs)

    merged = {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "index": 0,
        "name": name,
        "spec": dict(docs[0]["spec"]),
        "launch": {
            "grid": sum(d["launch"]["grid"] for d in docs),
            "block_threads": max(d["launch"]["block_threads"]
                                 for d in docs),
            "blocks_per_sm": max(d["launch"]["blocks_per_sm"]
                                 for d in docs),
            "cycles": total_cycles,
            "seconds": total_seconds,
        },
        "engine": engine,
        "issue": {
            "slot_utilization": wmean(
                lambda d: d["issue"]["slot_utilization"]),
            "instructions_per_cycle": (total_instr / total_cycles
                                       if total_cycles else 0.0),
        },
        "sms": [{
            "sm": sm,
            "busy_cycles": busy,
            "idle_cycles": max(total_cycles - busy, 0.0),
            "utilization": busy / total_cycles if total_cycles else 0.0,
        } for sm, busy in sorted(sm_busy.items())],
        "dram": {
            "bytes": dram_bytes,
            "transactions": sum(d["dram"]["transactions"]
                                for d in docs),
            "bandwidth_gbs": (dram_bytes / total_seconds / 1e9
                              if total_seconds else 0.0),
            "occupancy": wmean(lambda d: d["dram"]["occupancy"]),
            "queue_cycles": dram_queue,
            "queued_accesses": dram_accesses,
            "mean_queue_cycles": (dram_queue / dram_accesses
                                  if dram_accesses else 0.0),
        },
        "pcie": {
            "bytes": sum(d["pcie"]["bytes"] for d in docs),
            "transactions": sum(d["pcie"]["transactions"]
                                for d in docs),
            "busy_cycles": pcie_busy,
            "occupancy": (pcie_busy / total_cycles
                          if total_cycles else 0.0),
        },
        "stalls": stalls,
        "components": components,
        "trace": None,
        "run": {
            "workers": dict({"count": 1, "jobs": 1, "points": 0,
                             "launches": len(docs), "errors": 0},
                            **(workers or {})),
        },
    }
    validate_profile(merged)
    return merged
