"""The per-launch profiler and its activation context.

Two ways to profile:

* **Explicit** — create a :class:`Profiler` and pass it to
  :meth:`Device.launch(..., profiler=prof) <repro.gpu.device.Device>`;
  attach component stats with :meth:`Profiler.register`.
* **Ambient** — ``with capture() as prof:`` activates the profiler for
  every launch in the block, and instrumented constructors (``AVM``,
  ``GPUfs``) register their counters automatically.  This is what
  ``repro-experiments --profile-dir`` uses: experiments need no changes.

Each launch appends one :class:`~repro.telemetry.profile.LaunchProfile`
to ``prof.profiles`` and (up to ``max_traces``) one execution trace to
``prof.traces``; :meth:`Profiler.write` serialises both to a directory.
"""

from __future__ import annotations

import contextlib
import json
import os
import re

from repro.gpu.trace import Tracer
from repro.telemetry import hooks
from repro.telemetry.profile import LaunchProfile, MetricsRegistry


class Profiler:
    """Collects one :class:`LaunchProfile` per launch it observes."""

    def __init__(self, trace: bool = True, max_traces: int = 8,
                 max_trace_events: int = 200_000,
                 attribution: bool = False,
                 timeseries: bool = False,
                 window_cycles: float | None = None,
                 series_sink=None):
        self.registry = MetricsRegistry()
        self.profiles: list[LaunchProfile] = []
        self.traces: list = []           # parallel to profiles; None ok
        self.trace = trace
        self.max_traces = max_traces
        self.max_trace_events = max_trace_events
        # Run the cycle-attribution analyzer per traced launch and
        # store its report in ``components.attribution``.  Off by
        # default: the analyzer walks the whole event list.
        self.attribution = attribution
        # Cycle-window sampling (repro.telemetry.timeseries).  Off by
        # default: launches see no sampler and pay only the engine's
        # ``is not None`` pointer test per event.  ``series_sink`` is
        # called with each window record as it closes (streaming
        # export); the profile carries the series either way.
        self.timeseries = timeseries
        self.window_cycles = window_cycles
        self.series_sink = series_sink
        self._gauges: list = []          # (name, fn) pairs

    # ------------------------------------------------------------------
    def register(self, kind: str, stats) -> None:
        """Attach a component stats object (idempotent per object)."""
        self.registry.register(kind, stats)

    def register_gauge(self, name: str, fn) -> None:
        """Attach an instantaneous-level probe (``fn()`` -> number),
        read by the time-series sampler at each window close.  Several
        registrations under one name sum (e.g. frames in use across
        two GPUfs instances)."""
        self._gauges.append((name, fn))

    def begin_launch(self):
        """Called by the device at launch start; returns the launch's
        tracer (or ``None`` once ``max_traces`` traces are held)."""
        if self.trace and len(self.traces) < self.max_traces:
            return Tracer(max_events=self.max_trace_events)
        return None

    def begin_sampling(self, spec, tracer=None):
        """Called by the device at launch start; returns the launch's
        :class:`~repro.telemetry.timeseries.TimeseriesSampler`, or
        ``None`` when sampling is off."""
        if not self.timeseries:
            return None
        from repro.telemetry.timeseries import (
            DEFAULT_WINDOW_CYCLES,
            TimeseriesSampler,
        )
        return TimeseriesSampler(
            num_sms=spec.num_sms,
            window_cycles=(self.window_cycles
                           if self.window_cycles
                           else DEFAULT_WINDOW_CYCLES),
            sink=self.series_sink,
            tracer=tracer,
            probes=self.registry,
            gauges=self._gauges)

    # ------------------------------------------------------------------
    def record_launch(self, *, device, cfg, occ, engine,
                      tracer=None, sampler=None) -> LaunchProfile:
        """Reduce one finished launch to a :class:`LaunchProfile`."""
        spec = device.spec
        stats = engine.stats
        cycles = stats.cycles
        prof = engine.profile
        seconds = spec.cycles_to_seconds(cycles)

        sms = []
        if prof is not None:
            for sm, busy in enumerate(prof.sm_busy):
                sms.append({
                    "sm": sm,
                    "busy_cycles": busy,
                    "idle_cycles": max(cycles - busy, 0.0),
                    "utilization": busy / cycles if cycles else 0.0,
                })
        total_sms = max(len(sms), 1)
        dram_accesses = (prof.dram_queued_accesses
                         if prof is not None else 0)
        profile = LaunchProfile(
            index=len(self.profiles),
            name=getattr(cfg.kernel, "__name__", "kernel"),
            spec={
                "name": spec.name,
                "num_sms": spec.num_sms,
                "clock_hz": spec.clock_hz,
                "warp_size": spec.warp_size,
            },
            launch={
                "grid": cfg.grid,
                "block_threads": cfg.block_threads,
                "blocks_per_sm": occ.blocks_per_sm,
                "cycles": cycles,
                "seconds": seconds,
            },
            engine=_engine_dict(stats),
            issue={
                "slot_utilization": (stats.issue_busy
                                     / (cycles * total_sms)
                                     if cycles else 0.0),
                "instructions_per_cycle": (stats.instructions / cycles
                                           if cycles else 0.0),
            },
            sms=sms,
            dram={
                "bytes": stats.dram_bytes,
                "transactions": stats.dram_transactions,
                "bandwidth_gbs": stats.dram_bandwidth(spec) / 1e9,
                "occupancy": (stats.dram_busy / cycles
                              if cycles else 0.0),
                "queue_cycles": (prof.dram_queue_cycles
                                 if prof is not None else 0.0),
                "queued_accesses": dram_accesses,
                "mean_queue_cycles": (
                    prof.dram_queue_cycles / dram_accesses
                    if prof is not None and dram_accesses else 0.0),
            },
            pcie={
                "bytes": stats.pcie_bytes,
                "transactions": stats.pcie_transactions,
                "busy_cycles": stats.pcie_busy,
                "occupancy": (stats.pcie_busy / cycles
                              if cycles else 0.0),
            },
            stalls=dict(prof.stalls) if prof is not None else {},
            components=_merge_components(self.registry.collect()),
            trace=({"events": len(tracer.events),
                    "dropped": tracer.dropped}
                   if tracer is not None else None),
        )
        if sampler is not None:
            profile.components["timeseries"] = sampler.to_component()
        if tracer is not None:
            from repro.telemetry.spans import spans_component
            profile.components["spans"] = spans_component(tracer.events)
        if self.attribution and tracer is not None \
                and not tracer.dropped:
            # A truncated trace is refused by the analyzer; the profile
            # then keeps the zeroed section with ``attributed == 0``.
            from repro.telemetry.attribution import attribute_tracer
            report = attribute_tracer(tracer, launch_cycles=cycles)
            profile.components["attribution"] = report.to_component()
        self.profiles.append(profile)
        self.traces.append(tracer)
        return profile

    def record_cluster(self, *, spec, launches, occ, cycles, stats,
                       engine_profile=None, tracer=None,
                       series=None) -> LaunchProfile:
        """Reduce one merged sharded cluster launch to a
        :class:`LaunchProfile`.

        The sharded launcher (:mod:`repro.gpu.sharded`) calls this with
        already-merged engine stats/profile, the merged tracer, and the
        merged ``components.timeseries`` section — so ambient profiling
        (:func:`capture`) covers ``launch_cluster(jobs=N)`` exactly as
        it covers single-device launches.  ``sms`` spans every shard's
        SM range in shard order.
        """
        seconds = spec.cycles_to_seconds(cycles)
        sms = []
        if engine_profile is not None:
            for sm, busy in enumerate(engine_profile.sm_busy):
                sms.append({
                    "sm": sm,
                    "busy_cycles": busy,
                    "idle_cycles": max(cycles - busy, 0.0),
                    "utilization": busy / cycles if cycles else 0.0,
                })
        total_sms = max(len(sms), 1)
        dram_accesses = (engine_profile.dram_queued_accesses
                         if engine_profile is not None else 0)
        name = getattr(launches[0].kernel, "__name__", "kernel")
        if len(launches) > 1:
            name = f"{name}+{len(launches) - 1}"
        profile = LaunchProfile(
            index=len(self.profiles),
            name=name,
            spec={
                "name": spec.name,
                "num_sms": spec.num_sms,
                "clock_hz": spec.clock_hz,
                "warp_size": spec.warp_size,
            },
            launch={
                "grid": sum(launch.grid for launch in launches),
                "block_threads": max(launch.block_threads
                                     for launch in launches),
                "blocks_per_sm": occ.blocks_per_sm,
                "cycles": cycles,
                "seconds": seconds,
            },
            engine=_engine_dict(stats),
            issue={
                "slot_utilization": (stats.issue_busy
                                     / (cycles * total_sms)
                                     if cycles else 0.0),
                "instructions_per_cycle": (stats.instructions / cycles
                                           if cycles else 0.0),
            },
            sms=sms,
            dram={
                "bytes": stats.dram_bytes,
                "transactions": stats.dram_transactions,
                "bandwidth_gbs": stats.dram_bandwidth(spec) / 1e9,
                "occupancy": (stats.dram_busy / cycles
                              if cycles else 0.0),
                "queue_cycles": (engine_profile.dram_queue_cycles
                                 if engine_profile is not None
                                 else 0.0),
                "queued_accesses": dram_accesses,
                "mean_queue_cycles": (
                    engine_profile.dram_queue_cycles / dram_accesses
                    if engine_profile is not None and dram_accesses
                    else 0.0),
            },
            pcie={
                "bytes": stats.pcie_bytes,
                "transactions": stats.pcie_transactions,
                "busy_cycles": stats.pcie_busy,
                "occupancy": (stats.pcie_busy / cycles
                              if cycles else 0.0),
            },
            stalls=(dict(engine_profile.stalls)
                    if engine_profile is not None else {}),
            components=_merge_components(self.registry.collect()),
            trace=({"events": len(tracer.events),
                    "dropped": tracer.dropped}
                   if tracer is not None else None),
        )
        if series is not None:
            profile.components["timeseries"] = series
        if tracer is not None:
            from repro.telemetry.spans import spans_component
            profile.components["spans"] = spans_component(tracer.events)
        if self.attribution and tracer is not None \
                and not tracer.dropped:
            from repro.telemetry.attribution import attribute_tracer
            report = attribute_tracer(tracer, launch_cycles=cycles)
            profile.components["attribution"] = report.to_component()
        self.profiles.append(profile)
        self.traces.append(tracer)
        return profile

    # ------------------------------------------------------------------
    @property
    def last(self) -> LaunchProfile | None:
        return self.profiles[-1] if self.profiles else None

    def longest(self) -> LaunchProfile | None:
        """The launch that dominated wall time — usually the one worth
        looking at first."""
        if not self.profiles:
            return None
        return max(self.profiles, key=lambda p: p.cycles)

    def write(self, directory, spec=None) -> list[str]:
        """Write one profile JSON (and trace JSON, when held) per
        launch; returns the paths written."""
        os.makedirs(directory, exist_ok=True)
        written = []
        for profile, tracer in zip(self.profiles, self.traces):
            slug = re.sub(r"[^A-Za-z0-9_.-]", "_", profile.name)
            stem = f"{profile.index:03d}-{slug}"
            path = os.path.join(directory, f"profile-{stem}.json")
            with open(path, "w") as f:
                json.dump(profile.to_dict(), f, indent=2, sort_keys=True)
            written.append(path)
            if tracer is not None and tracer.events:
                # Only clock_hz is needed to convert cycles to us; the
                # profile recorded it, so callers need not pass a spec.
                trace_spec = spec if spec is not None else _Clock(
                    profile.spec["clock_hz"])
                tpath = os.path.join(directory, f"trace-{stem}.json")
                with open(tpath, "w") as f:
                    json.dump(tracer.to_chrome_trace(trace_spec), f)
                written.append(tpath)
        return written


def write_profile_docs(directory, docs, tracers=None) -> list[str]:
    """Write already-serialised profile documents (and, when held,
    their tracers) to ``directory``; returns the paths written.

    The parallel runner ships ``LaunchProfile.to_dict()`` documents
    back from spawn workers — this is :meth:`Profiler.write` for those
    plain dicts.  ``tracers`` is an optional parallel list; entries are
    ``None`` for launches whose trace stayed in the worker.
    """
    os.makedirs(directory, exist_ok=True)
    tracers = tracers or []
    written = []
    for i, doc in enumerate(docs):
        slug = re.sub(r"[^A-Za-z0-9_.-]", "_", doc["name"])
        stem = f"{doc['index']:03d}-{slug}"
        path = os.path.join(directory, f"profile-{stem}.json")
        with open(path, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
        written.append(path)
        tracer = tracers[i] if i < len(tracers) else None
        if tracer is not None and tracer.events:
            tpath = os.path.join(directory, f"trace-{stem}.json")
            with open(tpath, "w") as f:
                json.dump(tracer.to_chrome_trace(
                    _Clock(doc["spec"]["clock_hz"])), f)
            written.append(tpath)
    return written


def _merge_components(collected: dict) -> dict:
    """Overlay collected counters on zeroed translation/paging sections.

    A launch that never touched the translation or paging layers still
    gets those sections (all zero), so the profile schema is stable —
    consumers can always read ``translation.tlb_hit_rate`` and
    ``paging.minor_faults``.  Imported lazily: by record time the stack
    is loaded, and module level would be circular (core/paging import
    telemetry's hooks).
    """
    from repro.analysis.sanitizer import SanitizerStats
    from repro.core.metrics import APStats
    from repro.paging.gpufs import PagingStats
    from repro.readahead import ReadaheadStats
    from repro.syscalls import SyscallStats
    from repro.telemetry.profile import _numeric_fields

    components = {
        "translation": dict(_numeric_fields(APStats()),
                            tlb_hit_rate=0.0),
        "paging": _numeric_fields(PagingStats()),
        "syscalls": _numeric_fields(SyscallStats()),
        "readahead": dict(_numeric_fields(ReadaheadStats()),
                          hit_rate=0.0),
        "sanitizer": _numeric_fields(SanitizerStats()),
        "attribution": {
            "translation_cycles": 0.0,
            "translation_hidden": 0.0,
            "translation_exposed": 0.0,
            "hidden_fraction": 0.0,
            "critical_path_cycles": 0.0,
            "attributed": 0,
        },
        "timeseries": {
            "enabled": 0,
            "window_cycles": 0.0,
            "windows": 0,
            "dropped_windows": 0,
            "series": [],
        },
        "spans": {
            "requests": 0,
            "spans": 0,
            "span_cycles": 0.0,
        },
    }
    for kind, counters in collected.items():
        components.setdefault(kind, {}).update(counters)
    return components


class _Clock:
    """Minimal spec stand-in for trace export (cycles -> us)."""

    def __init__(self, clock_hz: float):
        self.clock_hz = clock_hz


def _engine_dict(stats) -> dict:
    out = {}
    for key, value in vars(stats).items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[key] = value
    return out


@contextlib.contextmanager
def capture(**kwargs):
    """Activate a :class:`Profiler` for every launch in the block::

        with capture() as prof:
            run_memcpy(device, use_apointers=True, width=4)
        prof.write("/tmp/profiles")
    """
    profiler = Profiler(**kwargs)
    hooks.push(profiler)
    try:
        yield profiler
    finally:
        hooks.pop(profiler)
