"""``repro-spans`` — query causal request spans in trace exports.

The paging/translation/syscall layers stamp every span they record
with a *request id* minted at warp fault / syscall entry
(:meth:`repro.gpu.kernel.WarpContext.begin_request`), so one logical
request — a syscall whose page loop faults, whose fault stages a PCIe
transfer, whose streaming pattern triggers readahead — appears in the
Chrome trace as a group of spans sharing one ``args.req``.  This
module groups them back into per-request summaries and reports:

* the slowest requests, with a per-stage cycle breakdown;
* per-stage latency percentiles (p50/p90/p99) across all requests;
* fan-out per request (child spans under the minting span).

Inputs are the ``trace-*.json`` files written by ``repro-experiments
--profile-dir`` or :meth:`Profiler.write` — including merged sharded
traces, whose request ids are rebased per shard and therefore stay
distinct.  Exit codes: 0 ok, 2 usage error (no trace files).
"""

from __future__ import annotations

import argparse
import glob
import json
import math
import os
import sys
from dataclasses import dataclass, field
from typing import Iterable

from repro.gpu.trace import TraceEvent, events_from_chrome_trace

__all__ = [
    "RequestSummary",
    "collect_requests",
    "format_spans_report",
    "spans_component",
    "stage_percentiles",
]

#: Percentiles the per-stage table reports (nearest-rank).
PERCENTILES = (0.50, 0.90, 0.99)


@dataclass
class RequestSummary:
    """All spans of one causal request, aggregated."""

    req: str
    warp: int
    sm: int
    start: float
    end: float
    spans: int = 0
    #: Total span-cycles per stage kind ("syscall", "page_in", ...).
    stages: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def fanout(self) -> int:
        """Child spans under the minting span (0 = a lone span)."""
        return max(self.spans - 1, 0)

    def to_dict(self) -> dict:
        return {
            "req": self.req,
            "warp": self.warp,
            "sm": self.sm,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "spans": self.spans,
            "fanout": self.fanout,
            "stages": dict(sorted(self.stages.items())),
        }


def collect_requests(events: Iterable[TraceEvent]) -> list:
    """Group request-stamped spans into :class:`RequestSummary` rows,
    sorted by request start time (ties broken by id) — deterministic
    for a deterministic trace."""
    requests: dict[str, RequestSummary] = {}
    for e in events:
        if not e.req:
            continue
        summary = requests.get(e.req)
        if summary is None:
            summary = RequestSummary(req=e.req, warp=e.warp, sm=e.sm,
                                     start=e.start, end=e.end)
            requests[e.req] = summary
        else:
            summary.start = min(summary.start, e.start)
            summary.end = max(summary.end, e.end)
        summary.spans += 1
        summary.stages[e.kind] = (summary.stages.get(e.kind, 0.0)
                                  + e.duration)
    return sorted(requests.values(), key=lambda r: (r.start, r.req))


def _percentile(ordered: list, q: float) -> float:
    """Nearest-rank percentile of an ascending list (empty -> 0)."""
    if not ordered:
        return 0.0
    rank = max(int(math.ceil(q * len(ordered))), 1)
    return ordered[rank - 1]


def stage_percentiles(requests: list) -> dict:
    """Per-stage span-cycle percentiles across requests.

    For each stage kind, the distribution is the per-request total
    cycles spent in that stage (a request faulting three pages
    contributes one sample: the sum of its three ``page_in`` spans).
    """
    samples: dict[str, list] = {}
    for r in requests:
        for kind, cycles in r.stages.items():
            samples.setdefault(kind, []).append(cycles)
    out = {}
    for kind, vals in sorted(samples.items()):
        vals.sort()
        row = {"count": len(vals)}
        for q in PERCENTILES:
            row[f"p{int(q * 100)}"] = _percentile(vals, q)
        out[kind] = row
    return out


def spans_component(events: Iterable[TraceEvent]) -> dict:
    """The schema-v8 ``components.spans`` section for one trace."""
    requests = 0
    spans = 0
    span_cycles = 0.0
    seen: set[str] = set()
    for e in events:
        if not e.req:
            continue
        spans += 1
        span_cycles += e.duration
        if e.req not in seen:
            seen.add(e.req)
            requests += 1
    return {"requests": requests, "spans": spans,
            "span_cycles": span_cycles}


def format_spans_report(events: Iterable[TraceEvent], *,
                        top: int = 5) -> str:
    """Human-readable report over one trace's request spans."""
    requests = collect_requests(events)
    if not requests:
        return ("(trace has no request-stamped spans; profile with "
                "tracing enabled — repro-experiments --trace)")
    total_spans = sum(r.spans for r in requests)
    fanouts = sorted(r.fanout for r in requests)
    lines = [
        f"requests: {len(requests)}  spans: {total_spans}  "
        f"fan-out mean: {sum(fanouts) / len(fanouts):.2f}  "
        f"max: {fanouts[-1]}",
        "",
        f"slowest {min(top, len(requests))} requests (cycles):",
    ]
    slowest = sorted(requests, key=lambda r: (-r.duration, r.req))
    for r in slowest[:top]:
        stages = " ".join(f"{kind}={cycles:.0f}" for kind, cycles
                          in sorted(r.stages.items()))
        lines.append(f"  {r.req:16s} warp {r.warp:<4d} sm {r.sm:<3d} "
                     f"{r.duration:10.0f}  {stages}")
    lines.append("")
    lines.append("per-stage latency percentiles "
                 "(cycles per request):")
    header = "  {:18s} {:>7s}".format("stage", "count")
    for q in PERCENTILES:
        header += f" {'p' + str(int(q * 100)):>10s}"
    lines.append(header)
    for kind, row in stage_percentiles(requests).items():
        line = f"  {kind:18s} {row['count']:7d}"
        for q in PERCENTILES:
            line += f" {row[f'p{int(q * 100)}']:10.0f}"
        lines.append(line)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _iter_traces(paths: list) -> list:
    traces = []
    for path in paths:
        if os.path.isdir(path):
            traces.extend(sorted(glob.glob(
                os.path.join(path, "trace-*.json"))))
        else:
            traces.append(path)
    return traces


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-spans",
        description="Causal request-span reports over trace exports: "
                    "slowest requests, per-stage latency percentiles, "
                    "fan-out per fault.")
    parser.add_argument(
        "paths", nargs="+",
        help="trace JSON files or --profile-dir directories")
    parser.add_argument(
        "--top", type=int, default=5,
        help="slowest requests to list (default: %(default)s)")
    parser.add_argument(
        "--json", action="store_true",
        help="dump per-request summaries as JSON instead of rendering")
    args = parser.parse_args(argv)

    traces = _iter_traces(args.paths)
    if not traces:
        print("repro-spans: no trace files found (expected "
              "trace-*.json; run repro-experiments with --trace and "
              "--profile-dir)", file=sys.stderr)
        return 2
    dumped = {}
    for path in traces:
        with open(path) as f:
            trace = json.load(f)
        events, dropped = events_from_chrome_trace(trace)
        if dropped:
            print(f"{path}: WARNING: {dropped} events dropped at "
                  f"record time; request spans may be incomplete",
                  file=sys.stderr)
        if args.json:
            dumped[path] = {
                "requests": [r.to_dict()
                             for r in collect_requests(events)],
                "stages": stage_percentiles(collect_requests(events)),
                "component": spans_component(events),
            }
            continue
        print(f"-- {path}")
        print(format_spans_report(events, top=args.top))
        print()
    if args.json:
        json.dump(dumped, sys.stdout, indent=2, sort_keys=True)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
