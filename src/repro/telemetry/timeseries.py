"""Cycle-window time-series sampling — live metrics for long launches.

Everything else in :mod:`repro.telemetry` is post-hoc: a launch must
finish before its :class:`LaunchProfile` exists.  The
:class:`TimeseriesSampler` closes that gap.  The engine drives it from
the event loop behind the same ``is not None`` pointer test that guards
``EngineProfile`` — an unsampled launch pays one comparison per event
and nothing else — and the sampler buckets everything it sees into
fixed-width *windows* of simulated cycles:

* per-SM issue-server busy cycles (occupancy) and instructions issued;
* warp stall cycles keyed by reason (``memory``, ``barrier``, ...);
* DRAM bytes/transactions, bandwidth-server busy cycles, and queue
  delay; PCIe bytes and link busy cycles;
* per-window *deltas* of every component counter registered with the
  profiler (page-cache faults, TLB hits/misses, readahead hits,
  staging batches, ...), probed by snapshot at window boundaries so the
  per-dereference hot paths stay uninstrumented;
* *gauges* — instantaneous levels (frames in use, pinned frames,
  staging-ring utilisation, readahead in-flight pages) evaluated at
  each window close.

The hard invariant: sampling only ever *reads* simulator state.  A
launch sampled at any window size produces bit-identical simulated
cycles to an unsampled one (regression-tested, like the attribution
layer's traced==untraced invariant).

Windows stream out through an optional ``sink`` callable as they close
(:class:`JsonlSink` appends them to a JSONL file — what ``repro-top``
tails), are mirrored as Chrome-trace ``"C"`` counter events when a
tracer is attached, and land in the launch profile under
``components.timeseries`` (schema v6).  :func:`prometheus_lines` /
:func:`write_prometheus` render a cumulative snapshot in Prometheus
text exposition format for scrape-style consumers.
"""

from __future__ import annotations

import json
import math
import os
from typing import Callable, Optional

#: Default window width, simulated cycles.  At the K80's 0.56 GHz this
#: is ~90 us of simulated time per sample — fine enough to see phase
#: changes, coarse enough that a long run stays a few thousand windows.
DEFAULT_WINDOW_CYCLES = 50_000.0

#: In-profile retention cap: the profile document keeps at most this
#: many windows (the stream sink is uncapped); overflow windows are
#: counted in ``dropped_windows``.
DEFAULT_MAX_WINDOWS = 4096


class _Window:
    """Accumulator for one cycle window (plain attrs, no dataclass —
    this is allocated per window on the sampling path)."""

    __slots__ = ("index", "sm_busy", "instructions", "stalls",
                 "dram_bytes", "dram_transactions", "dram_busy",
                 "dram_queue_cycles", "dram_queued_accesses",
                 "pcie_bytes", "pcie_busy")

    def __init__(self, index: int, num_sms: int):
        self.index = index
        self.sm_busy = [0.0] * num_sms
        self.instructions = 0.0
        self.stalls: dict[str, float] = {}
        self.dram_bytes = 0
        self.dram_transactions = 0
        self.dram_busy = 0.0
        self.dram_queue_cycles = 0.0
        self.dram_queued_accesses = 0
        self.pcie_bytes = 0
        self.pcie_busy = 0.0


class TimeseriesSampler:
    """Buckets engine activity into fixed cycle windows.  See module
    docstring for the full contract; the engine-facing hooks are
    :meth:`advance`, :meth:`issue`, :meth:`stall`, :meth:`dram`,
    :meth:`pcie`, and :meth:`finish`."""

    def __init__(self, num_sms: int,
                 window_cycles: float = DEFAULT_WINDOW_CYCLES,
                 max_windows: int = DEFAULT_MAX_WINDOWS,
                 sink: Optional[Callable[[dict], None]] = None,
                 tracer=None,
                 probes: Optional[list] = None,
                 gauges: Optional[list] = None):
        if window_cycles <= 0:
            raise ValueError("window_cycles must be positive")
        self.num_sms = num_sms
        self.window_cycles = float(window_cycles)
        self.max_windows = max_windows
        self.sink = sink
        self.tracer = tracer
        #: ``(kind, stats_obj)`` pairs to probe by snapshot delta at
        #: each window close — or a :class:`MetricsRegistry`, consulted
        #: live so components registered mid-launch join the stream.
        #: The sampler keeps its *own* baselines so probing never
        #: rebaselines the profiler's per-launch delta accounting.
        self.probes = probes if probes is not None else []
        #: ``(name, fn)`` pairs; ``fn()`` -> instantaneous level.
        self.gauges = gauges if gauges is not None else []
        self.windows: list[dict] = []
        self.dropped_windows = 0
        self.finished = False
        self._open: dict[int, _Window] = {}
        self._flushed_until = 0      # all indices < this are closed
        self._next_roll = self.window_cycles
        self._baselines: dict[int, dict] = {}
        self._totals: dict[str, float] = {}
        # Baseline every already-registered component now (launch
        # start), so the first window reports deltas, not nothing.
        self._probe_deltas()

    # -- engine-facing hooks (hot path; must never mutate sim state) ---
    def advance(self, now: float) -> None:
        """Heap time reached ``now``: close every window that ended.

        Safe because heap pops are monotonic and every interval the
        engine records starts at or after the pop time — a closed
        window can never receive a late contribution.
        """
        if now < self._next_roll:
            return
        target = int(now / self.window_cycles)
        for index in range(self._flushed_until, target):
            self._flush(index)
        self._flushed_until = target
        self._next_roll = (target + 1) * self.window_cycles

    def issue(self, sm: int, start: float, cycles: float,
              count: float) -> None:
        """One issue-server reservation: ``cycles`` busy on ``sm``
        issuing ``count`` instructions, starting at ``start``."""
        if cycles <= 0 and count <= 0:
            return
        w = self.window_cycles
        first = int(start / w)
        end = start + cycles
        if end <= (first + 1) * w:       # fast path: single window
            win = self._open.get(first)
            if win is None:
                win = self._window(first)
            win.sm_busy[sm] += cycles
            win.instructions += count
            return
        span = cycles if cycles > 0 else 1.0
        index = max(first, self._flushed_until)
        while True:
            lo = max(start, index * w)
            hi = min(end, (index + 1) * w)
            part = hi - lo
            if part > 0:
                win = self._window(index)
                win.sm_busy[sm] += part
                win.instructions += count * (part / span)
            if end <= (index + 1) * w:
                break
            index += 1

    def stall(self, reason: str, end: float, cycles: float) -> None:
        """``cycles`` of warp stall time, attributed to the window in
        which the stall *ended* (stall intervals may begin before the
        current window — e.g. barrier waiters — and closed windows are
        immutable, so completion-time attribution keeps the stream
        append-only)."""
        if cycles <= 0:
            return
        index = int(end / self.window_cycles)
        if index < self._flushed_until:
            index = self._flushed_until
        win = self._open.get(index)
        if win is None:
            win = self._window(index)
        win.stalls[reason] = win.stalls.get(reason, 0.0) + cycles

    def dram(self, start: float, nbytes: int, transactions: int,
             busy: float, queue_cycles: float) -> None:
        """One DRAM access: bytes/transactions/queue delay land in the
        window containing the access start (so the byte series
        integrates exactly to the launch total); server busy cycles are
        spread over the service interval."""
        w = self.window_cycles
        index = int(start / w)
        if index < self._flushed_until:
            index = self._flushed_until
        win = self._open.get(index)
        if win is None:
            win = self._window(index)
        win.dram_bytes += nbytes
        win.dram_transactions += transactions
        win.dram_queue_cycles += queue_cycles
        win.dram_queued_accesses += 1
        if busy > 0:
            if start + busy <= (index + 1) * w \
                    and index * w <= start:
                win.dram_busy += busy    # fast path: single window
            else:
                self._spread(start, busy, "dram_busy")

    def pcie(self, start: float, nbytes: int, busy: float) -> None:
        """One PCIe transfer: bytes at the start window, link busy
        cycles spread over the transfer interval."""
        w = self.window_cycles
        index = int(start / w)
        if index < self._flushed_until:
            index = self._flushed_until
        win = self._open.get(index)
        if win is None:
            win = self._window(index)
        win.pcie_bytes += nbytes
        if busy > 0:
            if start + busy <= (index + 1) * w \
                    and index * w <= start:
                win.pcie_busy += busy
            else:
                self._spread(start, busy, "pcie_busy")

    def finish(self, total_cycles: float) -> None:
        """Launch over: close every remaining window."""
        if self.finished:
            return
        # A launch ending exactly on a boundary owns no window past it:
        # total==N*W means windows 0..N-1, not an empty window N.
        last = max((int(math.ceil(total_cycles / self.window_cycles))
                    - 1 if total_cycles > 0 else -1),
                   *(self._open.keys() or (-1,)))
        for index in range(self._flushed_until, last + 1):
            self._flush(index)
        self._flushed_until = last + 1
        self.finished = True

    # ------------------------------------------------------------------
    def _window(self, index: int) -> _Window:
        win = self._open.get(index)
        if win is None:
            win = _Window(index, self.num_sms)
            self._open[index] = win
        return win

    def _spread(self, start: float, cycles: float, attr: str) -> None:
        if cycles <= 0:
            return
        w = self.window_cycles
        end = start + cycles
        index = max(int(start / w), self._flushed_until)
        while True:
            lo = max(start, index * w)
            hi = min(end, (index + 1) * w)
            if hi > lo:
                win = self._window(index)
                setattr(win, attr, getattr(win, attr) + (hi - lo))
            if end <= (index + 1) * w:
                break
            index += 1

    def _probe_deltas(self) -> dict:
        """Per-window component-counter deltas since the last close.

        Uses private baselines keyed by stats-object id; a component
        first seen mid-launch is baselined silently (its pre-window
        history belongs to no window).
        """
        from repro.telemetry.profile import _numeric_fields
        out: dict[str, float] = {}
        probes = (self.probes.components()
                  if hasattr(self.probes, "components")
                  else self.probes)
        for kind, stats in probes:
            now = _numeric_fields(stats)
            base = self._baselines.get(id(stats))
            self._baselines[id(stats)] = now
            if base is None:
                continue
            for key, value in now.items():
                delta = value - base.get(key, 0)
                if delta:
                    name = f"{kind}.{key}"
                    out[name] = out.get(name, 0) + delta
        return out

    def _read_gauges(self) -> dict:
        out: dict[str, float] = {}
        for name, fn in self.gauges:
            try:
                value = float(fn())
            except Exception:       # a dead gauge must not kill a run
                continue
            out[name] = out.get(name, 0.0) + value
        return out

    def _flush(self, index: int) -> None:
        w = self.window_cycles
        win = self._open.pop(index, None)
        if win is None:
            win = _Window(index, self.num_sms)
        record = {
            "window": index,
            "t0": index * w,
            "t1": (index + 1) * w,
            "sm_busy": win.sm_busy,
            "instructions": win.instructions,
            "stalls": win.stalls,
            "dram_bytes": win.dram_bytes,
            "dram_transactions": win.dram_transactions,
            "dram_busy": win.dram_busy,
            "dram_queue_cycles": win.dram_queue_cycles,
            "dram_queued_accesses": win.dram_queued_accesses,
            "pcie_bytes": win.pcie_bytes,
            "pcie_busy": win.pcie_busy,
            "counters": self._probe_deltas(),
            "gauges": self._read_gauges(),
        }
        self._accumulate(record)
        if len(self.windows) < self.max_windows:
            self.windows.append(record)
        else:
            self.dropped_windows += 1
            # Overflow records still stream; stamping the running drop
            # count (only on them — retained records stay unmutated)
            # lets live consumers like repro-top surface the loss.
            record["dropped_windows"] = self.dropped_windows
        if self.sink is not None:
            self.sink(record)
        if self.tracer is not None:
            self._counter_events(record)

    def _accumulate(self, record: dict) -> None:
        t = self._totals
        t["windows"] = t.get("windows", 0) + 1
        t["cycles"] = record["t1"]
        t["sm_busy_cycles"] = (t.get("sm_busy_cycles", 0.0)
                               + sum(record["sm_busy"]))
        for key in ("instructions", "dram_bytes", "dram_transactions",
                    "dram_busy", "dram_queue_cycles", "pcie_bytes",
                    "pcie_busy"):
            t[key] = t.get(key, 0) + record[key]
        for reason, cycles in record["stalls"].items():
            key = f"stall_cycles.{reason}"
            t[key] = t.get(key, 0.0) + cycles
        for name, value in record["counters"].items():
            key = f"counter.{name}"
            t[key] = t.get(key, 0) + value
        for name, value in record["gauges"].items():
            t[f"gauge.{name}"] = value

    def _counter_events(self, record: dict) -> None:
        """Mirror the window onto the tracer as Chrome counter tracks."""
        t1 = record["t1"]
        busy = sum(record["sm_busy"]) / (self.window_cycles
                                         * max(self.num_sms, 1))
        self.tracer.record_counter("timeseries.sm_busy_frac", t1, busy)
        self.tracer.record_counter("timeseries.dram_bytes", t1,
                                   record["dram_bytes"])
        self.tracer.record_counter("timeseries.pcie_bytes", t1,
                                   record["pcie_bytes"])
        for name, value in record["gauges"].items():
            self.tracer.record_counter(f"gauge.{name}", t1, value)

    # -- consumers -----------------------------------------------------
    def snapshot(self) -> dict:
        """Cumulative totals over every closed window (for Prometheus
        exposition and dashboard summaries)."""
        return dict(self._totals)

    def to_component(self) -> dict:
        """The ``components.timeseries`` section of the profile."""
        return {
            "enabled": 1,
            "window_cycles": self.window_cycles,
            "windows": len(self.windows) + self.dropped_windows,
            "dropped_windows": self.dropped_windows,
            "series": list(self.windows),
        }


# ----------------------------------------------------------------------
# Streaming sinks and exposition formats
# ----------------------------------------------------------------------
class JsonlSink:
    """Appends one JSON object per window to a file — the append-only
    series stream ``repro-top`` tails.  ``meta`` keys (experiment name,
    point index, worker pid) are stamped onto every record."""

    def __init__(self, path: str, meta: Optional[dict] = None,
                 on_window: Optional[Callable[[dict], None]] = None):
        self.path = path
        self.meta = dict(meta or {})
        self.on_window = on_window
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        # Truncate on open: one writer per file, one file per point.
        self._fh = open(path, "w")

    def __call__(self, record: dict) -> None:
        out = dict(self.meta)
        out.update(record)
        self._fh.write(json.dumps(out) + "\n")
        self._fh.flush()
        if self.on_window is not None:
            self.on_window(out)

    def close(self) -> None:
        self._fh.close()


def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    return "".join(out)


def prometheus_lines(metrics: dict, prefix: str = "repro") -> list[str]:
    """Render a flat metrics dict in Prometheus text exposition format
    (one ``# TYPE`` line plus one sample per metric; gauges for
    ``gauge.*`` keys, counters for the rest)."""
    lines = []
    for name in sorted(metrics):
        value = metrics[name]
        if not isinstance(value, (int, float)) \
                or isinstance(value, bool):
            continue
        kind = "gauge" if name.startswith("gauge.") else "counter"
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {metric} {kind}")
        lines.append(f"{metric} {value:g}")
    return lines


def write_prometheus(path: str, metrics: dict,
                     prefix: str = "repro") -> None:
    """Atomically write a Prometheus text-exposition snapshot file."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        f.write("\n".join(prometheus_lines(metrics, prefix)) + "\n")
    os.replace(tmp, path)


def merge_series(docs: list) -> dict:
    """Concatenate ``components.timeseries`` sections across per-launch
    profile documents into one suite section (used by
    :func:`repro.telemetry.profile.merge_profiles`).

    Windows keep their per-launch indices and gain a ``launch`` key
    (the source document's position) so a reader can still separate the
    interleaved streams.
    """
    enabled = 0
    windows = 0
    dropped = 0
    window_cycles = 0.0
    series: list[dict] = []
    for pos, doc in enumerate(docs):
        sub = doc.get("components", {}).get("timeseries")
        if not isinstance(sub, dict) or not sub.get("enabled"):
            continue
        enabled += 1
        windows += int(sub.get("windows", 0))
        dropped += int(sub.get("dropped_windows", 0))
        window_cycles = max(window_cycles,
                            float(sub.get("window_cycles", 0.0)))
        for record in sub.get("series", []):
            out = dict(record)
            out["launch"] = pos
            series.append(out)
    return {
        "enabled": enabled,
        "window_cycles": window_cycles,
        "windows": windows,
        "dropped_windows": dropped,
        "series": series,
    }
