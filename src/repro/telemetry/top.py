"""``repro-top`` — a live dashboard over a running experiment suite.

Point it at the ``--live-dir`` of a ``repro-experiments`` run (any
number of jobs) and it tails the two streams the runner writes there:

* ``heartbeats.jsonl`` — lifecycle + rate-limited window beats from
  every worker (progress, ETA, freshest per-SM busy fractions);
* ``series-*.jsonl`` — the full-resolution cycle-window series, one
  file per grid point (exact DRAM/PCIe byte totals, fault counters,
  component gauges).

Rendering is plain text: per-SM utilisation bars, page-cache /
TLB / readahead hit rates, DRAM and PCIe throughput in bytes per
simulated cycle, and a completion ETA.  ``--once`` prints a single
frame (CI-friendly); the default follow mode redraws every
``--interval`` seconds until the run's ``run_done`` heartbeat lands
(or Ctrl-C).

Everything is read-only and incremental — the dashboard keeps a byte
offset per file and only parses appended lines, so tailing a big run
stays cheap.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
import time
from typing import Optional

from repro.harness.heartbeat import HEARTBEATS_NAME, cache_hit_rate

BAR_WIDTH = 24


class Dashboard:
    """Incremental reader + renderer for one live directory."""

    def __init__(self, live_dir: str):
        self.live_dir = live_dir
        self._offsets: dict[str, int] = {}   # path -> bytes consumed
        # Progress (from heartbeats)
        self.experiment = ""
        self.points_total = 0
        self.points_done = 0
        self.errors = 0
        self.jobs = 1
        self.run_done = False
        self.first_wall: Optional[float] = None
        self.last_wall: Optional[float] = None
        self.last_window_beat: Optional[dict] = None
        self.worker_pids: set = set()
        # Series totals (from series-*.jsonl, full resolution)
        self.windows = 0
        self.dram_bytes = 0.0
        self.pcie_bytes = 0.0
        self.cycles = 0.0                    # sum over points of max t1
        self._point_t1: dict = {}            # (experiment, point) -> t1
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        # (experiment, point) -> highest cumulative dropped-window
        # count seen (overflow records stamp a running total).
        self._dropped: dict = {}

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def poll(self) -> None:
        """Consume everything appended since the last poll."""
        hb = os.path.join(self.live_dir, HEARTBEATS_NAME)
        for record in self._new_lines(hb):
            self._on_heartbeat(record)
        pattern = os.path.join(self.live_dir, "series-*.jsonl")
        for path in sorted(glob.glob(pattern)):
            for record in self._new_lines(path):
                self._on_window(record)

    def _new_lines(self, path: str):
        try:
            with open(path) as f:
                f.seek(self._offsets.get(path, 0))
                chunk = f.read()
                self._offsets[path] = f.tell()
        except OSError:
            return
        for line in chunk.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except ValueError:
                # A line still being written; re-read it next poll.
                self._offsets[path] -= len(line) + 1
                return

    def _on_heartbeat(self, beat: dict) -> None:
        kind = beat.get("kind")
        wall = beat.get("wall")
        if wall is not None:
            if self.first_wall is None:
                self.first_wall = wall
            self.last_wall = wall
        if kind == "start":
            self.experiment = beat.get("experiment", "")
            self.points_total = int(beat.get("points", 0))
            self.jobs = int(beat.get("jobs", 1))
            self.points_done = 0
            self.errors = 0
            self.run_done = False
            self.first_wall = wall
        elif kind == "window":
            self.last_window_beat = beat
            self.worker_pids.add(beat.get("pid"))
        elif kind == "point_done":
            self.points_done += 1
            if not beat.get("ok", True):
                self.errors += 1
        elif kind == "run_done":
            self.run_done = True

    def _on_window(self, record: dict) -> None:
        self.windows += 1
        self.dram_bytes += record.get("dram_bytes", 0)
        self.pcie_bytes += record.get("pcie_bytes", 0)
        key = (record.get("experiment"), record.get("point"))
        t1 = record.get("t1", 0.0)
        prev = self._point_t1.get(key, 0.0)
        if t1 > prev:
            self.cycles += t1 - prev
            self._point_t1[key] = t1
        for name, value in record.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in record.get("gauges", {}).items():
            self.gauges[name] = value
        dropped = record.get("dropped_windows", 0)
        if dropped:
            self._dropped[key] = max(self._dropped.get(key, 0), dropped)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def eta(self) -> Optional[float]:
        if (self.run_done or not self.points_done
                or self.points_done >= self.points_total
                or self.first_wall is None):
            return None
        elapsed = time.time() - self.first_wall
        return max(elapsed / self.points_done
                   * (self.points_total - self.points_done), 0.0)

    def _ratio(self, hits_key: str, misses_key: str) -> Optional[float]:
        hits = self.counters.get(hits_key, 0)
        total = hits + self.counters.get(misses_key, 0)
        return hits / total if total else None

    # ------------------------------------------------------------------
    # Render
    # ------------------------------------------------------------------
    def render(self) -> str:
        lines = []
        state = ("done" if self.run_done else "running")
        header = (f"repro-top — {self.experiment or '(waiting)'} "
                  f"[{state}]  "
                  f"points {self.points_done}/{self.points_total}  "
                  f"jobs {self.jobs}")
        if self.errors:
            header += f"  errors {self.errors}"
        eta = self.eta()
        if eta is not None:
            header += f"  eta {eta:.0f}s"
        lines.append(header)
        lines.append("-" * len(header))

        beat = self.last_window_beat
        if beat is not None:
            busy = beat.get("sm_busy_frac") or []
            lines.append(f"latest window {beat.get('window')} "
                         f"(point {beat.get('point')}, "
                         f"pid {beat.get('pid')}):")
            for sm, frac in enumerate(busy):
                lines.append(f"  SM{sm:<2d} {_bar(frac)} {frac:6.1%}")
        else:
            lines.append("(no window heartbeats yet)")

        lines.append("")
        hit = cache_hit_rate({f"counter.{k}": v
                              for k, v in self.counters.items()})
        tlb = self._ratio("translation.tlb_hits",
                          "translation.tlb_misses")
        for label, value in (("page-cache hit", hit),
                             ("tlb hit", tlb)):
            if value is not None:
                lines.append(f"{label:16s} {_bar(value)} {value:6.1%}")
        if self.counters.get("readahead.issued"):
            issued = self.counters["readahead.issued"]
            hits = self.counters.get("readahead.hits", 0)
            frac = min(hits / issued, 1.0)
            lines.append(f"{'readahead hit':16s} {_bar(frac)} "
                         f"{frac:6.1%}")

        if self.cycles:
            lines.append(f"{'dram':16s} "
                         f"{self.dram_bytes / self.cycles:8.3f} B/cyc "
                         f"({_human_bytes(self.dram_bytes)} total)")
            lines.append(f"{'pcie':16s} "
                         f"{self.pcie_bytes / self.cycles:8.3f} B/cyc "
                         f"({_human_bytes(self.pcie_bytes)} total)")
        for name in sorted(self.gauges):
            value = self.gauges[name]
            if "utilization" in name or "occupancy" in name:
                frac = min(max(value, 0.0), 1.0)
                lines.append(f"{name:32s} {_bar(frac)} {frac:6.1%}")
            else:
                lines.append(f"{name:32s} {value:10.1f}")
        lines.append("")
        lines.append(f"{self.windows} windows sampled across "
                     f"{len(self._point_t1)} point(s), "
                     f"{len(self.worker_pids)} worker(s) heard")
        if self._dropped:
            total = sum(self._dropped.values())
            lines.append(
                f"WARNING: {total} window(s) past the in-profile "
                f"retention cap on {len(self._dropped)} point(s) — "
                f"profiles are truncated (widen window_cycles or "
                f"raise max_windows); this stream kept them")
        return "\n".join(lines)


def _bar(frac: float, width: int = BAR_WIDTH) -> str:
    frac = min(max(frac, 0.0), 1.0)
    filled = int(round(frac * width))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def _human_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}"
        n /= 1024
    return f"{n:.1f} GiB"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-top",
        description="Live dashboard over a repro-experiments "
                    "--live-dir (tails heartbeats + window series).")
    parser.add_argument("live_dir",
                        help="the --live-dir of a running (or "
                             "finished) repro-experiments invocation")
    parser.add_argument("--interval", type=float, default=1.0,
                        metavar="SEC",
                        help="redraw period in follow mode "
                             "(default: 1.0)")
    parser.add_argument("--once", action="store_true",
                        help="print one frame and exit (no screen "
                             "clearing; CI/script-friendly)")
    args = parser.parse_args(argv)

    if not os.path.isdir(args.live_dir):
        print(f"error: {args.live_dir} is not a directory",
              file=sys.stderr)
        return 2

    dash = Dashboard(args.live_dir)
    try:
        if args.once:
            dash.poll()
            print(dash.render())
            return 0
        while True:
            dash.poll()
            # ANSI clear + home; falls out harmlessly on dumb pipes.
            sys.stdout.write("\x1b[2J\x1b[H" + dash.render() + "\n")
            sys.stdout.flush()
            if dash.run_done:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except BrokenPipeError:
        # `repro-top --once | head` closing early is not an error.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
