"""The benchmark trend record: ``BENCH_trend.json``.

Every ``repro-experiments --all --quick`` run (and the CI bench-smoke
job) appends one *run row* per experiment to a schema-stamped JSON file:
which commit, when, at what scale, and one key metric per experiment
(extracted by the experiment's registered ``trend`` callable).  The file
is the repo's long-term performance memory — ``repro-attr --compare``
diffs the latest row against the previous one and fails (non-zero exit)
on a >10% regression of any tier-1 metric, which is what gates perf in
CI.

Rows are append-only; the file stays human-diffable JSON so regressions
show up in review.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass

TREND_SCHEMA = "repro.telemetry/bench-trend"
TREND_VERSION = 1

#: Relative change of a tier-1 metric (in the harmful direction) above
#: which ``compare`` reports a regression.
REGRESSION_THRESHOLD = 0.10

DEFAULT_TREND_FILE = "BENCH_trend.json"

__all__ = [
    "DEFAULT_TREND_FILE",
    "REGRESSION_THRESHOLD",
    "Regression",
    "TREND_SCHEMA",
    "TREND_VERSION",
    "amend_latest",
    "append_run",
    "compare",
    "current_commit",
    "load_trend",
]


def current_commit() -> str:
    """Short hash of HEAD, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else "unknown"


def load_trend(path: str) -> dict:
    """Load a trend file, or a fresh empty document if absent."""
    if not os.path.exists(path):
        return {"schema": TREND_SCHEMA, "version": TREND_VERSION,
                "runs": []}
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != TREND_SCHEMA:
        raise ValueError(
            f"{path}: bad schema marker {doc.get('schema')!r}")
    if doc.get("version") != TREND_VERSION:
        raise ValueError(
            f"{path}: unsupported version {doc.get('version')!r}")
    if not isinstance(doc.get("runs"), list):
        raise ValueError(f"{path}: runs must be a list")
    return doc


def append_run(path: str, metrics: dict, *, commit: str | None = None,
               date: str | None = None, scale: str = "quick") -> dict:
    """Append one run row to the trend file and rewrite it.

    ``metrics`` maps experiment name to a metric record::

        {"metric": "bandwidth", "value": 123.4, "unit": "GB/s",
         "higher_is_better": True, "tier1": True}

    Empty ``metrics`` appends nothing and leaves the file untouched.
    """
    if not metrics:
        return load_trend(path)
    doc = load_trend(path)
    row = {
        "commit": commit if commit is not None else current_commit(),
        "date": (date if date is not None
                 else time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())),
        "scale": scale,
        "metrics": {name: dict(rec) for name, rec in
                    sorted(metrics.items())},
    }
    doc["runs"].append(row)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    return doc


def amend_latest(path: str, metrics: dict) -> dict:
    """Merge metric records into the latest run row and rewrite.

    Lets a benchmark that runs *after* the trend row was appended (the
    CI vectorization gate) attach its metric to the same row instead
    of opening a second row for the same commit.  Raises
    :class:`ValueError` when the file has no rows yet — an amendment
    with nothing to amend means the steps ran out of order.
    """
    doc = load_trend(path)
    if not doc["runs"]:
        raise ValueError(
            f"{path}: no run rows to amend; append a run first")
    doc["runs"][-1]["metrics"].update(
        {name: dict(rec) for name, rec in sorted(metrics.items())})
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    return doc


@dataclass
class Regression:
    """One tier-1 metric that moved >threshold in the bad direction."""

    experiment: str
    metric: str
    previous: float
    latest: float
    change: float          # signed relative change, + = value went up
    unit: str = ""

    def describe(self) -> str:
        return (f"{self.experiment}.{self.metric}: "
                f"{self.previous:g} -> {self.latest:g} {self.unit} "
                f"({self.change:+.1%})")


def compare(doc: dict, *, threshold: float = REGRESSION_THRESHOLD
            ) -> tuple[list, list]:
    """Diff the latest run row against the previous one.

    Returns ``(regressions, lines)``: tier-1 metrics whose value moved
    more than ``threshold`` in the harmful direction, plus one
    human-readable delta line per metric present in both rows.  Metrics
    appearing or disappearing between the rows get their own lines,
    with a ``WARNING`` marker when the metric is tier-1 — a vanished
    tier-1 metric cannot regress, which is exactly how a perf gate
    silently rots.  Fewer than two rows compares nothing (no
    regressions, a note line).
    """
    runs = doc.get("runs", [])
    if len(runs) < 2:
        return [], [f"({len(runs)} run(s) recorded; nothing to compare)"]
    prev, last = runs[-2], runs[-1]
    lines = [f"comparing {prev.get('commit', '?')} "
             f"({prev.get('date', '?')}) -> {last.get('commit', '?')} "
             f"({last.get('date', '?')})"]
    regressions = []
    for name, rec in sorted(last.get("metrics", {}).items()):
        before = prev.get("metrics", {}).get(name)
        if before is None or before.get("metric") != rec.get("metric"):
            warn = (" << WARNING: tier-1 metric appeared"
                    if rec.get("tier1") else "")
            lines.append(f"  {name}.{rec.get('metric')}: new metric, "
                         f"no baseline{warn}")
            continue
        p, v = before.get("value"), rec.get("value")
        if not isinstance(p, (int, float)) \
                or not isinstance(v, (int, float)):
            continue
        change = (v - p) / abs(p) if p else 0.0
        unit = rec.get("unit", "")
        higher = bool(rec.get("higher_is_better", True))
        harmful = -change if higher else change
        flag = ""
        if rec.get("tier1") and harmful > threshold:
            regressions.append(Regression(
                experiment=name, metric=str(rec.get("metric")),
                previous=float(p), latest=float(v), change=change,
                unit=unit))
            flag = "  << REGRESSION"
        lines.append(f"  {name}.{rec.get('metric')}: {p:g} -> {v:g} "
                     f"{unit} ({change:+.1%}){flag}")
    # A metric silently vanishing is how a perf gate rots: say so.  A
    # renamed metric (same experiment, different ``metric`` field)
    # shows up as removed + appeared.
    last_metrics = last.get("metrics", {})
    for name, before in sorted(prev.get("metrics", {}).items()):
        after = last_metrics.get(name)
        if after is not None \
                and after.get("metric") == before.get("metric"):
            continue
        warn = (" << WARNING: tier-1 metric disappeared"
                if before.get("tier1") else "")
        lines.append(f"  {name}.{before.get('metric')}: removed "
                     f"(was {before.get('value')}){warn}")
    return regressions, lines
