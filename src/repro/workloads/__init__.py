"""Microbenchmark workloads of the paper's evaluation (§VI-A/B).

Every workload exists in two versions built from the *same* kernel body:
a **baseline** using raw pointers and an **apointer** version mapping the
input region with ``gvmmap_device`` — exactly the paper's methodology
("the baseline implementations are identical to the apointer versions,
except that they use regular memory pointers instead").

The suite (:data:`WORKLOADS`) covers the eight §VI-B workloads in order
of increasing compute intensity: Add, Read, Random-N (N pseudo-random
generator rounds per element), Reduce, FFT, and Bitonic sort, the last
three using warp-level shuffles.  :mod:`repro.workloads.memcpy` is the
Table II tiled memory-copy kernel.
"""

from repro.workloads.base import Workload, WorkloadRun, run_workload
from repro.workloads.suite import (
    AddWorkload,
    BitonicSortWorkload,
    FFTWorkload,
    RandomWorkload,
    ReadWorkload,
    ReduceWorkload,
    WORKLOADS,
    workload_by_name,
)
from repro.workloads.memcpy import MemcpyResult, run_memcpy
from repro.workloads.kvstore import KVStoreResult, run_kvstore
from repro.workloads.grepscan import GrepScanResult, run_grepscan
from repro.workloads.graphwalk import GraphWalkResult, run_graphwalk

__all__ = [
    "Workload",
    "WorkloadRun",
    "run_workload",
    "AddWorkload",
    "ReadWorkload",
    "RandomWorkload",
    "ReduceWorkload",
    "FFTWorkload",
    "BitonicSortWorkload",
    "WORKLOADS",
    "workload_by_name",
    "MemcpyResult",
    "run_memcpy",
    "KVStoreResult",
    "run_kvstore",
    "GrepScanResult",
    "run_grepscan",
    "GraphWalkResult",
    "run_graphwalk",
]
