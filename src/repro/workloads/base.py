"""Workload abstraction and the generic benchmark runner.

A workload defines its per-element compute (:meth:`Workload.consume`) and
its verification (:meth:`Workload.expected`).  :func:`run_workload`
builds the kernel around it — data loading via raw pointers or apointers,
pointer advancement, accumulator write-back — mirroring the paper's
setup: "each workload reads its data using apointers and accumulates the
results in a register, written back to global memory at the end".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import APConfig, AVM
from repro.gpu import Device
from repro.gpu.kernel import WarpContext

#: Loop bookkeeping instructions per iteration in both versions.
LOOP_INSTRS = 4


class Workload:
    """One §VI-B microbenchmark."""

    #: Display name (Figure 6 series label).
    name: str = "?"
    #: Approximate extra instructions per element (sorting key).
    compute_rank: float = 0.0
    #: Elements consumed per lane per iteration.
    lanes_stride: int = 1
    #: Extra apointer-version instruction penalty per iteration.  Zero
    #: everywhere except FFT, where the paper attributes an anomalous
    #: overhead to compiler code-generation artifacts "in the code
    #: regions unrelated to the global memory accesses" (§VI-B).
    apointer_artifact_instrs: float = 0.0

    def consume(self, ctx: WarpContext, values: np.ndarray,
                acc: np.ndarray) -> np.ndarray:
        """Fold one warp-load of values into the accumulator, charging
        the compute cost via ``ctx.charge``/warp intrinsics."""
        raise NotImplementedError

    def expected(self, data: np.ndarray) -> np.ndarray:
        """Reference result over the full input (lane-accumulator sum)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Workload {self.name}>"


@dataclass
class WorkloadRun:
    """Outcome of one workload execution."""

    workload: str
    use_apointers: bool
    cycles: float
    seconds: float
    verified: bool
    dram_bytes: int
    instructions: float

    def overhead_over(self, baseline: "WorkloadRun") -> float:
        """Fractional slowdown of this run vs. a baseline run."""
        return self.cycles / baseline.cycles - 1.0


def run_workload(workload: Workload, device: Device, *,
                 use_apointers: bool,
                 nblocks: int,
                 warps_per_block: int = 32,
                 iters_per_thread: int = 4,
                 width: int = 4,
                 config: Optional[APConfig] = None,
                 regs_per_thread: int = 64,
                 seed: int = 1234) -> WorkloadRun:
    """Execute ``workload`` and verify its result.

    ``width`` is the per-lane load size in bytes (4 or 16; §VI-B shows
    batching reads into 16-byte loads amortises the access overhead).
    """
    if width not in (4, 16):
        raise ValueError("width must be 4 or 16 bytes")
    floats_per_load = width // 4
    threads = nblocks * warps_per_block * 32
    total_floats = threads * iters_per_thread * floats_per_load
    rng = np.random.RandomState(seed)
    data = rng.uniform(0.25, 4.0, total_floats).astype(np.float32)

    src = device.alloc(total_floats * 4)
    out = device.alloc(threads * 4)
    device.memory.write(src, data)
    avm = AVM(config if config is not None else APConfig())

    def kernel(ctx: WarpContext):
        acc = np.zeros(ctx.warp_size, dtype=np.float64)
        # Each warp reads its own contiguous chunk, one coalesced
        # warp-line per iteration (a page fault every 4096/line reads).
        stride = 32 * width
        chunk = iters_per_thread * stride
        base_pos = ctx.warp_id * chunk + ctx.lane * width
        ptr = None
        if use_apointers:
            ptr = avm.gvmmap_device(ctx, src, total_floats * 4)
            yield from ptr.seek(ctx, base_pos)
        for i in range(iters_per_thread):
            if use_apointers:
                if floats_per_load == 1:
                    vals = yield from ptr.read(ctx, "f4")
                    vals = vals.astype(np.float64)[:, None]
                else:
                    vals = yield from ptr.read_wide(ctx, floats_per_load,
                                                    "f4")
                    vals = vals.astype(np.float64)
                yield from ptr.add(ctx, stride)
            else:
                ctx.charge(2, chain=2)
                if floats_per_load == 1:
                    v = yield from ctx.load(src + base_pos + i * stride,
                                            "f4")
                    vals = v.astype(np.float64)[:, None]
                else:
                    vals = yield from ctx.load_wide(
                        src + base_pos + i * stride, "f4",
                        floats_per_load)
                    vals = vals.astype(np.float64)
            ctx.charge(LOOP_INSTRS)
            for col in range(vals.shape[1]):
                acc = workload.consume(ctx, vals[:, col], acc)
            if use_apointers and workload.apointer_artifact_instrs:
                ctx.charge(workload.apointer_artifact_instrs,
                           chain=workload.apointer_artifact_instrs)
        if use_apointers:
            yield from ptr.destroy(ctx)
        yield from ctx.store(out + ctx.global_tid * 4,
                             acc.astype(np.float32), "f4")

    result = device.launch(kernel, grid=nblocks,
                           block_threads=warps_per_block * 32,
                           regs_per_thread=regs_per_thread)
    got = device.memory.read(out, threads * 4).view(np.float32)
    verified = _verify(workload, data, got, threads, iters_per_thread,
                       floats_per_load)
    return WorkloadRun(
        workload=workload.name,
        use_apointers=use_apointers,
        cycles=result.cycles,
        seconds=result.seconds,
        verified=verified,
        dram_bytes=result.stats.dram_bytes,
        instructions=result.stats.instructions,
    )


def _verify(workload: Workload, data: np.ndarray, got: np.ndarray,
            threads: int, iters: int, floats_per_load: int) -> bool:
    """Check the written-back accumulators against a numpy reference."""
    # Layout: warp w, iteration i, lane l, sub-element j.
    warps = threads // 32
    arr = data.reshape(warps, iters, 32, floats_per_load)
    per_thread = arr.transpose(1, 0, 2, 3).reshape(
        iters, threads, floats_per_load)
    expect = workload.expected(per_thread)
    return bool(np.allclose(got, expect.astype(np.float32),
                            rtol=1e-4, atol=1e-4))
