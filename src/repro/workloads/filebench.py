"""Page-cache benchmarks: workloads over memory-mapped files.

These drive the experiments of §VI-C and §VI-D:

* :func:`run_workload_file` — the §VI-D compute workloads reading their
  input through the GPUfs page cache, either via the original
  ``gmmap()`` page-granularity API (baseline) or via apointers over a
  ``gvmmap``-ed file.  Each warp reads one coalesced 128-byte line per
  iteration, so a page fault occurs once per 32 accesses, as in the
  paper.
* :func:`run_pagefault_bench` — the §VI-C page-fault microbenchmark:
  each warp walks many distinct pages; run once on a cold cache (major
  faults) and again warm (minor faults).
* :func:`run_tlb_sweep_point` — the Figure 7 kernel: one threadblock of
  32 warps reading with a controlled page-reuse rate, for a given TLB
  configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import APConfig, AVM
from repro.gpu import Device
from repro.gpu.kernel import WarpContext
from repro.host import HostFileSystem
from repro.host.filesys import O_RDONLY
from repro.host.ramfs import RamFS
from repro.paging import GPUfs, GPUfsConfig
from repro.workloads.base import LOOP_INSTRS, Workload, WorkloadRun


def make_file_env(total_bytes: int, *, page_size: int = 4096,
                  num_frames: int = 1024,
                  memory_bytes: int = 256 * 1024 * 1024,
                  batching: bool = True,
                  eviction_policy: str = "clock",
                  readahead: bool = False,
                  readahead_window: int = 4,
                  sanitize: bool = False,
                  flags: int = O_RDONLY,
                  data: Optional[np.ndarray] = None,
                  seed: int = 7) -> tuple[Device, GPUfs, int, np.ndarray]:
    """Create a device + GPUfs + RAMfs file filled with random floats.

    ``data`` overrides the default random-float fill (it is viewed as
    bytes, so any dtype works); ``flags`` is passed to the GPUfs open —
    the write-capable workloads open with ``O_RDWR``.
    """
    if data is None:
        rng = np.random.RandomState(seed)
        data = rng.uniform(0.25, 4.0, total_bytes // 4).astype(np.float32)
    fs = RamFS()
    fs.create("bench", data.reshape(-1).view(np.uint8))
    device = Device(memory_bytes=memory_bytes)
    gpufs = GPUfs(device, HostFileSystem(fs),
                  GPUfsConfig(page_size=page_size, num_frames=num_frames,
                              batching=batching,
                              eviction_policy=eviction_policy,
                              readahead=readahead,
                              readahead_window=readahead_window,
                              sanitize=sanitize))
    fid = gpufs.open("bench", flags)
    return device, gpufs, fid, data


def warm_page_cache(device: Device, gpufs: GPUfs, fid: int,
                    npages: int) -> None:
    """Fault every page in, so a following run sees only minor faults."""

    nwarps = 32

    def kern(ctx: WarpContext):
        for p in range(ctx.warp_id, npages, nwarps):
            yield from gpufs.gmmap(ctx, fid, p * gpufs.page_size)
            yield from gpufs.gmunmap(ctx, fid, p * gpufs.page_size)

    device.launch(kern, grid=1, block_threads=nwarps * 32)


def run_workload_file(workload: Workload, *, use_apointers: bool,
                      nblocks: int, warps_per_block: int = 32,
                      iters_per_thread: int = 32,
                      config: Optional[APConfig] = None,
                      num_frames: Optional[int] = None,
                      warm: bool = True,
                      seed: int = 7) -> WorkloadRun:
    """§VI-D: a compute workload reading a memory-mapped file.

    With ``warm=True`` the page cache is pre-populated so all faults are
    minor; otherwise the first touch of each page is a major fault.
    """
    threads = nblocks * warps_per_block * 32
    total_floats = threads * iters_per_thread
    total_bytes = total_floats * 4
    npages = -(-total_bytes // 4096)
    frames = num_frames if num_frames is not None else npages + 64
    device, gpufs, fid, data = make_file_env(
        total_bytes, num_frames=frames, seed=seed)
    if warm:
        warm_page_cache(device, gpufs, fid, npages)
        gpufs.stats.minor_faults = 0
        gpufs.stats.major_faults = 0
    out = device.alloc(threads * 4)
    cfg = config if config is not None else APConfig()
    avm = AVM(cfg, gpufs=gpufs)
    stride = 32 * 4
    chunk = iters_per_thread * stride
    page = gpufs.page_size

    def kernel(ctx: WarpContext):
        acc = np.zeros(ctx.warp_size, dtype=np.float64)
        base = ctx.warp_id * chunk
        if use_apointers:
            ptr = avm.gvmmap(ctx, total_bytes, fid)
            yield from ptr.seek(ctx, base + ctx.lane * 4)
            for i in range(iters_per_thread):
                vals = yield from ptr.read(ctx, "f4")
                ctx.charge(LOOP_INSTRS)
                acc = workload.consume(
                    ctx, vals.astype(np.float64), acc)
                if use_apointers and workload.apointer_artifact_instrs:
                    ctx.charge(workload.apointer_artifact_instrs,
                               chain=workload.apointer_artifact_instrs)
                yield from ptr.add(ctx, stride)
            yield from ptr.destroy(ctx)
            if cfg.use_tlb:
                yield from ctx.syncthreads()
                if ctx.warp_in_block == 0:
                    yield from avm.drain_tlb(ctx, ptr.backend)
        else:
            mapped_page = -1
            addr = 0
            for i in range(iters_per_thread):
                pos = base + i * stride
                p = pos // page
                if p != mapped_page:
                    if mapped_page >= 0:
                        yield from gpufs.gmunmap(ctx, fid,
                                                 mapped_page * page)
                    addr = yield from gpufs.gmmap(ctx, fid, p * page)
                    mapped_page = p
                ctx.charge(2, chain=2)
                vals = yield from ctx.load(
                    addr + (pos % page) + ctx.lane * 4, "f4")
                ctx.charge(LOOP_INSTRS)
                acc = workload.consume(
                    ctx, vals.astype(np.float64), acc)
            if mapped_page >= 0:
                yield from gpufs.gmunmap(ctx, fid, mapped_page * page)
        yield from ctx.store(out + ctx.global_tid * 4,
                             acc.astype(np.float32), "f4")

    result = device.launch(kernel, grid=nblocks,
                           block_threads=warps_per_block * 32,
                           scratchpad_bytes=cfg.tlb_bytes())
    got = device.memory.read(out, threads * 4).view(np.float32)
    warps = threads // 32
    arr = data.reshape(warps, iters_per_thread, 32, 1)
    per_thread = arr.transpose(1, 0, 2, 3).reshape(
        iters_per_thread, threads, 1)
    expect = workload.expected(per_thread)
    verified = bool(np.allclose(got, expect.astype(np.float32),
                                rtol=1e-4, atol=1e-4))
    return WorkloadRun(
        workload=workload.name,
        use_apointers=use_apointers,
        cycles=result.cycles,
        seconds=result.seconds,
        verified=verified,
        dram_bytes=result.stats.dram_bytes,
        instructions=result.stats.instructions,
    )


# ----------------------------------------------------------------------
# Sequential streaming read (readahead ablation workload)
# ----------------------------------------------------------------------
@dataclass
class SequentialReadResult:
    """One cold-cache sequential read, with readahead counters."""

    readahead: bool
    cycles: float
    seconds: float
    verified: bool
    major_faults: int
    minor_faults: int
    ra_issued: int = 0
    ra_hits: int = 0
    ra_inflight_hits: int = 0
    ra_wasted: int = 0
    ra_cancelled: int = 0
    batches: int = 0
    transfers: int = 0


def run_sequential_file_read(*, npages: int, warps: int = 32,
                             copy_pages: bool = False,
                             readahead: bool = False,
                             eviction_policy: str = "clock",
                             num_frames: Optional[int] = None,
                             readahead_window: int = 4,
                             seed: int = 13) -> SequentialReadResult:
    """Cold-cache sequential file read — the readahead ablation workload.

    Each warp streams a contiguous chunk of ``npages // warps`` pages in
    file order through ``gmmap()``, the filebench "sequential read"
    pattern the readahead stream detector is built for.  With
    ``copy_pages`` each warp copies every page to an output buffer
    (file-memcpy); otherwise it reads one coalesced 128-byte line per
    page.  Either way the output is verified against the file contents,
    so a readahead bug that serves stale or wrong bytes fails loudly.
    """
    if npages % warps:
        raise ValueError("npages must divide evenly among warps")
    if warps > 32 and warps % 32:
        raise ValueError("warps beyond one block must fill blocks of 32")
    total_bytes = npages * 4096
    frames = num_frames if num_frames is not None else npages + 32
    device, gpufs, fid, data = make_file_env(
        total_bytes, num_frames=frames,
        memory_bytes=(frames + npages + 64) * 4096 + 64 * 1024 * 1024,
        eviction_policy=eviction_policy, readahead=readahead,
        readahead_window=readahead_window, seed=seed)
    page = gpufs.page_size
    line = 32 * 4
    out_bytes = npages * (page if copy_pages else line)
    out = device.alloc(out_bytes)
    ppw = npages // warps

    def kernel(ctx: WarpContext):
        base = ctx.warp_id * ppw
        for i in range(ppw):
            p = base + i
            addr = yield from gpufs.gmmap(ctx, fid, p * page)
            if copy_pages:
                step = 8 * ctx.warp_size
                for off in range(0, page, step):
                    lane = off + ctx.lane * 8
                    ctx.charge(4)
                    vals = yield from ctx.load(addr + lane, "u8")
                    yield from ctx.store(out + p * page + lane,
                                         vals, "u8")
            else:
                ctx.charge(2, chain=2)
                vals = yield from ctx.load(addr + ctx.lane * 4, "f4")
                yield from ctx.store(out + p * line + ctx.lane * 4,
                                     vals, "f4")
            yield from gpufs.gmunmap(ctx, fid, p * page)

    res = device.launch(kernel, grid=max(warps // 32, 1),
                        block_threads=min(warps, 32) * 32)
    got = device.memory.read(out, out_bytes)
    if copy_pages:
        verified = bool(np.array_equal(got, data.view(np.uint8)))
    else:
        floats = got.view(np.float32).reshape(npages, 32)
        expect = data.reshape(npages, page // 4)[:, :32]
        verified = bool(np.array_equal(floats, expect))
    ra = gpufs.readahead.stats if gpufs.readahead is not None else None
    return SequentialReadResult(
        readahead=readahead,
        cycles=res.cycles,
        seconds=res.seconds,
        verified=verified,
        major_faults=gpufs.stats.major_faults,
        minor_faults=gpufs.stats.minor_faults,
        ra_issued=ra.issued if ra else 0,
        ra_hits=ra.hits if ra else 0,
        ra_inflight_hits=ra.inflight_hits if ra else 0,
        ra_wasted=ra.wasted if ra else 0,
        ra_cancelled=ra.cancelled if ra else 0,
        batches=gpufs.batcher.stats.batches,
        transfers=gpufs.batcher.stats.transfers,
    )


# ----------------------------------------------------------------------
# §VI-C page-fault overhead benchmark (Table III)
# ----------------------------------------------------------------------
@dataclass
class PageFaultBenchResult:
    use_apointers: bool
    config: Optional[APConfig]
    cold_cycles: float          # major-fault run
    warm_cycles: float          # minor-fault run
    major_faults: int
    minor_faults: int


def run_pagefault_bench(*, use_apointers: bool,
                        nblocks: int = 13, warps_per_block: int = 8,
                        pages_per_warp: int = 32,
                        config: Optional[APConfig] = None,
                        seed: int = 11) -> PageFaultBenchResult:
    """§VI-C: every warp touches ``pages_per_warp`` distinct pages.

    The kernel runs twice on the same GPUfs instance: the first
    execution measures major faults (cold cache), the second minor
    faults (warm cache).  All threads of a warp access the same page.
    """
    nwarps = nblocks * warps_per_block
    npages = nwarps * pages_per_warp
    total_bytes = npages * 4096
    device, gpufs, fid, _ = make_file_env(
        total_bytes, num_frames=npages + 16,
        memory_bytes=total_bytes + 128 * 1024 * 1024, seed=seed)
    cfg = config if config is not None else APConfig()
    avm = AVM(cfg, gpufs=gpufs)
    page = gpufs.page_size

    def kernel(ctx: WarpContext):
        base = ctx.warp_id * pages_per_warp * page
        if use_apointers:
            ptr = avm.gvmmap(ctx, total_bytes, fid)
            yield from ptr.seek(ctx, base + ctx.lane * 4)
            for p in range(pages_per_warp):
                yield from ptr.read(ctx, "f4")
                yield from ptr.add(ctx, page)
            yield from ptr.destroy(ctx)
            if cfg.use_tlb:
                yield from ctx.syncthreads()
                if ctx.warp_in_block == 0:
                    yield from avm.drain_tlb(ctx, ptr.backend)
        else:
            for p in range(pages_per_warp):
                offset = base + p * page
                addr = yield from gpufs.gmmap(ctx, fid, offset)
                ctx.charge(2, chain=2)
                yield from ctx.load(addr + ctx.lane * 4, "f4")
                yield from gpufs.gmunmap(ctx, fid, offset)

    block_threads = warps_per_block * 32
    cold = device.launch(kernel, grid=nblocks, block_threads=block_threads,
                         scratchpad_bytes=cfg.tlb_bytes())
    major = gpufs.stats.major_faults
    warm = device.launch(kernel, grid=nblocks, block_threads=block_threads,
                         scratchpad_bytes=cfg.tlb_bytes())
    return PageFaultBenchResult(
        use_apointers=use_apointers,
        config=config,
        cold_cycles=cold.cycles,
        warm_cycles=warm.cycles,
        major_faults=major,
        minor_faults=gpufs.stats.minor_faults,
    )


# ----------------------------------------------------------------------
# Figure 7: TLB size vs page reuse
# ----------------------------------------------------------------------
def run_tlb_sweep_point(*, unique_pages: int, tlb_entries: Optional[int],
                        warps: int = 32, reads_per_warp: int = 32,
                        seed: int = 23) -> float:
    """Figure 7: cycles per page for one TLB configuration.

    One threadblock of ``warps`` warps; the block collectively touches
    ``unique_pages`` distinct pages, each warp reading 4 KB in 4-byte
    per-lane accesses at a warp-unique offset.  All pages are resident
    (minor faults only).  ``tlb_entries=None`` selects the TLB-less
    design.  Returns average cycles per page access.
    """
    npages = max(unique_pages, 1)
    total_bytes = npages * 4096
    device, gpufs, fid, _ = make_file_env(
        total_bytes, num_frames=npages + 8,
        memory_bytes=total_bytes + 64 * 1024 * 1024, seed=seed)
    warm_page_cache(device, gpufs, fid, npages)
    cfg = APConfig(use_tlb=tlb_entries is not None,
                   tlb_entries=tlb_entries or 32)
    avm = AVM(cfg, gpufs=gpufs)
    page = gpufs.page_size

    def kernel(ctx: WarpContext):
        ptr = avm.gvmmap(ctx, total_bytes, fid)
        # Warp-unique intra-page offset, no data reuse across warps.
        offset = (ctx.warp_in_block * 128) % page
        for i in range(reads_per_warp):
            # Walk a new page every read; the block's working set is
            # exactly ``unique_pages`` distinct pages.
            p = (ctx.warp_in_block + i) % npages
            yield from ptr.seek(ctx, p * page + offset + ctx.lane * 4)
            yield from ptr.read(ctx, "f4")
        yield from ptr.destroy(ctx)
        yield from ctx.syncthreads()
        if cfg.use_tlb and ctx.warp_in_block == 0:
            yield from avm.drain_tlb(ctx, ptr.backend)

    res = device.launch(kernel, grid=1, block_threads=warps * 32,
                        scratchpad_bytes=cfg.tlb_bytes())
    return res.cycles / reads_per_warp
