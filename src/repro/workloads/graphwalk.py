"""Pointer-chasing graph traversal stressing the TLB.

The input file is a next-pointer array: ``next[i]`` is a u4 node id, and
the array is a random permutation, so every chain is a long cycle with
no locality — each hop lands on a fresh page.  Each lane chases its own
chain through an apointer over the ``gvmmap``-ed file, using per-lane
vector ``seek`` (the apointer API's scatter addressing), which makes
every dereference a 32-way page-divergent access: the worst case for
the software TLB and the per-warp translation caches.

After ``steps`` hops each warp stores its 32 final node ids to scratch
and ``pwrite``s them into its slot of a shared output file, then
``msync``s — so the traversal result is persisted through the same
write path the other workloads use and verified byte-exactly against a
numpy chase of the permutation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import APConfig, AVM
from repro.gpu.kernel import WarpContext
from repro.host.filesys import O_RDWR
from repro.workloads.filebench import make_file_env

#: Per-hop bookkeeping (index arithmetic + bounds mask).
HOP_INSTRS = 4
#: One output slot per warp: 32 lanes x u4 final node.
SLOT_BYTES = 128


@dataclass
class GraphWalkResult:
    """One pointer-chase run, verified against the numpy chase."""

    cycles: float
    seconds: float
    verified: bool
    edges: int
    cycles_per_edge: float
    tlb_hits: int
    tlb_misses: int
    minor_faults: int
    major_faults: int
    pwrites: int
    writeback_bytes: int


def run_graphwalk(*, nwarps: int = 4, steps: int = 16,
                  nnodes: int = 64 * 1024,
                  use_tlb: bool = True, tlb_entries: int = 64,
                  num_frames: Optional[int] = None,
                  sanitize: bool = False,
                  seed: int = 37) -> GraphWalkResult:
    """Chase ``nwarps * 32`` chains for ``steps`` hops each.

    ``nnodes`` u4 next-pointers span ``nnodes / 1024`` pages; with the
    permutation's uniform jumps, consecutive hops practically never
    share a page, so ``steps`` hops cost ~``steps`` translations per
    lane — precisely the access pattern §VI-B's Random workload
    approximates and the TLB ablation (``use_tlb=False``) quantifies.
    """
    if nwarps > 32 and nwarps % 32:
        raise ValueError("warps beyond one block must fill blocks of 32")
    total_bytes = nnodes * 4
    rng = np.random.RandomState(seed)
    perm = rng.permutation(nnodes).astype(np.uint32)
    npages = -(-total_bytes // 4096)
    frames = (num_frames if num_frames is not None
              else npages + 32)
    device, gpufs, fid, _ = make_file_env(
        total_bytes, num_frames=frames,
        memory_bytes=total_bytes * 2 + 64 * 1024 * 1024,
        sanitize=sanitize, data=perm)
    out_bytes = nwarps * SLOT_BYTES
    gpufs.host_fs.ramfs.create(
        "walk-out", np.zeros(out_bytes, dtype=np.uint8))
    out_fid = gpufs.open("walk-out", O_RDWR)
    sc = gpufs.syscalls
    cfg = APConfig(use_tlb=use_tlb, tlb_entries=tlb_entries)
    avm = AVM(cfg, gpufs=gpufs)
    scratch_base = device.alloc(nwarps * SLOT_BYTES)

    # Deterministic, well-spread chain starts (one per lane).
    starts = ((np.arange(nwarps * 32, dtype=np.uint64) * 2654435761)
              % nnodes).astype(np.int64).reshape(nwarps, 32)

    def kernel(ctx: WarpContext):
        warp = ctx.warp_id
        ptr = avm.gvmmap(ctx, total_bytes, fid)
        cur = starts[warp].copy()
        for _ in range(steps):
            yield from ptr.seek(ctx, cur * 4)
            vals = yield from ptr.read(ctx, "u4")
            ctx.charge(HOP_INSTRS)
            cur = vals.astype(np.int64)
        yield from ptr.destroy(ctx)
        scratch = scratch_base + warp * SLOT_BYTES
        yield from ctx.store(scratch + ctx.lane * 4,
                             cur.astype(np.uint32), "u4")
        yield from sc.pwrite(ctx, out_fid, warp * SLOT_BYTES,
                             SLOT_BYTES, scratch)
        yield from sc.msync(ctx, out_fid)
        if cfg.use_tlb:
            yield from ctx.syncthreads()
            if ctx.warp_in_block == 0:
                yield from avm.drain_tlb(ctx, ptr.backend)

    res = device.launch(kernel, grid=max(nwarps // 32, 1),
                        block_threads=min(nwarps, 32) * 32,
                        scratchpad_bytes=cfg.tlb_bytes())

    # Oracle: chase the permutation in numpy.
    expect = starts.reshape(-1).copy()
    for _ in range(steps):
        expect = perm[expect].astype(np.int64)
    final = gpufs.handle_for(out_fid).pread(0, out_bytes)
    verified = bool(np.array_equal(
        final.view(np.uint32), expect.astype(np.uint32)))
    edges = nwarps * 32 * steps
    stats = sc.stats
    return GraphWalkResult(
        cycles=res.cycles,
        seconds=res.seconds,
        verified=verified,
        edges=edges,
        cycles_per_edge=res.cycles / edges if edges else 0.0,
        tlb_hits=avm.stats.tlb_hits,
        tlb_misses=avm.stats.tlb_misses,
        minor_faults=gpufs.stats.minor_faults,
        major_faults=gpufs.stats.major_faults,
        pwrites=stats.pwrite,
        writeback_bytes=stats.writeback_bytes,
    )
