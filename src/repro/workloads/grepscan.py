"""Out-of-core grep/scan with match-offset writes.

Each warp streams a contiguous chunk of a large input file through
``pread`` one page at a time (the chunk never fits the warp's scratch
buffer — this is the out-of-core pattern), scans the page with wide
loads for words below a threshold, and records the matching *file byte
offsets*.  The matches are then published through the write path: each
warp ``pwrite``s a fixed-capacity slot ``[count u4][offsets u4...pad]``
into a pre-sized shared output file and ``msync``s it.

Verification compares the whole output file byte-for-byte against a
numpy scan of the input, including the zero padding and the capacity
truncation, so a dropped or duplicated match fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.kernel import WarpContext
from repro.host.filesys import O_RDWR
from repro.workloads.filebench import make_file_env

#: Per-512-byte-block match extraction cost (compare + ballot + pack).
SCAN_INSTRS = 8


@dataclass
class GrepScanResult:
    """One grep/scan run, verified against the numpy oracle."""

    cycles: float
    seconds: float
    verified: bool
    bytes_scanned: int
    gb_per_s: float
    matches: int
    truncated_warps: int
    preads: int
    pwrites: int
    writeback_bytes: int


def run_grepscan(*, nwarps: int = 8, pages_per_warp: int = 4,
                 slot_bytes: int = 512, threshold: int | None = None,
                 num_frames: int | None = None,
                 sanitize: bool = False, seed: int = 31) -> GrepScanResult:
    """Scan ``nwarps * pages_per_warp`` pages; publish match offsets.

    ``threshold`` selects the match density over uniform u32 words
    (default ~1/64).  ``slot_bytes`` caps each warp's output slot;
    overflowing matches are dropped (count still reports the capped
    value), exactly as the oracle models.
    """
    if nwarps > 32 and nwarps % 32:
        raise ValueError("warps beyond one block must fill blocks of 32")
    if slot_bytes % 4096 and 4096 % slot_bytes:
        raise ValueError("slot_bytes must pack evenly into pages")
    if slot_bytes % 128:
        raise ValueError("slot_bytes must be a multiple of 128 "
                         "(one u4 per lane per store)")
    page = 4096
    chunk_bytes = pages_per_warp * page
    total_bytes = nwarps * chunk_bytes
    if threshold is None:
        threshold = 2**32 // 64
    rng = np.random.RandomState(seed)
    words = rng.randint(0, 2**32, total_bytes // 4,
                        dtype=np.uint64).astype(np.uint32)
    frames = (num_frames if num_frames is not None
              else max(2 * nwarps + 2, total_bytes // page // 2))
    device, gpufs, in_fid, _ = make_file_env(
        total_bytes, num_frames=frames,
        memory_bytes=total_bytes * 2 + 64 * 1024 * 1024,
        sanitize=sanitize, data=words)
    out_bytes = nwarps * slot_bytes
    gpufs.host_fs.ramfs.create(
        "scan-out", np.zeros(out_bytes, dtype=np.uint8))
    out_fid = gpufs.open("scan-out", O_RDWR)
    sc = gpufs.syscalls

    slot_words = slot_bytes // 4
    cap = slot_words - 1
    scratch_base = device.alloc(nwarps * page)
    out_scratch_base = device.alloc(nwarps * slot_bytes)

    def kernel(ctx: WarpContext):
        warp = ctx.warp_id
        base = warp * chunk_bytes
        scratch = scratch_base + warp * page
        matches: list[int] = []
        block = 16 * ctx.warp_size          # bytes per wide warp-load
        for off in range(0, chunk_bytes, page):
            yield from sc.pread(ctx, in_fid, base + off, page, scratch)
            for j in range(0, page, block):
                vals = yield from ctx.load_wide(
                    scratch + j + ctx.lane * 16, "u4", 4)
                ctx.charge(SCAN_INSTRS)
                flat = vals.reshape(-1)      # lane-major: lane*4 + elem
                for k in np.nonzero(flat < threshold)[0]:
                    lane, elem = divmod(int(k), 4)
                    matches.append(base + off + j
                                   + lane * 16 + elem * 4)
        count = min(len(matches), cap)
        slot = np.zeros(slot_words, dtype=np.uint32)
        slot[0] = count
        slot[1:1 + count] = matches[:count]
        out_scratch = out_scratch_base + warp * slot_bytes
        for j in range(0, slot_words, ctx.warp_size):
            yield from ctx.store(
                out_scratch + (j + ctx.lane) * 4,
                slot[j + ctx.lane], "u4")
        yield from sc.pwrite(ctx, out_fid, warp * slot_bytes,
                             slot_bytes, out_scratch)
        yield from sc.msync(ctx, out_fid)

    res = device.launch(kernel, grid=max(nwarps // 32, 1),
                        block_threads=min(nwarps, 32) * 32)

    # Oracle: numpy scan per warp chunk with the same capacity rule.
    expect = np.zeros((nwarps, slot_words), dtype=np.uint32)
    total_matches = 0
    truncated = 0
    chunk_words = chunk_bytes // 4
    for warp in range(nwarps):
        chunk = words[warp * chunk_words:(warp + 1) * chunk_words]
        offs = np.nonzero(chunk < threshold)[0] * 4 + warp * chunk_bytes
        total_matches += len(offs)
        truncated += int(len(offs) > cap)
        count = min(len(offs), cap)
        expect[warp, 0] = count
        expect[warp, 1:1 + count] = offs[:count]

    final = gpufs.handle_for(out_fid).pread(0, out_bytes)
    verified = bool(np.array_equal(final,
                                   expect.reshape(-1).view(np.uint8)))
    stats = sc.stats
    return GrepScanResult(
        cycles=res.cycles,
        seconds=res.seconds,
        verified=verified,
        bytes_scanned=total_bytes,
        gb_per_s=(total_bytes / res.seconds / 1e9
                  if res.seconds else 0.0),
        matches=total_matches,
        truncated_warps=truncated,
        preads=stats.pread,
        pwrites=stats.pwrite,
        writeback_bytes=stats.writeback_bytes,
    )
