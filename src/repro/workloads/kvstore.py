"""On-GPU key-value store with write-back persistence.

The first of the three write-capable workloads built on the generic
syscall layer (:mod:`repro.syscalls`): each warp owns a disjoint bucket
of fixed-size 64-byte records in a single store file and runs an
alternating PUT/GET sequence against it — PUTs ``pwrite`` a
host-pregenerated payload, GETs ``pread`` the record back and fold a
checksum.  A final per-bucket ``msync`` persists the dirty pages, so
the run exercises the full write path: write faults, dirty tracking,
write-back eviction under frame pressure, and explicit flush.

Verification is byte-exact: the final RamFS file must equal a serial
host replay of every PUT, and the GET checksums must match the replay's
(each warp's bucket is private, so warp-program order is the only
order that matters).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.kernel import WarpContext
from repro.host.filesys import O_RDWR
from repro.workloads.filebench import make_file_env

#: Fixed record size; 64 records pack one 4 KB page.
RECORD_BYTES = 64
#: Per-GET checksum fold cost (sum 16 words across lanes).
CHECKSUM_INSTRS = 4


@dataclass
class KVStoreResult:
    """One key-value store run, verified against the host replay."""

    cycles: float
    seconds: float
    verified: bool
    ops: int
    ops_per_s: float
    preads: int
    pwrites: int
    msyncs: int
    writeback_bytes: int
    major_faults: int


def run_kvstore(*, nwarps: int = 8, records_per_warp: int = 64,
                ops_per_warp: int = 32, num_frames: int | None = None,
                sanitize: bool = False, seed: int = 29) -> KVStoreResult:
    """Run the KV store: ``ops_per_warp`` alternating PUT/GET per warp.

    ``records_per_warp`` should be a multiple of 64 so buckets are
    page-aligned (not required for correctness, but it keeps each
    warp's ``msync`` range from overlapping a neighbour's pages).
    """
    if nwarps > 32 and nwarps % 32:
        raise ValueError("warps beyond one block must fill blocks of 32")
    nrecords = nwarps * records_per_warp
    total_bytes = nrecords * RECORD_BYTES
    nputs = -(-ops_per_warp // 2)
    rng = np.random.RandomState(seed)
    initial = rng.randint(0, 2**32, total_bytes // 4, dtype=np.uint64)
    initial = initial.astype(np.uint32)
    payloads = rng.randint(0, 2**32, (nwarps, nputs, RECORD_BYTES // 4),
                           dtype=np.uint64).astype(np.uint32)
    # Every concurrently-faulting warp pins one frame, so the pool
    # must exceed nwarps; half the file's pages forces write-back
    # eviction once buckets span multiple pages.
    frames = (num_frames if num_frames is not None
              else max(nwarps + 2, total_bytes // 4096 // 2))
    device, gpufs, fid, _ = make_file_env(
        total_bytes, num_frames=frames,
        memory_bytes=total_bytes * 2 + 64 * 1024 * 1024,
        sanitize=sanitize, flags=O_RDWR, data=initial)
    sc = gpufs.syscalls

    payload_base = device.alloc(payloads.nbytes)
    device.memory.write(payload_base, payloads.reshape(-1).view(np.uint8))
    scratch_base = device.alloc(nwarps * 128)
    sums_base = device.alloc(nwarps * 8)

    def record_for(i: int) -> int:
        return (i * 7 + 3) % records_per_warp

    def kernel(ctx: WarpContext):
        warp = ctx.warp_id
        bucket = warp * records_per_warp
        scratch = scratch_base + warp * 128
        checksum = np.uint64(0)
        nput = 0
        for i in range(ops_per_warp):
            off = (bucket + record_for(i)) * RECORD_BYTES
            if i % 2 == 0:
                src = (payload_base
                       + (warp * nputs + nput) * RECORD_BYTES)
                nput += 1
                yield from sc.pwrite(ctx, fid, off, RECORD_BYTES, src)
            else:
                yield from sc.pread(ctx, fid, off, RECORD_BYTES, scratch)
                vals = yield from ctx.load(
                    scratch + ctx.lane * 4, "u4")
                ctx.charge(CHECKSUM_INSTRS)
                checksum += np.uint64(
                    vals[:RECORD_BYTES // 4].astype(np.uint64).sum())
        yield from sc.msync(ctx, fid, bucket * RECORD_BYTES,
                            records_per_warp * RECORD_BYTES)
        yield from ctx.store_scalar(sums_base + warp * 8, checksum, "u8")

    res = device.launch(kernel, grid=max(nwarps // 32, 1),
                        block_threads=min(nwarps, 32) * 32)

    # Serial host replay: apply every PUT to a copy of the initial
    # store and fold the GET checksums in warp-program order.
    image = initial.copy().reshape(nrecords, RECORD_BYTES // 4)
    expect_sums = np.zeros(nwarps, dtype=np.uint64)
    for warp in range(nwarps):
        bucket = warp * records_per_warp
        nput = 0
        for i in range(ops_per_warp):
            rec = bucket + record_for(i)
            if i % 2 == 0:
                image[rec] = payloads[warp, nput]
                nput += 1
            else:
                expect_sums[warp] += image[rec].astype(np.uint64).sum()

    final = gpufs.handle_for(fid).pread(0, total_bytes)
    got_sums = device.memory.read(sums_base, nwarps * 8).view(np.uint64)
    verified = (bool(np.array_equal(final,
                                    image.reshape(-1).view(np.uint8)))
                and bool(np.array_equal(got_sums, expect_sums)))
    ops = nwarps * ops_per_warp
    stats = sc.stats
    return KVStoreResult(
        cycles=res.cycles,
        seconds=res.seconds,
        verified=verified,
        ops=ops,
        ops_per_s=ops / res.seconds if res.seconds else 0.0,
        preads=stats.pread,
        pwrites=stats.pwrite,
        msyncs=stats.msync,
        writeback_bytes=stats.writeback_bytes,
        major_faults=gpufs.stats.major_faults,
    )
